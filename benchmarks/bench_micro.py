"""Micro-benchmarks of the substrates.

These time the hot paths of the library itself (not the simulated
experiment results): kernel event throughput, flow-network replanning,
partition generation, and the message codec.
"""

import pytest

from repro.cloud.network import FlowNetwork
from repro.core.messages import SetPartitionInfo, decode_message, encode_message
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme, generate_groups
from repro.sim import Environment, Resource, Store
from repro.util.units import MB, Mbit


@pytest.mark.benchmark(group="micro-kernel")
def test_kernel_event_throughput(benchmark):
    """Timeout-chain throughput: events processed per second."""

    def run_chain():
        env = Environment()

        def chain(env):
            for _ in range(10_000):
                yield env.timeout(1)

        env.process(chain(env))
        env.run()
        return env.now

    result = benchmark(run_chain)
    assert result == 10_000.0


@pytest.mark.benchmark(group="micro-kernel")
def test_kernel_resource_contention(benchmark):
    """1000 tasks over a 4-slot resource."""

    def run():
        env = Environment()
        cpu = Resource(env, capacity=4)

        def task(env):
            with cpu.request() as req:
                yield req
                yield env.timeout(1)

        for _ in range(1000):
            env.process(task(env))
        env.run()
        return env.now

    assert benchmark(run) == 250.0


@pytest.mark.benchmark(group="micro-kernel")
def test_kernel_store_producer_consumer(benchmark):
    def run():
        env = Environment()
        store = Store(env)
        received = [0]

        def producer(env):
            for i in range(5000):
                yield store.put(i)

        def consumer(env):
            for _ in range(5000):
                yield store.get()
                received[0] += 1

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return received[0]

    assert benchmark(run) == 5000


@pytest.mark.benchmark(group="micro-network")
def test_flow_network_replan_churn(benchmark):
    """200 staggered flows over a shared bottleneck (constant replans)."""

    def run():
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("up", 100 * Mbit)
        for i in range(8):
            net.add_link(f"d{i}", 100 * Mbit)

        def one(env, i):
            yield env.timeout(i * 0.01)
            flow = net.start_flow(["up", f"d{i % 8}"], 1 * MB)
            yield flow.done

        for i in range(200):
            env.process(one(env, i))
        env.run()
        return net.completed_flows

    assert benchmark(run) == 200


# min_rounds: per-round spread on this bench is ~±25% on a shared
# container; the default 5-round calibration makes the median a coin
# flip, 15 rounds makes it reproducible.
@pytest.mark.benchmark(group="micro-network", min_rounds=15)
def test_flow_network_clustered_churn_2000(benchmark):
    """2,000 flows over 32 disjoint rack components with batched arrivals.

    Each virtual 10 ms tick admits one flow per rack, so every wake
    coalesces 32 same-timestamp arrivals and the incremental planner
    only re-solves the racks whose links changed.
    """

    def run():
        env = Environment()
        net = FlowNetwork(env)
        racks = 32
        for r in range(racks):
            net.add_link(f"up{r}", 100 * Mbit)
            for w in range(4):
                net.add_link(f"r{r}w{w}", 100 * Mbit)

        def one(env, i):
            yield env.timeout((i // racks) * 0.01)
            r = i % racks
            flow = net.start_flow([f"up{r}", f"r{r}w{i % 4}"], 1 * MB)
            yield flow.done

        for i in range(2000):
            env.process(one(env, i))
        env.run()
        return net.completed_flows

    assert benchmark(run) == 2000


@pytest.mark.benchmark(group="micro-partition")
def test_partition_generation_pairwise(benchmark):
    dataset = synthetic_dataset("bench", 10_000, 1000)
    groups = benchmark(generate_groups, dataset, PartitionScheme.PAIRWISE_ADJACENT)
    assert len(groups) == 5000


@pytest.mark.benchmark(group="micro-partition")
def test_partition_generation_all_to_all(benchmark):
    dataset = synthetic_dataset("bench", 300, 1000)
    groups = benchmark(generate_groups, dataset, PartitionScheme.ALL_TO_ALL)
    assert len(groups) == 300 * 299 // 2


@pytest.mark.benchmark(group="micro-monitor")
def test_monitor_indexed_interval_queries(benchmark):
    """100 per-key queries over 20k intervals across 100 keys.

    The per-key index makes each ``intervals_for``/``union_time`` read
    proportional to that key's records, not the whole history — this is
    the satellite optimisation PR 3 added; without the index this scans
    2M records instead of 20k.
    """
    from repro.sim.monitor import Monitor

    monitor = Monitor()
    for i in range(20_000):
        monitor.interval(f"key{i % 100}", float(i), float(i + 2), worker=f"w{i % 8}")

    def query_all():
        total = 0.0
        for k in range(100):
            total += monitor.union_time(f"key{k}")
            total += monitor.busy_time(f"key{k}", worker="w0")
        return total

    assert benchmark(query_all) > 0


@pytest.mark.benchmark(group="micro-telemetry")
def test_span_emission_with_monitor_sink(benchmark):
    """10k complete spans through the hub into a Monitor sink."""
    from repro.sim.monitor import Monitor, MonitorSink
    from repro.telemetry import Telemetry

    def emit():
        monitor = Monitor()
        tel = Telemetry(clock=lambda: 0.0)
        tel.bind(monitor=MonitorSink(monitor))
        for i in range(10_000):
            tel.span_complete("exec", float(i), float(i + 1), track="w", task=i)
        return monitor.busy_time("exec")

    assert benchmark(emit) == 10_000.0


@pytest.mark.benchmark(group="micro-telemetry")
def test_chrome_trace_export_10k_spans(benchmark):
    """Serialize a 10k-span recording hub to trace-event JSON bytes."""
    from repro.telemetry import Telemetry, dump_chrome_trace

    tel = Telemetry(clock=lambda: 0.0, record=True)
    parent = tel.span_complete("run", 0.0, 10_000.0, track="control")
    for i in range(10_000):
        tel.span_complete(
            "exec", float(i), float(i + 1),
            parent=parent, track=f"worker:{i % 16}", task=i,
        )

    def export():
        return len(dump_chrome_trace(tel))

    assert benchmark(export) > 100_000


# Informational (not a guarded group): wall time of the cacheless
# whole-program audit over the full tree — parse, summary extraction,
# call graph, all per-file and project rule packs. Tracks how the
# audit cost scales as the codebase grows.
@pytest.mark.benchmark(group="micro-audit")
def test_whole_program_audit_full_tree(benchmark):
    from repro.analysis.project import audit_paths

    def run():
        findings, project = audit_paths(["src"])
        assert not findings
        return project.stats["files"]

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 100


@pytest.mark.benchmark(group="micro-protocol")
def test_message_codec_round_trip(benchmark):
    message = SetPartitionInfo(
        groups=tuple((f"file{i:05d}", f"file{i+1:05d}") for i in range(0, 500, 2)),
        sizes=tuple((6_500_000, 6_500_000) for _ in range(250)),
    )

    def round_trip():
        return decode_message(encode_message(message))

    assert benchmark(round_trip) == message


@pytest.mark.benchmark(group="micro-faults")
def test_transfer_service_retry_disabled_overhead(benchmark):
    """500 clean transfers with the retry machinery present but off.

    Paper-faithful policy, no fault model: the per-transfer cost of the
    retry loop must stay within noise of the pre-retry service (the
    wrapping adds one generator frame and two branch tests per call).
    """
    from repro.transfer.base import TransferProtocol, TransferRequest
    from repro.transfer.retry import TransferRetryPolicy
    from repro.transfer.staging import TransferService

    class Raw(TransferProtocol):
        handshake_latency = 0.0
        efficiency = 1.0
        streams = 1

    def run():
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("up", 100 * Mbit)
        service = TransferService(
            env, net, Raw(), retry_policy=TransferRetryPolicy.paper_faithful()
        )

        def one(env, i):
            yield env.timeout(i * 0.01)
            yield env.process(
                service.transfer(TransferRequest(f"f{i}", 1 * MB, ("up",)))
            )

        for i in range(500):
            env.process(one(env, i))
        env.run()
        return len(service.results)

    assert benchmark(run) == 500


@pytest.mark.benchmark(group="micro-faults")
def test_transfer_service_retry_storm(benchmark):
    """500 transfers at 30% transient fault rate under resilient retry.

    Times the full failure loop — fault draw, flow cancellation-free
    fault return, backoff with seeded jitter, reattempt — at a rate
    high enough that roughly half the transfers retry at least once.
    """
    from repro.cloud.failures import TransferFaultModel
    from repro.transfer.base import TransferProtocol, TransferRequest
    from repro.transfer.retry import TransferRetryPolicy
    from repro.transfer.staging import TransferService

    class Raw(TransferProtocol):
        handshake_latency = 0.0
        efficiency = 1.0
        streams = 1

    policy = TransferRetryPolicy(
        max_attempts=5, backoff_base_s=0.01, jitter_fraction=0.25
    )

    def run():
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("up", 100 * Mbit)
        service = TransferService(
            env,
            net,
            Raw(),
            retry_policy=policy,
            fault_model=TransferFaultModel(0.3, seed=13),
        )

        def one(env, i):
            yield env.timeout(i * 0.01)
            yield env.process(
                service.transfer(TransferRequest(f"f{i}", 1 * MB, ("up",)))
            )

        for i in range(500):
            env.process(one(env, i))
        env.run()
        return len(service.results)

    assert benchmark(run) == 500


@pytest.mark.benchmark(group="micro-telemetry")
def test_telemetry_ship_encode_batches(benchmark):
    """The TCP worker flush path, telemetry enabled: 1k task/exec span
    pairs plus metric observations recorded on a worker hub, drained
    through the shipper in 10 batches and encoded to TELEMETRY frame
    payload bytes."""
    from repro.telemetry import Telemetry
    from repro.telemetry.shipping import TelemetryShipper, encode_batch

    def ship():
        tel = Telemetry(clock=lambda: 0.0, record=True, run="w0")
        shipper = TelemetryShipper(tel)
        hist = tel.metrics.histogram("task.exec_seconds")
        tasks = tel.metrics.counter("worker.tasks", ok=True)
        payload_bytes = 0
        for i in range(1_000):
            task = tel.span_complete(
                "task", float(i), float(i + 1), track="worker:w0", task=i
            )
            tel.span_complete(
                "exec", float(i), float(i + 1), parent=task, track="worker:w0"
            )
            hist.observe(1.0)
            tasks.inc()
            if i % 100 == 99:
                payload_bytes += len(encode_batch(shipper.take_batch()))
        return payload_bytes

    assert benchmark(ship) > 10_000


@pytest.mark.benchmark(group="micro-telemetry")
def test_telemetry_disabled_span_path(benchmark):
    """The same instrumentation sequence against ``NULL_TELEMETRY`` —
    the disabled path every untraced run takes. Guards the zero-cost
    contract: no record allocation, no batches, just no-op calls."""
    from repro.telemetry import NULL_TELEMETRY as tel

    def emit():
        hist = tel.metrics.histogram("task.exec_seconds")
        tasks = tel.metrics.counter("worker.tasks", ok=True)
        n = 0
        for i in range(1_000):
            with tel.span("task", track="worker:w0", task=i):
                with tel.span("exec", track="worker:w0"):
                    n += 1
            hist.observe(1.0)
            tasks.inc()
        return n

    assert benchmark(emit) == 1_000
