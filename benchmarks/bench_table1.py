"""Benchmark: regenerate Table I (Effect of Data Parallelization).

Prints the measured sequential / pre-partitioned / real-time times and
speedups next to the paper's, and asserts the paper's shape: both
parallel modes beat sequential, real-time beats pre-partitioned, ALS
speedup ≈ small (transfer-bound), BLAST speedup ≈ core count
(compute-bound).
"""

import pytest

from repro.experiments.table1 import render_table1, run_table1
from repro.util.tables import render_table


@pytest.mark.benchmark(group="table1")
def test_table1_full(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_table1, args=(bench_scale,), rounds=1, iterations=1
    )
    print()
    print(render_table(render_table1(results, bench_scale)))
    for result in results.values():
        assert result.shape_holds()
    assert results["als"].speedup_rt < 3.0
    assert results["blast"].speedup_rt > 8.0


@pytest.mark.benchmark(group="table1")
def test_table1_sequential_baseline_als(benchmark, bench_scale):
    """Just the ALS sequential cell (the calibration anchor)."""
    from repro.workloads import als_profile, run_sequential_baseline

    profile = als_profile(bench_scale)
    outcome = benchmark.pedantic(
        run_sequential_baseline, args=(profile,), rounds=1, iterations=1
    )
    per_task = outcome.makespan / outcome.tasks_total
    assert per_task == pytest.approx(2.014, rel=0.05)  # §IV: 1258.8s / 625
