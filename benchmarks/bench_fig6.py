"""Benchmark: regenerate Figure 6 (Effect of Different Partitioning).

Prints the transfer/execution decomposition for each strategy and
asserts the orderings of Fig 6a (ALS: local < real-time < pre-remote)
and Fig 6b (BLAST: real-time < pre-local < pre-remote).
"""

import pytest

from repro.experiments.fig6 import render_fig6, run_fig6
from repro.util.tables import render_table


@pytest.mark.benchmark(group="fig6")
def test_fig6_both_applications(benchmark, bench_scale):
    results = benchmark.pedantic(run_fig6, args=(bench_scale,), rounds=1, iterations=1)
    print()
    for table in render_fig6(results, bench_scale):
        print(render_table(table))
        print()
    for result in results.values():
        assert result.shape_holds(), result.order_by_makespan()


@pytest.mark.benchmark(group="fig6")
def test_fig6a_transfer_dominates_als(benchmark, bench_scale):
    from repro.core.strategies import StrategyKind
    from repro.workloads import als_profile, run_profile

    profile = als_profile(bench_scale)
    outcome = benchmark.pedantic(
        run_profile,
        args=(profile, StrategyKind.PRE_PARTITIONED_REMOTE),
        rounds=1,
        iterations=1,
    )
    assert outcome.transfer_time > 3 * outcome.execution_time


@pytest.mark.benchmark(group="fig6")
def test_fig6b_load_balancing_wins_blast(benchmark, bench_scale):
    from repro.core.strategies import StrategyKind
    from repro.workloads import blast_profile, run_profile

    profile = blast_profile(bench_scale)

    def both():
        pre = run_profile(profile, StrategyKind.PRE_PARTITIONED_LOCAL)
        rt = run_profile(profile, StrategyKind.REAL_TIME)
        return pre, rt

    pre, rt = benchmark.pedantic(both, rounds=1, iterations=1)
    # Real-time's pull balancing beats static chunks on skewed costs
    # even though it pays for transfers and the chunks don't.
    assert rt.execution_time < pre.execution_time
