"""Shared benchmark configuration.

``FRIEDA_BENCH_SCALE`` (default 0.2) sets the workload scale for the
experiment-reproduction benches; scale 1.0 regenerates the paper's full
1250-image / 7500-sequence evaluation (a few seconds of wall time per
bench — the substrate is a simulator).

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables printed alongside the timings.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("FRIEDA_BENCH_SCALE", "0.2"))
