"""Run the micro-benchmarks and persist/check ``BENCH_micro.json``.

Usage::

    python -m benchmarks.run_bench            # run + compare vs baseline
    python -m benchmarks.run_bench --update   # run + rewrite the baseline
    python -m benchmarks.run_bench --check    # run + exit 1 on regression

The baseline file at the repo root records the median ns/op for every
micro-benchmark, grouped as pytest-benchmark groups them. ``--check``
fails when any benchmark in the guarded groups (kernel, network,
partitioning, telemetry, monitor — the hot paths this repo optimises)
regresses more than ``--threshold`` (default 20%) against the
committed baseline, and prints a per-test delta table for the guarded
groups either way. Baselines carry a machine-speed calibration probe
(``calibration_ns``); when the current machine is slower than the one
that recorded the baseline, thresholds stretch by the probe ratio so
shared-container load does not read as a code regression. Other groups are recorded but informational: the
codec and fault benches are dominated by workload construction and too
noisy to gate. After ``--update``, the current medians are compared
against the recorded pre-optimisation seed numbers (the ``seed_groups``
key) as a speedup summary.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_micro.json"
GUARDED_GROUPS = (
    "micro-kernel",
    "micro-network",
    "micro-partition",
    "micro-telemetry",
    "micro-monitor",
)


def run_benchmarks(pytest_args: list[str] | None = None) -> dict:
    """Run bench_micro.py under pytest-benchmark, return its JSON report."""
    with tempfile.TemporaryDirectory(prefix="frieda-bench-") as tmp:
        report = Path(tmp) / "report.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/bench_micro.py",
            "--benchmark-only",
            "--benchmark-json=%s" % report,
            # GC pauses land on random rounds and fatten the median on
            # the slower benches; collection between rounds keeps the
            # comparison about the code.
            "--benchmark-disable-gc",
            "-q",
        ] + (pytest_args or [])
        proc = subprocess.run(cmd, cwd=REPO_ROOT)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (pytest exit {proc.returncode})")
        return json.loads(report.read_text())


def calibrate() -> int:
    """ns for a fixed pure-Python workload: a machine-speed probe.

    The benches run on shared containers whose effective CPU speed
    drifts by tens of percent minute to minute, which a fixed absolute
    threshold cannot distinguish from a real regression.  The probe is
    interpreter-bound arithmetic (no allocation, no syscalls) so its
    time moves with the same machine factors the benches do; ``compare``
    scales the baseline by the probe ratio when the machine is slower
    than it was at record time.  Best-of-7 because the *minimum* is the
    low-interference estimate.
    """
    best = None
    for _ in range(7):
        t0 = time.perf_counter_ns()
        x = 0
        for i in range(200_000):
            x += i & 7
        dt = time.perf_counter_ns() - t0
        if best is None or dt < best:
            best = dt
    return best


def machine_scale(baseline: dict, current_cal: int) -> float:
    """Baseline multiplier for the current machine speed, >= 1.0.

    Only slow machines loosen the gate; a faster-than-record machine
    keeps the nominal threshold (tightening it would flag machine luck
    at record time as a code regression later).
    """
    base_cal = baseline.get("calibration_ns", 0)
    if not base_cal or not current_cal:
        return 1.0
    return max(1.0, current_cal / base_cal)


def summarize(report: dict) -> dict:
    """Collapse a pytest-benchmark report to {group: {test: median_ns}}."""
    groups: dict[str, dict[str, float]] = {}
    for bench in report["benchmarks"]:
        group = bench.get("group") or "ungrouped"
        name = bench["name"]
        median_ns = bench["stats"]["median"] * 1e9
        groups.setdefault(group, {})[name] = round(median_ns)
    return {group: dict(sorted(tests.items())) for group, tests in sorted(groups.items())}


def compare(
    baseline: dict, current: dict, threshold: float, scale: float = 1.0
) -> list[str]:
    """Return regression messages for guarded groups beyond ``threshold``.

    ``scale`` (from :func:`machine_scale`) stretches each baseline
    median to what this machine would have recorded, so the threshold
    stays a statement about the code.
    """
    failures = []
    for group in GUARDED_GROUPS:
        for name, base_ns in baseline.get("groups", {}).get(group, {}).items():
            now_ns = current.get(group, {}).get(name)
            if now_ns is None:
                failures.append(f"{group}/{name}: present in baseline but not run")
                continue
            adjusted = base_ns * scale
            if base_ns > 0 and now_ns > adjusted * (1.0 + threshold):
                failures.append(
                    f"{group}/{name}: {now_ns / 1e6:.2f} ms vs baseline "
                    f"{base_ns / 1e6:.2f} ms x{scale:.2f} machine "
                    f"(+{(now_ns / adjusted - 1) * 100:.0f}%, "
                    f"limit +{threshold * 100:.0f}%)"
                )
    return failures


def print_delta_table(baseline: dict, current: dict) -> None:
    """Per-test baseline/current/delta table for the guarded groups."""
    rows: list[tuple[str, str, float, float]] = []
    for group in GUARDED_GROUPS:
        for name, base_ns in baseline.get("groups", {}).get(group, {}).items():
            now_ns = current.get(group, {}).get(name)
            if now_ns is not None and base_ns > 0:
                rows.append((group, name, base_ns, now_ns))
    if not rows:
        return
    width = max(len(name) for _, name, _, _ in rows)
    print(f"  {'benchmark':<{width}} {'baseline':>12} {'current':>12} {'delta':>8}")
    for group, name, base_ns, now_ns in rows:
        delta = (now_ns / base_ns - 1.0) * 100.0
        print(
            f"  {name:<{width}} {base_ns / 1e6:>9.2f} ms {now_ns / 1e6:>9.2f} ms"
            f" {delta:>+7.1f}%"
        )


def print_seed_speedups(payload: dict, current: dict) -> None:
    """Current-vs-seed speedup summary (after a baseline refresh)."""
    seed_groups = payload.get("seed_groups")
    if not seed_groups:
        return
    print("speedup vs recorded seed medians:")
    for group in sorted(seed_groups):
        for name, seed_ns in sorted(seed_groups[group].items()):
            now_ns = current.get(group, {}).get(name)
            if not now_ns or seed_ns <= 0:
                continue
            print(
                f"  {group}/{name}: {seed_ns / 1e6:.2f} ms -> "
                f"{now_ns / 1e6:.2f} ms ({seed_ns / now_ns:.1f}x)"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true", help="rewrite BENCH_micro.json")
    parser.add_argument(
        "--check", action="store_true", help="exit non-zero if guarded groups regress"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional regression for --check (default 0.20)",
    )
    args = parser.parse_args(argv)

    current_cal = calibrate()
    current = summarize(run_benchmarks())

    print("median ns/op by group:")
    for group, tests in current.items():
        print(f"  {group}")
        for name, ns in tests.items():
            print(f"    {name}: {ns / 1e6:.3f} ms")

    if args.update or not BASELINE_PATH.exists():
        payload = {
            "note": "median ns/op per micro-benchmark; refresh with "
            "`python -m benchmarks.run_bench --update`",
            "guarded_groups": list(GUARDED_GROUPS),
            "calibration_ns": current_cal,
            "groups": current,
        }
        if BASELINE_PATH.exists():
            # Keep bookkeeping keys (e.g. the pre-optimisation seed
            # numbers) across refreshes.
            previous = json.loads(BASELINE_PATH.read_text())
            for key, value in previous.items():
                payload.setdefault(key, value)
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote baseline {BASELINE_PATH}")
        print_seed_speedups(payload, current)
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    scale = machine_scale(baseline, current_cal)
    if scale > 1.0:
        print(
            f"machine {scale:.2f}x slower than at baseline record time "
            f"(calibration {current_cal / 1e6:.2f} ms vs "
            f"{baseline['calibration_ns'] / 1e6:.2f} ms); thresholds scaled"
        )
    failures = compare(baseline, current, args.threshold, scale)
    if failures:
        print("REGRESSIONS vs committed baseline:")
        for line in failures:
            print(f"  {line}")
        print("per-test deltas (guarded groups):")
        print_delta_table(baseline, current)
        return 1 if args.check else 0
    print(f"no regressions > {args.threshold * 100:.0f}% in {', '.join(GUARDED_GROUPS)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
