"""Run the micro-benchmarks and persist/check ``BENCH_micro.json``.

Usage::

    python -m benchmarks.run_bench            # run + compare vs baseline
    python -m benchmarks.run_bench --update   # run + rewrite the baseline
    python -m benchmarks.run_bench --check    # run + exit 1 on regression

The baseline file at the repo root records the median ns/op for every
micro-benchmark, grouped as pytest-benchmark groups them. ``--check``
fails when any benchmark in the guarded groups (``micro-kernel`` and
``micro-network`` — the hot paths this repo optimises) regresses more
than ``--threshold`` (default 20%) against the committed baseline.
Other groups are recorded but informational: partition generation and
the codec are dominated by workload construction and too noisy to gate.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_micro.json"
GUARDED_GROUPS = ("micro-kernel", "micro-network")


def run_benchmarks(pytest_args: list[str] | None = None) -> dict:
    """Run bench_micro.py under pytest-benchmark, return its JSON report."""
    with tempfile.TemporaryDirectory(prefix="frieda-bench-") as tmp:
        report = Path(tmp) / "report.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/bench_micro.py",
            "--benchmark-only",
            "--benchmark-json=%s" % report,
            "-q",
        ] + (pytest_args or [])
        proc = subprocess.run(cmd, cwd=REPO_ROOT)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (pytest exit {proc.returncode})")
        return json.loads(report.read_text())


def summarize(report: dict) -> dict:
    """Collapse a pytest-benchmark report to {group: {test: median_ns}}."""
    groups: dict[str, dict[str, float]] = {}
    for bench in report["benchmarks"]:
        group = bench.get("group") or "ungrouped"
        name = bench["name"]
        median_ns = bench["stats"]["median"] * 1e9
        groups.setdefault(group, {})[name] = round(median_ns)
    return {group: dict(sorted(tests.items())) for group, tests in sorted(groups.items())}


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Return regression messages for guarded groups beyond ``threshold``."""
    failures = []
    for group in GUARDED_GROUPS:
        for name, base_ns in baseline.get("groups", {}).get(group, {}).items():
            now_ns = current.get(group, {}).get(name)
            if now_ns is None:
                failures.append(f"{group}/{name}: present in baseline but not run")
                continue
            if base_ns > 0 and now_ns > base_ns * (1.0 + threshold):
                failures.append(
                    f"{group}/{name}: {now_ns / 1e6:.2f} ms vs baseline "
                    f"{base_ns / 1e6:.2f} ms (+{(now_ns / base_ns - 1) * 100:.0f}%, "
                    f"limit +{threshold * 100:.0f}%)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true", help="rewrite BENCH_micro.json")
    parser.add_argument(
        "--check", action="store_true", help="exit non-zero if guarded groups regress"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional regression for --check (default 0.20)",
    )
    args = parser.parse_args(argv)

    current = summarize(run_benchmarks())

    print("median ns/op by group:")
    for group, tests in current.items():
        print(f"  {group}")
        for name, ns in tests.items():
            print(f"    {name}: {ns / 1e6:.3f} ms")

    if args.update or not BASELINE_PATH.exists():
        payload = {
            "note": "median ns/op per micro-benchmark; refresh with "
            "`python -m benchmarks.run_bench --update`",
            "guarded_groups": list(GUARDED_GROUPS),
            "groups": current,
        }
        if BASELINE_PATH.exists():
            # Keep bookkeeping keys (e.g. the pre-optimisation seed
            # numbers) across refreshes.
            previous = json.loads(BASELINE_PATH.read_text())
            for key, value in previous.items():
                payload.setdefault(key, value)
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote baseline {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = compare(baseline, current, args.threshold)
    if failures:
        print("REGRESSIONS vs committed baseline:")
        for line in failures:
            print(f"  {line}")
        return 1 if args.check else 0
    print(f"no regressions > {args.threshold * 100:.0f}% in {', '.join(GUARDED_GROUPS)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
