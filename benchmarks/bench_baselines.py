"""Benchmark: FRIEDA vs the Hadoop-like transparent-locality baseline.

Regenerates the §I comparison: transparent locality is competitive on
single-file tasks, loses co-location on pairwise tasks, and re-streams
common data per remote task.
"""

import pytest

from repro.experiments import baseline_exp
from repro.util.tables import render_table


@pytest.mark.benchmark(group="baselines")
def test_frieda_vs_hadoop_like(benchmark, bench_scale):
    cells = benchmark.pedantic(
        baseline_exp.run_baselines, args=(bench_scale,), rounds=1, iterations=1
    )
    print()
    print(render_table(baseline_exp.render_baselines(cells, bench_scale)))
    assert baseline_exp.shapes_hold(cells)


@pytest.mark.benchmark(group="baselines")
def test_replication_sweep_locality(benchmark):
    """Locality rate vs HDFS replication factor on pairwise tasks."""
    from repro.baselines.hadooplike import HadoopLikeEngine
    from repro.cloud.cluster import ClusterSpec
    from repro.data.files import synthetic_dataset
    from repro.data.partition import PartitionScheme
    from repro.engines.compute import FixedComputeModel

    spec = ClusterSpec(num_workers=4)
    dataset = synthetic_dataset("rep", 80, "2 MB", seed=9)

    def sweep():
        rates = {}
        for replication in (1, 2, 4):
            outcome = HadoopLikeEngine(spec, replication=replication, seed=9).run(
                dataset,
                compute_model=FixedComputeModel(1.0),
                grouping=PartitionScheme.PAIRWISE_ADJACENT,
            )
            rates[replication] = outcome.extra["locality_rate"]
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\npairwise locality by replication: {rates}")
    # More replicas -> more co-location luck; full replication -> 100%.
    assert rates[1] <= rates[2] <= rates[4]
    assert rates[4] == 1.0
