"""Macro benchmarks: whole simulated-plane runs at 1k/10k/100k workers.

Where ``bench_micro.py`` times isolated hot paths, this family drives
``repro.engines.simulated`` end to end — provisioning, staging through
the flow network, scheduling, execution, telemetry — at worker counts
three orders of magnitude past the paper's 4-VM testbed.  Each tier is
one deterministic pre-partitioned-remote run sized at one task and two
1 MB input files per worker, with a recording telemetry hub attached so
the slab span log is exercised at the same scale.

Results persist to ``BENCH_macro.json`` at the repo root::

    python -m benchmarks.bench_macro               # default tiers (1k)
    python -m benchmarks.bench_macro --update      # rewrite recorded tiers
    FRIEDA_MACRO_TIERS=1k,10k python -m benchmarks.bench_macro

Wall-clock numbers are informational (single-shot runs on a shared
box); the *gate* is behavioural: every tier must complete all its tasks
and reproduce the recorded simulated makespan exactly — the sim-time
result is deterministic even when the wall time is not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_macro.json"

#: Worker counts per tier name.  1k gates `make check`; the larger
#: tiers are opt-in via --tiers / FRIEDA_MACRO_TIERS.
TIERS = {"1k": 1_000, "10k": 10_000, "100k": 100_000}
DEFAULT_TIERS = ("1k",)


def run_tier(workers: int) -> dict:
    """One end-to-end simulated run at ``workers`` workers."""
    from repro.cloud.cluster import ClusterSpec
    from repro.core.strategies import StrategyKind
    from repro.data.files import synthetic_dataset
    from repro.data.partition import PartitionScheme
    from repro.engines.compute import FixedComputeModel
    from repro.engines.simulated import SimulatedEngine, SimulationOptions
    from repro.telemetry import Telemetry
    from repro.util.units import KB, MB, Mbit

    spec = ClusterSpec(
        name=f"macro-{workers}", num_workers=workers, link_bps=100 * Mbit
    )
    # The whole dataset is staged from the master's 40 GB disk, so the
    # 100k tier shrinks per-file size to keep 2×workers files on it.
    file_bytes = 1 * MB if workers <= 10_000 else 128 * KB
    dataset = synthetic_dataset(
        "macro", 2 * workers, file_bytes, prefix="f", suffix=".bin"
    )
    telemetry = Telemetry(record=True)
    engine = SimulatedEngine(spec, SimulationOptions(enable_billing=False))
    started = time.perf_counter()
    outcome = engine.run(
        dataset,
        compute_model=FixedComputeModel(1.0),
        strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
        max_sim_time=100_000_000.0,
        telemetry=telemetry,
    )
    wall_s = time.perf_counter() - started
    return {
        "workers": workers,
        "tasks_total": outcome.tasks_total,
        "tasks_completed": outcome.tasks_completed,
        "sim_makespan_s": round(outcome.makespan, 6),
        "spans_recorded": len(telemetry.spans),
        "events_recorded": len(telemetry.events),
        "wall_s": round(wall_s, 3),
        "tasks_per_wall_s": round(outcome.tasks_completed / wall_s, 1),
    }


def check_tier(name: str, result: dict, recorded: dict | None) -> list[str]:
    """Behavioural gate for one tier's fresh result."""
    problems = []
    if result["tasks_completed"] != result["tasks_total"]:
        problems.append(
            f"{name}: only {result['tasks_completed']}/{result['tasks_total']}"
            " tasks completed"
        )
    if result["spans_recorded"] <= 0:
        problems.append(f"{name}: telemetry recorded no spans")
    if recorded is not None and recorded.get("sim_makespan_s") != result["sim_makespan_s"]:
        problems.append(
            f"{name}: simulated makespan {result['sim_makespan_s']}s != "
            f"recorded {recorded['sim_makespan_s']}s (determinism regression)"
        )
    return problems


def _selected_tiers(arg: str | None) -> list[str]:
    raw = arg or os.environ.get("FRIEDA_MACRO_TIERS") or ",".join(DEFAULT_TIERS)
    names = [t.strip() for t in raw.split(",") if t.strip()]
    unknown = [t for t in names if t not in TIERS]
    if unknown:
        raise SystemExit(
            f"unknown macro tier(s) {', '.join(unknown)}; "
            f"choose from {', '.join(TIERS)}"
        )
    return names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiers",
        help="comma-separated tier names (default: $FRIEDA_MACRO_TIERS or 1k)",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the tiers run in BENCH_macro.json"
    )
    args = parser.parse_args(argv)
    names = _selected_tiers(args.tiers)

    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    )
    recorded_tiers = baseline.get("tiers", {})

    failures: list[str] = []
    fresh: dict[str, dict] = {}
    for name in names:
        print(f"macro tier {name}: {TIERS[name]:,} workers ...", flush=True)
        result = run_tier(TIERS[name])
        fresh[name] = result
        print(
            f"  {result['tasks_completed']:,}/{result['tasks_total']:,} tasks,"
            f" sim {result['sim_makespan_s']:.1f}s, wall {result['wall_s']:.2f}s"
            f" ({result['tasks_per_wall_s']:,.0f} tasks/s),"
            f" {result['spans_recorded']:,} spans"
        )
        failures.extend(
            check_tier(name, result, None if args.update else recorded_tiers.get(name))
        )

    if args.update or not BASELINE_PATH.exists():
        recorded_tiers = dict(recorded_tiers)
        recorded_tiers.update(fresh)
        payload = {
            "note": "end-to-end simulated-plane runs; wall times are "
            "informational, sim makespans are the determinism gate; refresh "
            "with `python -m benchmarks.bench_macro --tiers <tiers> --update`",
            "tiers": {k: recorded_tiers[k] for k in sorted(recorded_tiers)},
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote baseline {BASELINE_PATH}")

    if failures:
        print("MACRO BENCH FAILURES:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"macro tiers ok: {', '.join(names)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
