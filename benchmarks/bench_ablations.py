"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one design dimension and reports the effect:

- transfer protocol: scp vs GridFTP-style parallel streams (§II-C
  future work),
- multicore cloning on/off (§II-C),
- failure rate sweep: paper-faithful isolation vs the retry extension
  (§V-A future work),
- elasticity: static cluster vs scripted scale-out (§V-A),
- staging concurrency (scp fan-out).
"""

import pytest

from repro.cloud.cluster import ClusterSpec
from repro.core.fault import RetryPolicy
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel, StochasticComputeModel
from repro.engines.simulated import ElasticAction, SimulatedEngine, SimulationOptions
from repro.transfer.gridftp import GridFtpModel
from repro.transfer.scp import ScpModel


def _dataset(n=60, size="6.2 MB"):
    return synthetic_dataset("ablate", n, size, seed=4)


@pytest.mark.benchmark(group="ablation-protocol")
def test_protocol_scp_vs_gridftp(benchmark):
    """GridFTP's pipelining removes the per-file handshake tax during
    staging of many files."""
    spec = ClusterSpec(num_workers=4)
    dataset = _dataset(n=120, size="1 MB")

    def run_both():
        results = {}
        for protocol in (ScpModel(), GridFtpModel()):
            engine = SimulatedEngine(spec, SimulationOptions(protocol=protocol))
            results[protocol.name] = engine.run(
                dataset,
                compute_model=FixedComputeModel(0.5),
                strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
                grouping=PartitionScheme.PAIRWISE_ADJACENT,
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nstaging: scp={results['scp'].extra['staging_time']:.1f}s "
        f"gridftp={results['gridftp'].extra['staging_time']:.1f}s"
    )
    assert results["gridftp"].extra["staging_time"] < results["scp"].extra["staging_time"]


@pytest.mark.benchmark(group="ablation-multicore")
def test_multicore_cloning(benchmark):
    """One clone per core vs one per node (§II-C): ~cores× on compute."""
    spec = ClusterSpec(num_workers=2)
    dataset = _dataset(n=32, size="1 KB")

    def run_both():
        out = {}
        for multicore in (False, True):
            engine = SimulatedEngine(spec)
            out[multicore] = engine.run(
                dataset,
                compute_model=FixedComputeModel(4.0),
                strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
                multicore=multicore,
            )
        return out

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    speedup = out[False].makespan / out[True].makespan
    print(f"\nmulticore speedup on 4-core nodes: {speedup:.2f}x")
    assert speedup == pytest.approx(4.0, rel=0.15)


@pytest.mark.benchmark(group="ablation-failures")
def test_failure_rate_sweep_isolation_vs_retry(benchmark):
    """Completion rate vs MTTF, paper-faithful vs retry extension."""
    spec = ClusterSpec(num_workers=4)
    dataset = _dataset(n=64, size="1 KB")

    def sweep():
        rows = []
        for mttf in (50.0, 200.0, 1000.0):
            row = {"mttf": mttf}
            for name, policy in (
                ("paper", None),
                ("retry", RetryPolicy.resilient(max_attempts=5)),
            ):
                engine = SimulatedEngine(spec, SimulationOptions(seed=7))
                outcome = engine.run(
                    dataset,
                    compute_model=StochasticComputeModel(3.0, cv=0.4, seed=1),
                    strategy=StrategyKind.REAL_TIME,
                    failure_mttf=mttf,
                    retry_policy=policy,
                )
                row[name] = outcome.tasks_completed / outcome.tasks_total
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for row in rows:
        print(
            f"  mttf={row['mttf']:7.0f}s  completion: paper={row['paper']:.2%} "
            f"retry={row['retry']:.2%}"
        )
    # The retry extension never completes less than the paper baseline.
    assert all(row["retry"] >= row["paper"] for row in rows)


@pytest.mark.benchmark(group="ablation-elasticity")
def test_elastic_scale_out_value(benchmark):
    """Static 4 nodes vs scale-out to 8 early in the run."""
    spec = ClusterSpec(num_workers=4)
    dataset = _dataset(n=128, size="1 KB")
    model = StochasticComputeModel(4.0, cv=0.3, seed=2)

    def run_both():
        static = SimulatedEngine(spec).run(
            dataset, compute_model=model, strategy=StrategyKind.REAL_TIME
        )
        elastic = SimulatedEngine(spec).run(
            dataset,
            compute_model=model,
            strategy=StrategyKind.REAL_TIME,
            elasticity=[ElasticAction(time=2.0, action="add") for _ in range(4)],
        )
        return static, elastic

    static, elastic = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nstatic={static.makespan:.1f}s elastic={elastic.makespan:.1f}s")
    assert elastic.makespan < static.makespan


@pytest.mark.benchmark(group="ablation-staging")
def test_staging_concurrency_sweep(benchmark):
    """scp fan-out: more concurrent sessions hide handshakes until the
    link saturates; far past that it buys nothing."""
    spec = ClusterSpec(num_workers=4)
    dataset = _dataset(n=120, size="2 MB")

    def sweep():
        times = {}
        for concurrency in (1, 4, 16):
            options = SimulationOptions(staging_concurrency=concurrency)
            outcome = SimulatedEngine(spec, options).run(
                dataset,
                compute_model=FixedComputeModel(0.5),
                strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
                grouping=PartitionScheme.PAIRWISE_ADJACENT,
            )
            times[concurrency] = outcome.extra["staging_time"]
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nstaging time by concurrency: {times}")
    assert times[4] < times[1]  # fan-out hides handshakes
    # Saturated link: 16-way gains little over 4-way.
    assert times[16] > times[4] * 0.7
