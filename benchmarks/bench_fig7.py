"""Benchmark: regenerate Figure 7 (Effect of Data Movement).

Moving data to computation vs computation to data: ALS favours moving
the computation by a wide factor; BLAST is nearly insensitive.
"""

import pytest

from repro.experiments.fig7 import render_fig7, run_fig7
from repro.util.tables import render_table


@pytest.mark.benchmark(group="fig7")
def test_fig7_both_applications(benchmark, bench_scale):
    results = benchmark.pedantic(run_fig7, args=(bench_scale,), rounds=1, iterations=1)
    print()
    for table in render_fig7(results, bench_scale):
        print(render_table(table))
        print()
    assert results["als"].ratio > 1.5
    assert results["blast"].ratio < 1.15


@pytest.mark.benchmark(group="fig7")
def test_fig7_crossover_with_compute_intensity(benchmark, bench_scale):
    """Ablation on the figure's message: sweep per-task compute cost on
    the ALS-shaped workload and verify the placement question flips
    from 'move computation' to 'indifferent' as compute grows — the
    paper's explanation for why the two applications behave
    differently."""
    from repro.cloud.cluster import ClusterSpec
    from repro.core.strategies import StrategyKind
    from repro.data.files import synthetic_dataset
    from repro.data.partition import PartitionScheme
    from repro.engines.compute import FixedComputeModel
    from repro.engines.simulated import SimulatedEngine

    spec = ClusterSpec(num_workers=4)
    dataset = synthetic_dataset("sweep", 60, "6.2 MB", seed=1)

    def sweep():
        ratios = []
        for cost in (0.5, 8.0, 256.0):
            engine = SimulatedEngine(spec)
            outcomes = {}
            for strategy in (
                StrategyKind.PRE_PARTITIONED_REMOTE,
                StrategyKind.PRE_PARTITIONED_LOCAL,
            ):
                outcomes[strategy] = engine.run(
                    dataset,
                    compute_model=FixedComputeModel(cost),
                    strategy=strategy,
                    grouping=PartitionScheme.PAIRWISE_ADJACENT,
                )
            ratios.append(
                outcomes[StrategyKind.PRE_PARTITIONED_REMOTE].makespan
                / outcomes[StrategyKind.PRE_PARTITIONED_LOCAL].makespan
            )
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nmove-data/move-compute ratio vs per-task compute: {ratios}")
    # Monotone: the more compute dominates, the less placement matters.
    assert ratios[0] > ratios[1] > ratios[2]
    assert ratios[0] > 2.0
    assert ratios[2] < 1.2
