"""Benchmark suite for the FRIEDA reproduction.

``python -m benchmarks.run_bench`` runs the micro-benchmarks and
refreshes/checks ``BENCH_micro.json`` at the repo root.
"""
