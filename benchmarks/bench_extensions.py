"""Ablation benchmarks for the opt-in extensions.

- prefetch depth: how much of the paper's real-time gap our
  paper-faithful no-prefetch loop explains (EXPERIMENTS.md notes ours
  is ~5-10% slower on the real-time columns),
- static chunking disciplines: contiguous (paper) vs LPT-by-size vs
  LPT-with-cost-oracle vs real-time pull,
- heterogeneous clusters: mixed instance types, where the paper argues
  real-time's load balancing matters most,
- master outage: cost of the single point of failure with and without
  the recovery extension.
"""

import pytest

from repro.cloud.cluster import ClusterSpec
from repro.cloud.instance import C1_XLARGE, M1_SMALL
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel, StochasticComputeModel
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.workloads import als_profile, run_profile


@pytest.mark.benchmark(group="ext-prefetch")
def test_prefetch_closes_real_time_gap(benchmark, bench_scale):
    """ALS real-time with double-buffering vs the paper-faithful loop."""
    profile = als_profile(bench_scale)

    def run_both():
        plain = run_profile(profile, StrategyKind.REAL_TIME)
        prefetch = run_profile(
            profile,
            StrategyKind.REAL_TIME,
            options=SimulationOptions(prefetch_depth=1),
        )
        return plain, prefetch

    plain, prefetch = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nALS real-time: no-prefetch={plain.makespan:.1f}s "
        f"prefetch={prefetch.makespan:.1f}s "
        f"({(1 - prefetch.makespan / plain.makespan) * 100:.1f}% faster)"
    )
    assert prefetch.makespan < plain.makespan


@pytest.mark.benchmark(group="ext-chunking")
def test_chunking_disciplines_vs_real_time(benchmark):
    """Static divisions of increasing cleverness vs pull scheduling on
    a skewed workload."""
    spec = ClusterSpec(num_workers=4)
    dataset = synthetic_dataset("chunk", 96, "1 KB", seed=2)
    model = StochasticComputeModel(6.0, cv=0.9, seed=5)

    def sweep():
        results = {}
        for chunking in ("contiguous", "lpt_size", "lpt_cost"):
            results[chunking] = SimulatedEngine(spec).run(
                dataset,
                compute_model=model,
                strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
                static_chunking=chunking,
            ).makespan
        results["real_time"] = SimulatedEngine(spec).run(
            dataset, compute_model=model, strategy=StrategyKind.REAL_TIME
        ).makespan
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nmakespan by discipline: " + ", ".join(f"{k}={v:.1f}s" for k, v in results.items()))
    # The cost oracle improves on blind contiguous chunking...
    assert results["lpt_cost"] <= results["contiguous"]
    # ...but blind LPT-by-size can't help when size doesn't predict cost.
    assert results["lpt_size"] >= results["lpt_cost"] * 0.95


@pytest.mark.benchmark(group="ext-heterogeneous")
def test_heterogeneous_cluster_real_time_advantage(benchmark):
    """§III-A: real-time partitioning is 'designed to suit experiments
    where ... the compute resources are heterogeneous'. With uniform
    hardware and identical tasks, static chunking wins slightly (no
    pull round-trips — exactly the paper's "works best if every
    computation is more or less identical"). Mix half-speed m1.small
    cores into the cluster and the static chunks straggle on the slow
    nodes while real-time re-balances — the ratio flips."""
    dataset = synthetic_dataset("hetero", 96, "1 KB", seed=3)
    model = FixedComputeModel(4.0)

    def run_pair(spec):
        pre = SimulatedEngine(spec).run(
            dataset, compute_model=model, strategy=StrategyKind.PRE_PARTITIONED_LOCAL
        )
        rt = SimulatedEngine(spec).run(
            dataset, compute_model=model, strategy=StrategyKind.REAL_TIME
        )
        return pre.makespan / rt.makespan

    def sweep():
        homogeneous = ClusterSpec(num_workers=4, instance_type=C1_XLARGE)
        heterogeneous = ClusterSpec(
            num_workers=4,
            worker_instance_types=(C1_XLARGE, M1_SMALL),  # alternate fast/slow
        )
        return run_pair(homogeneous), run_pair(heterogeneous)

    homo_ratio, hetero_ratio = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\npre/real-time makespan ratio: homogeneous={homo_ratio:.3f} "
          f"heterogeneous={hetero_ratio:.3f}")
    # Homogeneous + uniform tasks: static is competitive (paper §III-A).
    assert homo_ratio <= 1.02
    # Heterogeneous: real-time clearly wins through load balancing.
    assert hetero_ratio > 1.2
    assert hetero_ratio > homo_ratio


@pytest.mark.benchmark(group="ext-master")
def test_master_outage_cost(benchmark):
    """Cost of the single point of failure (§V-A) with recovery."""
    spec = ClusterSpec(num_workers=4)
    dataset = synthetic_dataset("spof", 60, "6 MB", seed=4)
    model = FixedComputeModel(2.0)

    def run_three():
        base = SimulatedEngine(spec).run(
            dataset, compute_model=model, strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
        )
        recovered = SimulatedEngine(spec).run(
            dataset, compute_model=model, strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
            master_failure_at=10.0, master_recovery_time=20.0,
        )
        dead = SimulatedEngine(spec).run(
            dataset, compute_model=model, strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
            master_failure_at=10.0,
        )
        return base, recovered, dead

    base, recovered, dead = benchmark.pedantic(run_three, rounds=1, iterations=1)
    print(
        f"\nmaster outage: healthy={base.makespan:.1f}s "
        f"recovered(+20s)={recovered.makespan:.1f}s "
        f"permanent={dead.tasks_completed}/{dead.tasks_total} tasks before loss"
    )
    assert recovered.all_tasks_ok
    assert recovered.makespan > base.makespan
    assert dead.tasks_completed < dead.tasks_total
