"""Benchmark: storage-tier comparison (§III-A local vs networked disks).

Regenerates the storage experiment and asserts its shape: local disk
fastest, and the shared tier's value flips with its server bandwidth.
"""

import pytest

from repro.experiments import storage_exp
from repro.util.tables import render_table


@pytest.mark.benchmark(group="storage")
def test_storage_tier_comparison(benchmark, bench_scale):
    cells = benchmark.pedantic(
        storage_exp.run_storage, args=(bench_scale,), rounds=1, iterations=1
    )
    print()
    print(render_table(storage_exp.render_storage(cells, bench_scale)))
    assert storage_exp.shapes_hold(cells)
