"""Benchmarks of the bundled applications (real compute, not simulated)."""

import pytest

from repro.apps.blast import BlastDatabase, blast_search, synthetic_database, synthetic_queries
from repro.apps.blast.scoring import encode_sequence
from repro.apps.blast.seed import neighborhood_words
from repro.apps.imaging import BeamlineImageConfig, generate_image
from repro.apps.imaging.similarity import similarity_report


@pytest.fixture(scope="module")
def small_db():
    records = synthetic_database(30, mean_length=200, seed=0)
    return records, BlastDatabase(records)


@pytest.mark.benchmark(group="app-blast")
def test_blast_index_build(benchmark):
    records = synthetic_database(30, mean_length=200, seed=0)
    database = benchmark(BlastDatabase, records)
    assert len(database) == 30


@pytest.mark.benchmark(group="app-blast")
def test_blast_homolog_query(benchmark, small_db):
    records, database = small_db
    query = synthetic_queries(records, 1, homolog_fraction=1.0, seed=3)[0]
    hits = benchmark(blast_search, query, database)
    assert hits  # a homolog must be found


@pytest.mark.benchmark(group="app-blast")
def test_blast_neighborhood_expansion(benchmark):
    query = encode_sequence("MKVWACDEFGHIKLMNPQRS")
    words = benchmark(neighborhood_words, query, 3, 11)
    assert words


@pytest.mark.benchmark(group="app-imaging")
def test_image_generation(benchmark):
    config = BeamlineImageConfig(size=512)
    image = benchmark(generate_image, config, sample_seed=1, frame=0)
    assert image.shape == (512, 512)


@pytest.mark.benchmark(group="app-imaging")
def test_image_similarity_ensemble(benchmark):
    config = BeamlineImageConfig(size=512)
    a = generate_image(config, sample_seed=1, frame=0)
    b = generate_image(config, sample_seed=1, frame=1)
    report = benchmark(similarity_report, a, b)
    assert report["ncc"] > 0.5
