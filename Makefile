PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-check bench-update

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m benchmarks.run_bench

bench-check:
	$(PYTHON) -m benchmarks.run_bench --check

bench-update:
	$(PYTHON) -m benchmarks.run_bench --update
