PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint audit check accel bench bench-check bench-update bench-macro bench-macro-update schema-check trace-demo chaos chaos-runtime service-check recovery-check

test:
	$(PYTHON) -m pytest -x -q

# The exporter's format contract: trace-event schema + golden bytes.
schema-check:
	$(PYTHON) -m pytest tests/telemetry/test_export.py -x -q

# frieda-lint (custom AST invariant checker) + ruff (style/pyflakes).
# ruff is pinned in the `test` extra; when it is not installed (minimal
# containers) the custom analyzer still gates and ruff is skipped.
lint:
	$(PYTHON) -m repro.analysis src --baseline lint-baseline.json
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipped (pip install -e '.[test]')"; \
	fi

# frieda-audit: the whole-program pass on top of frieda-lint — call-
# graph IO/wall-clock taint from the sim packages, thread lock
# discipline, asyncio discipline, protocol exhaustiveness. The summary
# cache makes incremental re-runs parse only edited files.
audit:
	$(PYTHON) -m repro.analysis src --project \
		--cache build/audit-cache.json --baseline lint-baseline.json

# Multi-tenant control plane: the full service suite (admission,
# fair-share, quotas, leases, HTTP front end) plus the deterministic
# 120-tenant load on the simulated plane — run twice so a determinism
# regression in the service path fails loudly here, not in CI.
service-check:
	$(PYTHON) -m pytest tests/service -x -q
	$(PYTHON) -c "from repro.service.sim import run_service_load; \
		a = run_service_load(120, seed=0); b = run_service_load(120, seed=0); \
		assert a.rejected == 0 and len(a.per_job) == 120, 'admission regressed'; \
		assert a.digest == b.digest, 'service load not deterministic'; \
		import sys; sys.stdout.write('service load reproducible: ' + a.digest[:16] + chr(10))"

# Crash-consistency gate: the 120-tenant load with the control plane
# killed twice mid-run and recovered from its write-ahead journal.
# Run twice and diffed (the kill-recover path itself must be
# deterministic), then checked against the uninterrupted same-seed run:
# per-job task outcomes must be byte-identical — a master crash may
# reshuffle timing, never results.
recovery-check:
	$(PYTHON) -m pytest tests/service/test_journal.py \
		tests/service/test_recovery.py tests/service/test_kill_master.py -x -q
	$(PYTHON) -c "from repro.service.sim import run_service_load; \
		kills = [4.0, 11.0]; \
		a = run_service_load(120, seed=0, master_kill_script=kills); \
		b = run_service_load(120, seed=0, master_kill_script=kills); \
		c = run_service_load(120, seed=0); \
		assert a.recoveries == 2, 'master kills not exercised'; \
		assert a.digest == b.digest, 'kill-recover run not deterministic'; \
		assert a.outcome_digest == c.outcome_digest, 'crash changed job outcomes'; \
		import sys; sys.stdout.write('kill-recover outcome parity: ' + a.outcome_digest[:16] + chr(10))"

# One command to gate a PR locally: invariants (per-file + whole-
# program), tests (which include the exporter schema/golden contract),
# runtime chaos parity, perf regressions, the service control plane,
# and the 1k macro tier
# (10k/100k are opt-in: `FRIEDA_MACRO_TIERS=1k,10k make bench-macro`).
check: lint audit test schema-check chaos-runtime service-check recovery-check bench-check bench-macro

# Build the optional C kernel accelerator in place. Soft-fails: without
# a compiler the pure-Python kernel serves every caller (same
# semantics), the benchmark baselines just won't be reachable.
accel:
	-$(PYTHON) setup.py build_ext --inplace

bench: accel
	$(PYTHON) -m benchmarks.run_bench

# Produce a small Fig 6 trace and summarize it — the quickest way to
# see the telemetry pipeline end to end. Artifacts land in build/
# (never committed); open build/trace-demo.json at
# https://ui.perfetto.dev for the interactive view.
trace-demo:
	mkdir -p build
	$(PYTHON) -m repro.experiments fig6 --scale 0.1 \
		--trace build/trace-demo.json --metrics build/trace-demo-metrics.json
	$(PYTHON) -m repro trace summarize build/trace-demo.json
	$(PYTHON) -m repro report build/trace-demo.json \
		--metrics build/trace-demo-metrics.json

bench-check: accel
	$(PYTHON) -m benchmarks.run_bench --check

bench-update: accel
	$(PYTHON) -m benchmarks.run_bench --update

# End-to-end simulated-plane runs at macro worker counts. Defaults to
# the 1k tier; set FRIEDA_MACRO_TIERS=1k,10k,100k for the full family.
bench-macro: accel
	$(PYTHON) -m benchmarks.bench_macro

bench-macro-update: accel
	$(PYTHON) -m benchmarks.bench_macro --update

# Runtime chaos: fault-path suites for the real execution planes plus
# the cross-engine parity suite (simulated vs threaded vs TCP must
# reach identical outcome digests under equivalent injected faults).
chaos-runtime:
	$(PYTHON) -m pytest tests/integration/test_chaos_parity.py \
		tests/runtime/test_tcp_faults.py tests/runtime/test_local_faults.py \
		tests/runtime/test_faults.py tests/runtime/test_telemetry_ship.py -x -q

# Seeded chaos sweep (VM failures + link faults + transfer faults) run
# twice; the digests must match byte-for-byte or determinism regressed.
chaos:
	$(PYTHON) -m repro.experiments chaos --scale 0.05 | tee /tmp/frieda-chaos-1.txt
	$(PYTHON) -m repro.experiments chaos --scale 0.05 > /tmp/frieda-chaos-2.txt
	@grep '^chaos digest:' /tmp/frieda-chaos-1.txt > /tmp/frieda-chaos-digest-1.txt
	@grep '^chaos digest:' /tmp/frieda-chaos-2.txt > /tmp/frieda-chaos-digest-2.txt
	@diff /tmp/frieda-chaos-digest-1.txt /tmp/frieda-chaos-digest-2.txt \
		&& echo "chaos sweep reproducible: digests match"
