PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint check bench bench-check bench-update

test:
	$(PYTHON) -m pytest -x -q

# frieda-lint (custom AST invariant checker) + ruff (style/pyflakes).
# ruff is pinned in the `test` extra; when it is not installed (minimal
# containers) the custom analyzer still gates and ruff is skipped.
lint:
	$(PYTHON) -m repro.analysis src --baseline lint-baseline.json
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipped (pip install -e '.[test]')"; \
	fi

# One command to gate a PR locally: invariants, tests, perf regressions.
check: lint test bench-check

bench:
	$(PYTHON) -m benchmarks.run_bench

bench-check:
	$(PYTHON) -m benchmarks.run_bench --check

bench-update:
	$(PYTHON) -m benchmarks.run_bench --update
