#!/usr/bin/env python3
"""The paper's BLAST workload, for real: sequence search under FRIEDA.

Builds a synthetic protein database (the common data every worker
needs) and a set of query files, then runs mini-BLAST searches as
FRIEDA tasks with the ``single`` grouping — one query file per task —
under real-time partitioning. Per-task cost varies with match
structure, which is why the pull-based mode load-balances here.

Run:  python examples/blast_pipeline.py [num_query_files]
"""

import os
import sys
import tempfile

from repro import Frieda, PartitionScheme, StrategyKind
from repro.apps.blast import (
    BlastDatabase,
    blast_search,
    read_fasta,
    synthetic_database,
    synthetic_queries,
    tabular_report,
    trace_hit,
    write_fasta,
)

DATABASE: BlastDatabase | None = None
hit_counts: dict[str, int] = {}


def search_query_file(path: str) -> None:
    """The task program: run every query in the file against the DB."""
    for query in read_fasta(path):
        hits = blast_search(query, DATABASE)
        hit_counts[query.seq_id] = len(hits)


def main() -> None:
    global DATABASE
    num_files = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    queries_per_file = 3

    print("building synthetic protein database (the common data)...")
    db_records = synthetic_database(40, mean_length=240, seed=5)
    DATABASE = BlastDatabase(db_records)
    queries = synthetic_queries(db_records, num_files * queries_per_file, seed=9)

    with tempfile.TemporaryDirectory() as datadir:
        paths = []
        for i in range(num_files):
            path = os.path.join(datadir, f"queries{i:03d}.fa")
            write_fasta(queries[i * queries_per_file : (i + 1) * queries_per_file], path)
            paths.append(path)

        frieda = Frieda.local(num_workers=4)
        outcome = frieda.run(
            paths,
            command=search_query_file,
            strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.SINGLE,
        )
        print(
            f"searched {len(hit_counts)} queries in {outcome.tasks_completed} tasks, "
            f"makespan {outcome.makespan:.2f}s"
        )
        with_hits = {q: n for q, n in hit_counts.items() if n}
        print(f"{len(with_hits)}/{len(hit_counts)} queries matched the database:")
        for q in sorted(with_hits):
            print(f"  {q}: {with_hits[q]} hits")
        assert outcome.all_tasks_ok

        # Inspect the single best alignment across all queries, BLAST-style.
        best = None
        for query in queries:
            hits = blast_search(query, DATABASE)
            if hits and (best is None or hits[0].bit_score > best[1].bit_score):
                best = (query, hits[0])
        if best is not None:
            query, hit = best
            print(f"\nbest alignment ({query.seq_id} vs {hit.subject_id}):")
            print(tabular_report(query, [hit], DATABASE, header=True).rstrip())
            print(trace_hit(query, hit, DATABASE).pretty(width=60))


if __name__ == "__main__":
    main()
