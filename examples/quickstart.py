#!/usr/bin/env python3
"""Quickstart: run a data-parallel program under FRIEDA in one page.

Creates a handful of text files, then uses the threaded engine to run a
word-count function over them with real-time (pull-based) data
management — the 30-second tour of the public API.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import Frieda, PartitionScheme, StrategyKind

counts = {}


def word_count(path: str) -> None:
    """The 'application': FRIEDA runs it unmodified on each input."""
    with open(path, "r", encoding="utf-8") as fh:
        counts[os.path.basename(path)] = len(fh.read().split())


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        # 1. Some input files (your real data directory goes here).
        paths = []
        for i in range(8):
            path = os.path.join(workdir, f"doc{i}.txt")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("frieda moves data so your program does not have to " * (i + 1))
            paths.append(path)

        # 2. A FRIEDA instance: 4 local workers (use .tcp() for the
        #    socket-based runtime, .simulated() for the cloud model).
        frieda = Frieda.local(num_workers=4)

        # 3. Run: one file per task (the default grouping), lazy
        #    real-time distribution (the paper's load-balancing mode).
        outcome = frieda.run(
            paths,
            command=word_count,
            strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.SINGLE,
        )

        print(f"strategy   : {outcome.strategy.value}")
        print(f"tasks      : {outcome.tasks_completed}/{outcome.tasks_total}")
        print(f"makespan   : {outcome.makespan * 1000:.1f} ms")
        for name in sorted(counts):
            print(f"  {name}: {counts[name]} words")
        assert outcome.all_tasks_ok


if __name__ == "__main__":
    main()
