#!/usr/bin/env python3
"""Quantitative beamline analysis under FRIEDA: radial profiles + rings.

Goes beyond the paper's similarity check: each FRIEDA task extracts a
frame's radial intensity profile, finds the diffraction-ring radii, and
the driver then clusters frames by ring-system similarity — grouping
the samples without ever being told which frame belongs to which.

Run:  python examples/ring_analysis.py [num_frames]
"""

import sys
import tempfile
import threading

import numpy as np

from repro import Frieda, PartitionScheme, StrategyKind
from repro.apps.imaging import (
    BeamlineImageConfig,
    find_rings,
    radial_profile,
    ring_similarity,
    write_image_dataset,
)

rings_by_frame: dict[str, list[float]] = {}
_lock = threading.Lock()


def analyze(path: str) -> None:
    """The task program: frame -> ring radii."""
    image = np.load(path)
    rings = find_rings(radial_profile(image), min_prominence=0.15)
    with _lock:
        rings_by_frame[path.rsplit("/", 1)[-1]] = rings


def main() -> None:
    num_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    config = BeamlineImageConfig(size=192, shot_noise=False)
    with tempfile.TemporaryDirectory() as datadir:
        # frames_per_sample=2: consecutive frames share a ring system.
        paths = write_image_dataset(
            datadir, num_frames, config=config, frames_per_sample=2, seed=31
        )
        outcome = Frieda.local(num_workers=4).run(
            paths,
            command=analyze,
            strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.SINGLE,
        )
        assert outcome.all_tasks_ok
        print(f"analyzed {outcome.tasks_completed} frames in {outcome.makespan:.2f}s")
        for name in sorted(rings_by_frame):
            radii = ", ".join(f"{r:.0f}" for r in rings_by_frame[name])
            print(f"  {name}: rings at [{radii}] px")

        # Cluster frames by ring-system similarity (same sample -> same
        # rings), checking the pairing the generator built in.
        names = sorted(rings_by_frame)
        matched = 0
        for a, b in zip(names[0::2], names[1::2]):
            similarity = ring_similarity(rings_by_frame[a], rings_by_frame[b])
            verdict = "same sample" if similarity >= 0.5 else "different"
            matched += similarity >= 0.5
            print(f"  {a} ~ {b}: ring similarity {similarity:.2f} -> {verdict}")
        print(f"{matched}/{len(names) // 2} adjacent pairs identified as same-sample")


if __name__ == "__main__":
    main()
