#!/usr/bin/env python3
"""A multi-stage scientific workflow over FRIEDA (§VI integration).

The paper notes FRIEDA handles only data-parallel tasks but can be
driven by a higher-level workflow engine. This example is that pattern:
a three-stage beamline pipeline where each stage is a FRIEDA run with
its own grouping and strategy —

1. **calibrate** — per-frame background estimation (single grouping),
2. **compare** — pairwise frame similarity (pairwise_adjacent),
3. **summarize** — one reduction over all comparison results.

Run:  python examples/workflow_pipeline.py
"""

import json
import tempfile

import numpy as np

from repro.apps.imaging import BeamlineImageConfig, compare_image_files, write_image_dataset
from repro.core.commands import CommandTemplate
from repro.core.strategies import StrategyKind
from repro.data.partition import PartitionScheme
from repro.workflow import Stage, WorkflowEngine, WorkflowGraph


def calibrate(path: str) -> str:
    """Estimate a frame's background level (the paper's 'stage and
    checkpoint intermediate data' pattern)."""
    image = np.load(path)
    return json.dumps({"frame": path.rsplit("/", 1)[-1], "background": float(np.median(image))})


def compare(path_a: str, path_b: str) -> str:
    result = compare_image_files(path_a, path_b)
    return result.to_json()


def summarize(*paths: str) -> str:
    similar = 0
    total = 0
    for path in paths:
        record = json.loads(open(path).read())
        if "similar" in record:
            total += 1
            similar += bool(record["similar"])
    return json.dumps({"pairs": total, "similar": similar})


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        frames = write_image_dataset(
            f"{workdir}/frames", 8, config=BeamlineImageConfig(size=128), seed=21
        )
        graph = WorkflowGraph(
            [
                Stage(
                    "calibrate",
                    CommandTemplate(function=calibrate, name="calibrate"),
                    strategy=StrategyKind.REAL_TIME,
                ),
                Stage(
                    "compare",
                    CommandTemplate(function=compare, name="compare"),
                    grouping=PartitionScheme.PAIRWISE_ADJACENT,
                    strategy=StrategyKind.REAL_TIME,
                ),
                Stage(
                    "summarize",
                    CommandTemplate(function=summarize, name="summarize"),
                    inputs_from=("compare",),
                    grouping=PartitionScheme.ROUND_ROBIN_CHUNKS,
                    grouping_options={"chunks": 1},
                ),
            ]
        )
        engine = WorkflowEngine(num_workers=4, work_dir=workdir)
        result = engine.run(graph, frames)
        print(f"workflow ok={result.ok}, {result.total_tasks} tasks across "
              f"{len(result.stage_results)} stages")
        for name, stage_result in result.stage_results.items():
            outcome = stage_result.outcome
            print(f"  {name:>10s}: {outcome.tasks_completed} tasks, "
                  f"{len(stage_result.output_paths)} outputs, "
                  f"{outcome.makespan:.2f}s")
        summary = json.loads(open(result.outputs_of("summarize")[0]).read())
        print(f"summary: {summary['similar']}/{summary['pairs']} adjacent pairs similar")
        assert result.ok


if __name__ == "__main__":
    main()
