#!/usr/bin/env python3
"""The 'Intelligent' extension: strategy selection from history.

§V-A/§VII promise a FRIEDA that "selects the best data management
strategy based on past executions of an application". This example
shows the :class:`~repro.core.advisor.StrategyAdvisor` doing exactly
that: cold-start recommendations from workload features, then
history-driven recommendations after a few simulated runs.

Run:  python examples/adaptive_strategy.py
"""

from repro.core.advisor import RunRecord, StrategyAdvisor, WorkloadFeatures
from repro.core.strategies import StrategyKind
from repro.workloads import als_profile, blast_profile, run_profile


def main() -> None:
    advisor = StrategyAdvisor()

    print("=== cold start: feature-based recommendations ===")
    als_features = WorkloadFeatures(
        bytes_per_compute_second=6.2e6 * 2 / 2.0,  # two 6.2MB frames per ~2s task
        task_cost_cv=0.0,
    )
    blast_features = WorkloadFeatures(
        bytes_per_compute_second=20e3 / 81.6,  # tiny query file per 81.6s task
        task_cost_cv=0.35,
    )
    print(f"  ALS   (transfer-bound)        -> {advisor.recommend('als', als_features).value}")
    print(f"  BLAST (compute-bound, skewed) -> {advisor.recommend('blast', blast_features).value}")

    print("\n=== learning from simulated runs (scale=0.1) ===")
    for name, profile in (("als", als_profile(0.1)), ("blast", blast_profile(0.1))):
        for strategy in (StrategyKind.PRE_PARTITIONED_REMOTE, StrategyKind.REAL_TIME):
            outcome = run_profile(profile, strategy)
            advisor.record(
                RunRecord(
                    app_name=name,
                    strategy=strategy,
                    makespan=outcome.makespan,
                    transfer_time=outcome.transfer_time,
                    execution_time=outcome.execution_time,
                    tasks=outcome.tasks_total,
                )
            )
            print(f"  observed {name}/{strategy.value}: {outcome.makespan:.1f}s")
    print("\n=== history-driven recommendations ===")
    for name in ("als", "blast"):
        best = advisor.recommend(name)
        observed = advisor.observed_strategies(name)
        detail = ", ".join(f"{k.value}={v:.1f}s" for k, v in sorted(observed.items()))
        print(f"  {name}: {best.value}   ({detail})")


if __name__ == "__main__":
    main()
