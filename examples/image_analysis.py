#!/usr/bin/env python3
"""The paper's ALS workload, for real: pairwise image comparison.

Generates a directory of synthetic beamline frames, then runs the
bundled image-comparison program under FRIEDA with the
``pairwise_adjacent`` grouping (two files per task, exactly like the
light-source analysis in §IV-A), comparing two data-management
strategies on real wall-clock time.

Run:  python examples/image_analysis.py [num_images]
"""

import sys
import tempfile

from repro import Frieda, PartitionScheme, StrategyKind
from repro.apps.imaging import BeamlineImageConfig, compare_image_files, write_image_dataset

verdicts = []


def compare(path_a: str, path_b: str) -> None:
    """The two-input program (Fig 3's `app $inp1 $inp2`)."""
    result = compare_image_files(path_a, path_b)
    verdicts.append((result.file_a, result.file_b, result.similar, round(result.ncc, 3)))


def main() -> None:
    num_images = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    if num_images % 2:
        num_images += 1
    config = BeamlineImageConfig(size=256)

    with tempfile.TemporaryDirectory() as datadir:
        print(f"generating {num_images} synthetic beamline frames...")
        paths = write_image_dataset(datadir, num_images, config=config, seed=11)

        for strategy in (StrategyKind.PRE_PARTITIONED_REMOTE, StrategyKind.REAL_TIME):
            verdicts.clear()
            frieda = Frieda.local(num_workers=4)
            outcome = frieda.run(
                paths,
                command=compare,
                strategy=strategy,
                grouping=PartitionScheme.PAIRWISE_ADJACENT,
            )
            similar = sum(1 for *_xs, s, _n in [(v[0], v[1], v[2], v[3]) for v in verdicts] if s)
            print(
                f"{strategy.value:>24s}: {outcome.tasks_completed} comparisons in "
                f"{outcome.makespan:.2f}s (staging {outcome.transfer_time:.2f}s), "
                f"{similar} similar pairs"
            )
        for a, b, similar, ncc in sorted(verdicts):
            print(f"  {a} vs {b}: ncc={ncc:+.3f} -> {'similar' if similar else 'different'}")


if __name__ == "__main__":
    main()
