#!/usr/bin/env python3
"""Drive the simulated cloud directly: strategies, failures, elasticity.

Three vignettes on the discrete-event substrate:

1. strategy comparison on a transfer-heavy workload (Fig 6 in
   miniature),
2. a worker VM failing mid-run — paper-faithful isolation (tasks lost)
   versus the retry extension (tasks rerun),
3. elastic scale-out halfway through a run.

Run:  python examples/cloud_simulation.py
"""

from repro.cloud.cluster import ClusterSpec
from repro.cloud.failures import FailureSchedule
from repro.core.fault import RetryPolicy
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import ElasticAction, SimulatedEngine


def main() -> None:
    spec = ClusterSpec(num_workers=4)
    dataset = synthetic_dataset("frames", 80, "5 MB", seed=2)
    model = FixedComputeModel(3.0)

    print("=== 1. strategy comparison (80 x 5MB files, 3s/task) ===")
    for strategy in (
        StrategyKind.PRE_PARTITIONED_LOCAL,
        StrategyKind.PRE_PARTITIONED_REMOTE,
        StrategyKind.REAL_TIME,
    ):
        outcome = SimulatedEngine(spec).run(
            dataset,
            compute_model=model,
            strategy=strategy,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
        )
        print("  " + outcome.summary_line())

    print("\n=== 2. worker failure at t=30s ===")
    schedule = FailureSchedule.of((30.0, "worker2"))
    paper = SimulatedEngine(spec).run(
        dataset,
        compute_model=model,
        strategy=StrategyKind.REAL_TIME,
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
        failure_schedule=schedule,
    )
    print(f"  paper-faithful : {paper.tasks_completed} done, {paper.tasks_lost} lost "
          f"(failed worker isolated, no restarts)")
    resilient = SimulatedEngine(spec).run(
        dataset,
        compute_model=model,
        strategy=StrategyKind.REAL_TIME,
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
        failure_schedule=schedule,
        retry_policy=RetryPolicy.resilient(),
    )
    print(f"  retry extension: {resilient.tasks_completed} done, {resilient.tasks_lost} lost "
          f"(lost tasks rerun on survivors)")

    print("\n=== 3. elastic scale-out: +2 workers at t=20s ===")
    base = SimulatedEngine(spec).run(
        dataset, compute_model=model, strategy=StrategyKind.REAL_TIME,
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
    )
    elastic = SimulatedEngine(spec).run(
        dataset,
        compute_model=model,
        strategy=StrategyKind.REAL_TIME,
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
        elasticity=[ElasticAction(time=20.0, action="add"),
                    ElasticAction(time=20.0, action="add")],
    )
    print(f"  static 4 nodes : makespan {base.makespan:8.2f}s")
    print(f"  elastic 4->6   : makespan {elastic.makespan:8.2f}s "
          f"(x{base.makespan / elastic.makespan:.2f} faster)")


if __name__ == "__main__":
    main()
