"""ProjectContext: extraction, call-graph resolution, summary cache."""

from __future__ import annotations

import json
import os
import textwrap

from repro.analysis.project import (
    FuncKey,
    ModuleSummary,
    ProjectContext,
)


def _project(**modules: str) -> ProjectContext:
    return ProjectContext.from_sources(
        {name: textwrap.dedent(src) for name, src in modules.items()}
    )


# -- symbol table -----------------------------------------------------------

def test_extractor_collects_functions_classes_and_methods():
    project = _project(
        **{
            "repro.x.mod": """
            class Box:
                def __init__(self):
                    self.n = 0

                def bump(self):
                    self.n += 1

            def top():
                def inner():
                    pass
                return inner
            """
        }
    )
    summary = project.by_module("repro.x.mod")
    quals = {f.qual for f in summary.functions}
    assert quals == {"Box.__init__", "Box.bump", "top", "top.inner"}
    assert summary.classes["Box"]["methods"] == ["__init__", "bump"]
    assert project.by_module("repro.x.nope") is None


def test_summary_json_round_trip():
    project = _project(
        **{
            "repro.x.rt": """
            import time

            def f():
                return time.time()
            """
        }
    )
    summary = project.by_module("repro.x.rt")
    clone = ModuleSummary.from_json(summary.to_json())
    assert clone.module == summary.module
    assert [f.qual for f in clone.functions] == ["f"]
    assert [(c.caller, c.name) for c in clone.calls] == [("f", "time.time")]


# -- call resolution --------------------------------------------------------

def test_cross_module_and_alias_resolution():
    project = _project(
        **{
            "repro.a.caller": """
            from repro.b.helpers import work as w

            def go():
                w()
            """,
            "repro.b.helpers": """
            def work():
                pass
            """,
        }
    )
    graph = project.graph
    edges = graph.edges[FuncKey("repro.a.caller", "go")]
    assert [target.render() for target, _line in edges] == [
        "repro.b.helpers.work"
    ]


def test_self_method_and_constructor_resolution():
    project = _project(
        **{
            "repro.a.objs": """
            class Engine:
                def __init__(self):
                    self.steps = 0

                def run(self):
                    self.step()

                def step(self):
                    self.steps += 1

            def main():
                engine = Engine()
                engine.run()
            """
        }
    )
    graph = project.graph
    run_edges = graph.edges[FuncKey("repro.a.objs", "Engine.run")]
    assert [t.qual for t, _ in run_edges] == ["Engine.step"]
    main_edges = {t.qual for t, _ in graph.edges[FuncKey("repro.a.objs", "main")]}
    # Engine() resolves to the constructor; engine.run() through the
    # tracked local variable type.
    assert main_edges == {"Engine.__init__", "Engine.run"}


def test_method_resolution_through_base_class():
    project = _project(
        **{
            "repro.a.base": """
            class Base:
                def shared(self):
                    pass
            """,
            "repro.a.sub": """
            from repro.a.base import Base

            class Sub(Base):
                def go(self):
                    self.shared()
            """,
        }
    )
    graph = project.graph
    edges = graph.edges[FuncKey("repro.a.sub", "Sub.go")]
    assert [t.render() for t, _ in edges] == ["repro.a.base.Base.shared"]


def test_reachability_witness_path():
    project = _project(
        **{
            "repro.a.chain": """
            def a():
                b()

            def b():
                c()

            def c():
                pass
            """
        }
    )
    graph = project.graph
    visited = graph.reach_from([FuncKey("repro.a.chain", "a")])
    path = graph.witness(visited, FuncKey("repro.a.chain", "c"))
    assert [k.qual for k in path] == ["a", "b", "c"]


# -- cache ------------------------------------------------------------------

def _write_tree(root) -> dict[str, str]:
    pkg = root / "src" / "repro" / "tmpcache"
    pkg.mkdir(parents=True)
    files = {
        "alpha.py": "def alpha():\n    return 1\n",
        "beta.py": "def beta():\n    return 2\n",
        "gamma.py": "def gamma():\n    return 3\n",
    }
    for name, source in files.items():
        (pkg / name).write_text(source)
    return files


def test_cache_reuses_unchanged_files_and_invalidates_edited_one(tmp_path):
    _write_tree(tmp_path)
    tree = str(tmp_path / "src")
    cache = str(tmp_path / "audit-cache.json")

    first = ProjectContext.load([tree], cache_path=cache)
    assert first.stats == {"files": 3, "extracted": 3, "reused": 0}
    assert os.path.exists(cache)

    second = ProjectContext.load([tree], cache_path=cache)
    assert second.stats == {"files": 3, "extracted": 0, "reused": 3}

    edited = tmp_path / "src" / "repro" / "tmpcache" / "beta.py"
    edited.write_text("def beta():\n    return 20\n")
    third = ProjectContext.load([tree], cache_path=cache)
    assert third.stats == {"files": 3, "extracted": 1, "reused": 2}
    assert third.by_module("repro.tmpcache.beta") is not None


def test_cache_replays_per_file_findings_without_reparsing(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(
        "import time\n\ndef now():\n    return time.time()\n"
    )
    tree = str(tmp_path / "src")
    cache = str(tmp_path / "cache.json")

    first = ProjectContext.load([tree], cache_path=cache)
    second = ProjectContext.load([tree], cache_path=cache)
    assert second.stats["reused"] == 1
    assert [f.key for f in second.file_findings] == [
        f.key for f in first.file_findings
    ]
    assert any(f.rule == "wall-clock" for f in second.file_findings)


def test_cache_discarded_when_fingerprint_changes(tmp_path):
    _write_tree(tmp_path)
    tree = str(tmp_path / "src")
    cache = str(tmp_path / "cache.json")
    ProjectContext.load([tree], cache_path=cache)

    payload = json.loads(open(cache).read())
    payload["fingerprint"] = "stale"
    open(cache, "w").write(json.dumps(payload))

    again = ProjectContext.load([tree], cache_path=cache)
    assert again.stats["reused"] == 0
    assert again.stats["extracted"] == 3
