"""Tier-1 gate: the library itself passes its own invariant checker.

This is the test that makes the contracts *enforced*: any new
wall-clock read, global RNG draw, dropped event, or boundary leak in
``src/`` fails CI here unless it carries a justified pragma (or, as a
last resort, a baseline entry — the committed baseline is empty and
should stay that way).
"""

from __future__ import annotations

import os

from repro.analysis import analyze_paths
from repro.analysis.reporting import load_baseline, split_by_baseline

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def _src_findings():
    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        return analyze_paths(["src"])
    finally:
        os.chdir(cwd)


def test_src_has_zero_unbaselined_violations():
    findings = _src_findings()
    baseline = load_baseline(os.path.join(REPO_ROOT, "lint-baseline.json"))
    fresh, _known = split_by_baseline(findings, baseline)
    assert fresh == [], "\n" + "\n".join(f.render() for f in fresh)


def test_baseline_carries_no_stale_debt():
    # Every baseline entry must still correspond to a real finding;
    # fixed violations must be removed from the baseline, not hoarded.
    findings = {f.key for f in _src_findings()}
    baseline = load_baseline(os.path.join(REPO_ROOT, "lint-baseline.json"))
    stale = baseline - findings
    assert stale == set(), f"stale baseline entries: {sorted(stale)}"


def test_src_is_clean_under_the_whole_program_audit():
    # The `make audit` gate as a tier-1 test: per-file rules plus the
    # call-graph taint, concurrency, and protocol packs, zero findings.
    from repro.analysis.project import audit_paths

    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        findings, project = audit_paths(["src"])
    finally:
        os.chdir(cwd)
    baseline = load_baseline(os.path.join(REPO_ROOT, "lint-baseline.json"))
    fresh, _known = split_by_baseline(findings, baseline)
    assert fresh == [], "\n" + "\n".join(f.render() for f in fresh)
    assert project.stats["files"] > 100  # the pass saw the whole tree
