"""CLI contract: exit codes, JSON output, --rule filter, --stats, --project."""

from __future__ import annotations

import json
import os

from repro.analysis.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
BAD = os.path.join(FIXTURES, "wall_clock_bad.py")
GOOD = os.path.join(FIXTURES, "wall_clock_good.py")


def test_json_mode_exits_nonzero_with_parseable_payload(capsys):
    rc = main([BAD, "--format", "json"])
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert rc == 1
    assert payload["count"] == len(payload["findings"]) > 0
    assert payload["files_scanned"] == 1
    assert all(
        set(f) == {"path", "line", "rule", "message"} for f in payload["findings"]
    )


def test_json_mode_exits_zero_on_clean_file(capsys):
    rc = main([GOOD, "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["count"] == 0


def test_rule_filter_narrows_the_run(capsys):
    # The fixture violates wall-clock; filtered to an unrelated rule the
    # run is clean, filtered to the violated rule it fails.
    assert main([BAD, "--rule", "no-print"]) == 0
    capsys.readouterr()
    assert main([BAD, "--rule", "wall-clock"]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out


def test_unknown_rule_id_is_a_usage_error(capsys):
    rc = main([BAD, "--rule", "not-a-rule"])
    assert rc == 2
    assert "not-a-rule" in capsys.readouterr().err


def test_stats_prints_per_rule_timing(capsys):
    rc = main([GOOD, "--stats"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "wall-clock" in out and "ms" in out


def test_stats_in_json_mode_keeps_stdout_machine_readable(capsys):
    rc = main([GOOD, "--format", "json", "--stats"])
    captured = capsys.readouterr()
    json.loads(captured.out)  # stdout must stay pure JSON
    assert rc == 0
    assert "ms" in captured.err


def test_project_mode_runs_and_writes_cache(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "climini"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text("def f():\n    return 1\n")
    cache = tmp_path / "cache.json"
    rc = main([str(tmp_path / "src"), "--project", "--cache", str(cache)])
    assert rc == 0
    assert cache.exists()
    assert "1 file(s)" in capsys.readouterr().out


def test_project_mode_reports_project_findings(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "runtime"
    pkg.mkdir(parents=True)
    (pkg / "fixture_cli_async.py").write_text(
        "import time\n\n\nasync def runner():\n    time.sleep(0.1)\n"
    )
    rc = main(
        [str(tmp_path / "src"), "--project", "--rule", "async-blocking"]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "async-blocking" in out


def test_list_rules_includes_project_packs(capsys):
    rc = main(["--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for rule_id in (
        "wall-clock",
        "transitive-real-io",
        "lock-outlier",
        "async-blocking",
        "protocol-exhaustive",
    ):
        assert rule_id in out
