"""Framework-level tests: pragmas, module mapping, baseline, CLI."""

from __future__ import annotations

import json
import os

from repro.analysis import analyze_source, iter_rules
from repro.analysis.cli import main
from repro.analysis.framework import Finding, module_for_path, parse_pragmas
from repro.analysis.reporting import load_baseline, save_baseline, split_by_baseline


# -- pragmas ----------------------------------------------------------------

def test_end_of_line_pragma_suppresses_only_that_line():
    source = (
        "import time\n"
        "a = time.time()  # frieda: allow[wall-clock] -- justified\n"
        "b = time.time()\n"
    )
    findings = analyze_source(source, module="repro.sim.x")
    assert [(f.line, f.rule) for f in findings] == [(3, "wall-clock")]


def test_standalone_pragma_covers_next_line():
    source = (
        "import time\n"
        "# frieda: allow[wall-clock] -- multi-line call below\n"
        "a = time.time(\n"
        ")\n"
    )
    assert analyze_source(source, module="repro.sim.x") == []


def test_file_pragma_suppresses_everywhere():
    source = (
        "# frieda: allow-file[wall-clock] -- measurement module\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    assert analyze_source(source, module="repro.sim.x") == []


def test_pragma_is_rule_specific():
    source = (
        "import time\n"
        "time.sleep(time.time())  # frieda: allow[wall-clock]\n"
    )
    findings = analyze_source(source, module="repro.sim.x")
    assert [(f.line, f.rule) for f in findings] == [(2, "real-sleep")]


def test_parse_pragmas_multiple_ids():
    line_pragmas, file_pragmas = parse_pragmas(
        "# frieda: allow[a, b] -- x\n# frieda: allow-file[c]\n"
    )
    assert line_pragmas[1] == {"a", "b"}
    assert line_pragmas[2] == {"a", "b"}  # standalone comment covers next line
    assert file_pragmas == {"c"}


# -- module mapping ---------------------------------------------------------

def test_module_for_path():
    assert module_for_path("src/repro/sim/kernel.py") == "repro.sim.kernel"
    assert module_for_path("src/repro/sim/__init__.py") == "repro.sim"
    assert module_for_path("repro/cloud/network.py") == "repro.cloud.network"
    assert module_for_path("somewhere/else/script.py") == "script"


def test_synthetic_violation_in_kernel_module_is_reported():
    # The acceptance check: seeding time.time() into a sim module makes
    # the analyzer report it at file:line with the rule id.
    with open("src/repro/sim/kernel.py", "r", encoding="utf-8") as handle:
        source = handle.read()
    tainted = source + "\n\ndef _leak():\n    import time\n    return time.time()\n"
    findings = analyze_source(
        tainted, path="src/repro/sim/kernel.py", module="repro.sim.kernel"
    )
    assert [(f.rule, f.line) for f in findings] == [
        ("wall-clock", len(tainted.splitlines()))
    ]


# -- import-alias resolution ------------------------------------------------

def test_aliased_import_does_not_dodge_wall_clock():
    source = (
        "import time as _t\n"
        "a = _t.time()\n"
        "b = _t.monotonic()\n"
    )
    findings = analyze_source(source, module="repro.sim.x")
    assert [(f.line, f.rule) for f in findings] == [
        (2, "wall-clock"),
        (3, "wall-clock"),
    ]


def test_from_import_does_not_dodge_rules():
    source = (
        "from time import sleep, time as now\n"
        "from random import shuffle\n"
        "now()\n"
        "sleep(1)\n"
        "shuffle([1, 2])\n"
    )
    findings = analyze_source(source, module="repro.sim.x")
    assert [(f.line, f.rule) for f in findings] == [
        (3, "wall-clock"),
        (4, "real-sleep"),
        (5, "global-random"),
    ]


def test_local_name_random_is_not_the_stdlib_module():
    source = (
        "class _R:\n"
        "    def shuffle(self, xs):\n"
        "        return xs\n"
        "random = _R()\n"
        "random.shuffle([1, 2])\n"
    )
    assert analyze_source(source, module="repro.sim.x") == []


# -- rules registry ---------------------------------------------------------

def test_all_rule_packs_registered():
    ids = {rule.id for rule in iter_rules()}
    assert ids == {
        "wall-clock",
        "real-sleep",
        "global-random",
        "unseeded-rng",
        "dropped-event",
        "yield-non-event",
        "yield-in-finally",
        "real-io",
        "instant-trigger",
        "double-trigger",
        "no-print",
    }
    assert all(rule.description for rule in iter_rules())


# -- baseline ---------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    findings = [
        Finding("a.py", 3, "wall-clock", "m"),
        Finding("b.py", 7, "real-io", "m"),
    ]
    path = str(tmp_path / "baseline.json")
    save_baseline(path, findings)
    baseline = load_baseline(path)
    assert baseline == {("a.py", "wall-clock", 3), ("b.py", "real-io", 7)}
    fresh, known = split_by_baseline(
        findings + [Finding("c.py", 1, "real-sleep", "m")], baseline
    )
    assert [f.path for f in fresh] == ["c.py"]
    assert len(known) == 2


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "nope.json")) == set()
    assert load_baseline(None) == set()


# -- CLI --------------------------------------------------------------------

def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return str(path)


def test_cli_clean_file_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", "x = 1\n")
    assert main([path]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_violation_exits_nonzero_with_location(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import time\nx = time.time()\n")
    assert main([path]) == 1
    out = capsys.readouterr().out
    # Findings are keyed by a path ending in the file, with line and rule.
    assert "dirty.py:2: wall-clock:" in out


def test_cli_json_format(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import time\nx = time.time()\n")
    assert main([path, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "wall-clock"
    assert payload["findings"][0]["line"] == 2


def test_cli_baseline_masks_known_findings(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", "import time\nx = time.time()\n")
    baseline = str(tmp_path / "baseline.json")
    assert main([path, "--baseline", baseline, "--write-baseline"]) == 0
    capsys.readouterr()
    # Baselined finding no longer fails the run...
    assert main([path, "--baseline", baseline]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # ...but a new violation still does.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("y = time.time()\n")
    assert main([path, "--baseline", baseline]) == 1


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "wall-clock" in out and "double-trigger" in out


def test_repo_baseline_is_empty():
    # The acceptance criterion: the committed baseline carries no debt.
    repo_baseline = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "lint-baseline.json"
    )
    assert load_baseline(repo_baseline) == set()
