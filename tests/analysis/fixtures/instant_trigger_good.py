"""Good: only manually created events are triggered by hand."""


def manual(env):
    done = env.event()
    done.succeed("ok")


def reassigned(env):
    # After reassignment the name no longer holds the timeout.
    done = env.timeout(5.0)
    done = env.event()
    done.succeed("ok")
