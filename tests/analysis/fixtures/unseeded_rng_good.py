"""Good: the generator is seeded from a derived stream."""

import numpy as np

from repro.util.seeding import derive_seed


def build(root_seed):
    return np.random.default_rng(derive_seed(root_seed, "fixture"))
