"""Bad: library code writing progress to stdout."""


def assign(scheduler, worker_id):
    assignment = scheduler.next_for(worker_id)
    print(f"assigned {assignment} to {worker_id}")
    if assignment is None:
        print("no work left")
    return assignment
