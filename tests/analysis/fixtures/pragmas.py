"""Every violation here is pragma'd: the analyzer must report nothing.

Exercises all three pragma placements: end-of-line, standalone
comment-above, and file-level allow-file.
"""

# frieda: allow-file[real-sleep] -- fixture exercising file-level pragmas

import time
from datetime import datetime


def end_of_line():
    return time.time()  # frieda: allow[wall-clock] -- fixture


def comment_above():
    # frieda: allow[wall-clock] -- fixture, multi-line statement
    stamp = datetime.now(
    )
    return stamp


def file_level():
    time.sleep(0.5)


def multi_rule(env):
    # frieda: allow[dropped-event, wall-clock] -- fixture, two rules one line
    env.timeout(time.time())
    yield env.timeout(1.0)
