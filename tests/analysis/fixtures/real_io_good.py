"""Good (as a simulation module): pure virtual-time modelling."""


def transfer_time(nbytes, bandwidth_bps):
    return nbytes * 8.0 / bandwidth_bps
