"""Good: every event is yielded, stored, or passed on."""


def worker(env, store):
    yield env.timeout(5.0)
    item = yield store.get()
    return item


def spawner(env, child):
    proc = env.process(child())
    yield proc


def joiner(env, children):
    yield env.all_of([env.process(c()) for c in children])
