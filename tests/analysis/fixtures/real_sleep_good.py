"""Good: waiting is virtual (sim) or condition-based (runtime)."""


def wait_sim(env, delay):
    yield env.timeout(delay)


def wait_runtime(wakeup, queue):
    with wakeup:
        while not queue:
            wakeup.wait(timeout=1.0)
        return queue.pop()
