"""Good: one trigger per event instance (reset/reassign make new ones)."""


def once_each(env):
    first = env.event()
    second = env.event()
    first.succeed(1)
    second.succeed(2)


def recycled(env, wake):
    # reset() returns a processed event to pending: retriggering is legal.
    wake.succeed(1)
    wake.reset()
    wake.succeed(2)


def branched(env, done, flag):
    # Branches are separate suites; only one arm runs.
    if flag:
        done.succeed("yes")
    else:
        done.succeed("no")
