"""Bad: blocks on real time in a poll loop."""

import time


def poll(queue):
    while not queue:
        time.sleep(0.01)
    return queue.pop()
