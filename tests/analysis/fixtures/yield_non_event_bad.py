"""Bad: yields that the kernel rejects at runtime with SimulationError."""


def worker(env):
    yield
    yield 5.0
    yield (env.timeout(1.0), env.timeout(2.0))
    yield env.now > 3
