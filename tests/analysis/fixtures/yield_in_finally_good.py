"""Good: finally does synchronous cleanup only."""


def worker(env, resource):
    request = resource.request()
    try:
        yield request
    finally:
        resource.release(request)
