"""Good: all randomness flows through explicit seeded streams."""

from repro.util.seeding import make_rng


def sample(seed):
    rng = make_rng(seed, "fixture")
    return rng.random(), rng.integers(0, 10)
