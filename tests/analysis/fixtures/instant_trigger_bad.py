"""Bad: triggering events that are born triggered — always raises."""


def chained(env):
    env.timeout(5.0).succeed()


def assigned(env, child):
    done = env.timeout(5.0)
    done.succeed("too late")
    proc = env.process(child())
    proc.fail(RuntimeError("boom"))
