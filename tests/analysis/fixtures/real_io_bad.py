"""Bad (as a simulation module): real I/O and real concurrency."""

import socket
import subprocess
import threading


def leak(path):
    with open(path) as handle:
        data = handle.read()
    return data
