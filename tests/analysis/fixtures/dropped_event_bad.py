"""Bad: events created and dropped on the floor — silent no-ops."""


def worker(env, store):
    env.timeout(5.0)
    store.get()
    yield env.timeout(1.0)


def spawner(env, child):
    env.process(child())
    yield env.timeout(1.0)
