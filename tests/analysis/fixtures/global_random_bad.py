"""Bad: draws from global RNG state."""

import os
import random

import numpy as np


def sample():
    a = random.random()
    b = random.randint(0, 10)
    np.random.seed(42)
    c = np.random.rand()
    d = os.urandom(8)
    return a, b, c, d
