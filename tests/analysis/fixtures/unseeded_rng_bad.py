"""Bad: OS-entropy seeded generator — unreproducible by construction."""

import numpy as np


def build():
    rng = np.random.default_rng()
    return rng
