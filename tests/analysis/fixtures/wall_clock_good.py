"""Good: time comes from the simulation clock, not the host."""


def stamp(env):
    started = env.now
    return started
