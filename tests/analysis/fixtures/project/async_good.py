"""Clean asyncio patterns (module: repro.runtime.fixture_async_ok):
executor offload, awaited coroutines, re-check after the await."""

import asyncio


def read_all(path):
    with open(path) as fh:  # frieda: allow[async-blocking] -- runs on the executor, not the loop
        return fh.read()


async def tick():
    return 1


async def runner(path):
    await tick()
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, read_all, path)
