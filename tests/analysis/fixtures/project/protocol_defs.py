"""Frame kinds for the protocol fixtures (module: repro.core.fixture_protocol)."""

from typing import ClassVar


class Frame:
    msg_type: ClassVar[str] = "FRAME"


class Ping(Frame):
    msg_type: ClassVar[str] = "PING"


class Pong(Frame):
    msg_type: ClassVar[str] = "PONG"


class Halt(Frame):
    msg_type: ClassVar[str] = "HALT"


class Nack(Frame):
    msg_type: ClassVar[str] = "NACK"


class Reserved(Frame):
    msg_type: ClassVar[str] = "RESERVED"
