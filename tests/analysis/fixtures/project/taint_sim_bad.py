"""Sim process body reaching real time and IO through helpers
(module: repro.sim.fixture_taint): the per-file rules see nothing here,
the taint pack reports both sinks with witness chains."""

from repro.util.fixture_taint_helpers import pure, spill, stamp


def process(env):
    t = stamp()
    spill("out.txt", "x")
    return pure(t)
