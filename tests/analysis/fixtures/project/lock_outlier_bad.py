"""Lock-discipline outlier (module: repro.runtime.fixture_locks):
``scheduler`` is guarded by ``wakeup`` at two sites but touched bare at
a third."""

import threading


def setup():
    wakeup = threading.Condition()
    return wakeup


def worker(scheduler, wakeup):
    with wakeup:
        scheduler.queue.append(1)
    with wakeup:
        if scheduler.done:
            return
    scheduler.count += 1
