"""Sim module that only reaches pure helpers (module: repro.sim.fixture_taint_ok)."""

from repro.util.fixture_taint_helpers import pure


def process(env):
    return pure(1)
