"""Exhaustive protocol handling (module: repro.runtime.fixture_protocol_peers_ok):
every sent kind dispatched, dispatch chain ends in a default raise."""

from repro.core.fixture_protocol import Halt, Ping, Pong


async def master(channel, message):
    if isinstance(message, Pong):
        pass
    await channel.send(Ping())
    await channel.send(Halt())


async def worker(channel, message):
    if isinstance(message, Ping):
        await channel.send(Pong())
    elif isinstance(message, Halt):
        return
    else:
        raise ValueError(f"unexpected frame {message!r}")
