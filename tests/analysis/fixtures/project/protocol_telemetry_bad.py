"""Protocol pack true positive (module:
repro.runtime.fixture_protocol_tel_peers): the worker ships
``TelemetryFrame`` through a factory helper, but no dispatch chain on
the master side ever handles the kind — the batches vanish silently.
"""

from repro.core.fixture_protocol_tel import Ack, telemetry_message


async def worker(channel):
    await channel.send(telemetry_message("w0", 1))


async def master(channel, message):
    if isinstance(message, Ack):
        return
    raise ValueError("unexpected frame")
