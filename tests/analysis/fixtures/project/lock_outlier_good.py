"""Consistent lock discipline (module: repro.runtime.fixture_locks_ok)."""

import threading


def setup():
    wakeup = threading.Condition()
    return wakeup


def worker(scheduler, wakeup):
    with wakeup:
        scheduler.queue.append(1)
    with wakeup:
        if scheduler.done:
            return
    with wakeup:
        scheduler.count += 1
