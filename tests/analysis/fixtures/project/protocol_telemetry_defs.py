"""Telemetry frame kinds for the protocol fixtures
(module: repro.core.fixture_protocol_tel)."""

from typing import ClassVar


class Frame:
    msg_type: ClassVar[str] = "FRAME"


class TelemetryFrame(Frame):
    msg_type: ClassVar[str] = "TELEMETRY"
    worker_id: str = ""
    seq: int = 0


class Ack(Frame):
    msg_type: ClassVar[str] = "ACK"


def telemetry_message(worker_id, seq):
    return TelemetryFrame(worker_id=worker_id, seq=seq)
