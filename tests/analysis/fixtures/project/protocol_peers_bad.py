"""Protocol pack true positives (module: repro.runtime.fixture_protocol_peers):
``Nack`` is sent but dispatched nowhere, and the worker's two-kind
dispatch chain has no default raise; ``Reserved`` is dead."""

from repro.core.fixture_protocol import Halt, Nack, Ping, Pong


async def master(channel, message):
    if isinstance(message, Pong):
        pass
    await channel.send(Ping())
    await channel.send(Halt())
    await channel.send(Nack())


async def worker(channel, message):
    if isinstance(message, Ping):
        await channel.send(Pong())
    elif isinstance(message, Halt):
        return
