"""Impure helpers outside the sim packages (module: repro.util.fixture_taint_helpers)."""

import time


def stamp():
    return time.time()


def spill(path, data):
    with open(path, "w") as fh:
        fh.write(data)


def pure(x):
    return x + 1
