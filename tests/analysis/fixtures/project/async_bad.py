"""Asyncio pack true positives (module: repro.runtime.fixture_async):
blocking on the loop (direct and through a sync helper), a discarded
coroutine, and check-then-act on shared state across an await."""

import asyncio
import time


class Inbox:
    def __init__(self):
        self.pending = []

    async def drain(self):
        if self.pending:
            await asyncio.sleep(0)
            self.pending.pop()


def read_all(path):
    with open(path) as fh:
        return fh.read()


async def tick():
    return 1


async def runner(path):
    tick()
    time.sleep(0.1)
    return read_all(path)
