"""Good: a process yields Events (and data generators stay exempt)."""


def worker(env):
    yield env.timeout(1.0)
    yield env.all_of([env.timeout(2.0), env.timeout(3.0)])


def plain_data_generator(groups):
    # Not a process (never touches env): yielding tuples is fine here.
    for index, group in enumerate(groups):
        yield index, group
