"""Bad: reads the real clock inside library code."""

import time
from datetime import datetime


def stamp():
    started = time.time()
    elapsed = time.monotonic()
    now = datetime.now()
    return started, elapsed, now
