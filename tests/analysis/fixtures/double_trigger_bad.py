"""Bad: same event triggered twice in a straight line — always raises."""


def double(env):
    done = env.event()
    done.succeed(1)
    done.succeed(2)


def mixed(env):
    done = env.event()
    done.succeed("ok")
    done.fail(RuntimeError("boom"))
