"""Good: library code reports through telemetry, not stdout."""


def assign(scheduler, worker_id, telemetry):
    assignment = scheduler.next_for(worker_id)
    telemetry.event("scheduler.assigned", worker_id, track="control")
    return assignment
