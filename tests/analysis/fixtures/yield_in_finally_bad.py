"""Bad: yielding in cleanup breaks when the process is interrupted."""


def worker(env, resource):
    request = resource.request()
    try:
        yield request
    finally:
        yield env.timeout(1.0)
