"""Per-rule fixture tests: exact finding sets and pragma suppression.

Each rule has a good/bad fixture pair under ``fixtures/``. The bad
file's expected findings are asserted exactly — file, line, and rule id
— so a rule that drifts (new false positive, missed case, shifted line
attribution) fails loudly here.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import analyze_file

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: fixture stem -> list of (line, rule-id) expected from the bad file.
EXPECTED = {
    "wall_clock": [(8, "wall-clock"), (9, "wall-clock"), (10, "wall-clock")],
    "real_sleep": [(8, "real-sleep")],
    "global_random": [
        (10, "global-random"),
        (11, "global-random"),
        (12, "global-random"),
        (13, "global-random"),
        (14, "global-random"),
    ],
    "unseeded_rng": [(7, "unseeded-rng")],
    "dropped_event": [
        (5, "dropped-event"),
        (6, "dropped-event"),
        (11, "dropped-event"),
    ],
    "yield_non_event": [
        (5, "yield-non-event"),
        (6, "yield-non-event"),
        (7, "yield-non-event"),
        (8, "yield-non-event"),
    ],
    "yield_in_finally": [(9, "yield-in-finally")],
    "real_io": [(3, "real-io"), (4, "real-io"), (5, "real-io"), (9, "real-io")],
    "instant_trigger": [
        (5, "instant-trigger"),
        (10, "instant-trigger"),
        (12, "instant-trigger"),
    ],
    "double_trigger": [(7, "double-trigger"), (13, "double-trigger")],
    "no_print": [(6, "no-print"), (8, "no-print")],
}


def _analyze(name: str):
    """Analyze a fixture as if it lived in a simulation package."""
    path = os.path.join(FIXTURES, name + ".py")
    return analyze_file(path, module=f"repro.sim.fixture_{name}")


@pytest.mark.parametrize("stem", sorted(EXPECTED))
def test_bad_fixture_exact_findings(stem):
    findings = _analyze(stem + "_bad")
    got = [(f.line, f.rule) for f in findings]
    assert got == EXPECTED[stem], f"{stem}_bad.py findings drifted"
    path = os.path.join(FIXTURES, stem + "_bad.py")
    assert all(f.path == path for f in findings)


@pytest.mark.parametrize("stem", sorted(EXPECTED))
def test_good_fixture_clean(stem):
    assert _analyze(stem + "_good") == []


def test_pragma_fixture_fully_suppressed():
    assert _analyze("pragmas") == []


def test_no_print_exempts_output_surfaces():
    # The same file analyzed as a CLI / plotting / table module is
    # clean: stdout is exactly what those surfaces are for.
    path = os.path.join(FIXTURES, "no_print_bad.py")
    for module in ("repro.cli", "repro.experiments.plots", "repro.util.tables"):
        findings = analyze_file(path, module=module)
        assert [f for f in findings if f.rule == "no-print"] == []


def test_real_io_only_applies_to_simulation_modules():
    # The same file analyzed as a runtime module raises no real-io
    # findings: real I/O is that plane's job.
    path = os.path.join(FIXTURES, "real_io_bad.py")
    findings = analyze_file(path, module="repro.runtime.fixture")
    assert [f for f in findings if f.rule == "real-io"] == []
