"""Whole-program rule packs against the project fixture corpus.

Each fixture file under ``fixtures/project/`` is loaded with an
explicit dotted module name (the packs scope by package, as with the
per-file rule fixtures) and analyzed as one project via
``ProjectContext.from_sources``.
"""

from __future__ import annotations

import os

from repro.analysis.project import ProjectContext, run_project_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "project")


def _load(*pairs: tuple[str, str]) -> ProjectContext:
    sources = {}
    for module, file_name in pairs:
        with open(os.path.join(FIXTURES, file_name), "r", encoding="utf-8") as fh:
            sources[module] = fh.read()
    return ProjectContext.from_sources(sources)


def _findings(project, rule_id=None):
    found = run_project_rules(project)
    if rule_id is not None:
        found = [f for f in found if f.rule == rule_id]
    return found


# -- taint pack -------------------------------------------------------------

def test_taint_reports_wall_clock_and_io_through_helper_chain():
    project = _load(
        ("repro.sim.fixture_taint", "taint_sim_bad.py"),
        ("repro.util.fixture_taint_helpers", "taint_helpers.py"),
    )
    wall = _findings(project, "transitive-wall-clock")
    io = _findings(project, "transitive-real-io")
    assert len(wall) == 1 and len(io) == 1
    # Findings anchor at the sink call sites in the helper module...
    assert wall[0].path == "repro/util/fixture_taint_helpers.py"
    assert io[0].path == "repro/util/fixture_taint_helpers.py"
    # ...and carry the full witness chain from the sim entry point.
    assert "repro.sim.fixture_taint.process" in wall[0].message
    assert "time.time" in wall[0].message
    assert "open" in io[0].message


def test_taint_clean_when_sim_reaches_only_pure_helpers():
    project = _load(
        ("repro.sim.fixture_taint_ok", "taint_sim_good.py"),
        ("repro.util.fixture_taint_helpers", "taint_helpers.py"),
    )
    assert _findings(project, "transitive-wall-clock") == []
    assert _findings(project, "transitive-real-io") == []


def test_taint_ignores_impure_helpers_nobody_simulated_calls():
    project = _load(
        ("repro.util.fixture_taint_helpers", "taint_helpers.py"),
    )
    assert _findings(project, "transitive-wall-clock") == []
    assert _findings(project, "transitive-real-io") == []


# -- lock pack --------------------------------------------------------------

def test_lock_outlier_flags_single_unguarded_site():
    project = _load(("repro.runtime.fixture_locks", "lock_outlier_bad.py"))
    found = _findings(project, "lock-outlier")
    assert len(found) == 1
    assert "'scheduler'" in found[0].message
    assert "wakeup" in found[0].message
    # The outlier is the bare `scheduler.count += 1` line.
    with open(os.path.join(FIXTURES, "lock_outlier_bad.py")) as fh:
        lines = fh.read().splitlines()
    assert lines[found[0].line - 1].strip() == "scheduler.count += 1"


def test_lock_outlier_silent_on_consistent_discipline():
    project = _load(("repro.runtime.fixture_locks_ok", "lock_outlier_good.py"))
    assert _findings(project, "lock-outlier") == []


# -- asyncio pack -----------------------------------------------------------

def test_async_pack_reports_all_three_bug_classes():
    project = _load(("repro.runtime.fixture_async", "async_bad.py"))
    blocking = _findings(project, "async-blocking")
    unawaited = _findings(project, "async-unawaited")
    shared = _findings(project, "async-shared-mutation")

    blocked_calls = {f.message.split("blocking call ")[1].split("(")[0] for f in blocking}
    assert blocked_calls == {"time.sleep", "open"}
    # The open() finding reaches through the sync helper with a chain.
    open_finding = next(f for f in blocking if "open" in f.message)
    assert "runner" in open_finding.message and "read_all" in open_finding.message

    assert len(unawaited) == 1
    assert "tick" in unawaited[0].message

    assert len(shared) == 1
    assert "self.pending" in shared[0].message


def test_async_pack_clean_on_executor_offload_and_awaits():
    project = _load(("repro.runtime.fixture_async_ok", "async_good.py"))
    for rule_id in ("async-blocking", "async-unawaited", "async-shared-mutation"):
        assert _findings(project, rule_id) == [], rule_id


# -- protocol pack ----------------------------------------------------------

def test_protocol_pack_flags_unhandled_kind_missing_default_and_dead_kind():
    project = _load(
        ("repro.core.fixture_protocol", "protocol_defs.py"),
        ("repro.runtime.fixture_protocol_peers", "protocol_peers_bad.py"),
    )
    exhaustive = _findings(project, "protocol-exhaustive")
    dead = _findings(project, "protocol-dead-kind")

    unhandled = [f for f in exhaustive if "Nack" in f.message]
    assert len(unhandled) == 1
    assert "no dispatch chain" in unhandled[0].message

    chains = [f for f in exhaustive if "default raise" in f.message]
    assert len(chains) == 1
    assert "worker" in chains[0].message
    assert "Halt" in chains[0].message and "Ping" in chains[0].message

    assert [f.message.split()[2] for f in dead] == ["Reserved"]


def test_protocol_pack_clean_when_every_kind_is_dispatched():
    project = _load(
        ("repro.core.fixture_protocol", "protocol_defs.py"),
        ("repro.runtime.fixture_protocol_peers_ok", "protocol_peers_good.py"),
    )
    assert _findings(project, "protocol-exhaustive") == []
    # Nack/Reserved stay dead without the bad peer module.
    dead_kinds = {f.message.split()[2] for f in _findings(project, "protocol-dead-kind")}
    assert dead_kinds == {"Nack", "Reserved"}


def test_protocol_pack_flags_undispatched_telemetry_frame():
    # The telemetry plane regression this guards: a worker ships
    # TELEMETRY frames via a factory helper, the master never
    # isinstance-dispatches the kind, and every batch silently vanishes.
    project = _load(
        ("repro.core.fixture_protocol_tel", "protocol_telemetry_defs.py"),
        ("repro.runtime.fixture_protocol_tel_peers", "protocol_telemetry_bad.py"),
    )
    exhaustive = _findings(project, "protocol-exhaustive")
    unhandled = [f for f in exhaustive if "TelemetryFrame" in f.message]
    assert len(unhandled) == 1
    assert "no dispatch chain" in unhandled[0].message
