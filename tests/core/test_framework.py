"""Unit tests for RunOutcome/TaskRecord and the Frieda facade."""

import math

import pytest

from repro.core.framework import Frieda, FriedaConfig, RunOutcome, TaskRecord
from repro.core.strategies import StrategyKind
from repro.data.partition import PartitionScheme


def outcome(makespan=10.0, completed=4, total=4, **kw):
    return RunOutcome(
        strategy=StrategyKind.REAL_TIME,
        grouping=PartitionScheme.SINGLE,
        makespan=makespan,
        transfer_time=kw.pop("transfer_time", 2.0),
        execution_time=kw.pop("execution_time", 8.0),
        tasks_total=total,
        tasks_completed=completed,
        **kw,
    )


class TestTaskRecord:
    def test_duration(self):
        record = TaskRecord(0, "w0", "n0", start=1.0, end=3.5, ok=True)
        assert record.duration == pytest.approx(2.5)


class TestRunOutcome:
    def test_all_tasks_ok(self):
        assert outcome().all_tasks_ok
        assert not outcome(completed=3).all_tasks_ok

    def test_throughput(self):
        assert outcome(makespan=10.0, completed=5, total=5).throughput_tasks_per_second == pytest.approx(0.5)

    def test_throughput_degenerate(self):
        assert math.isnan(outcome(makespan=0.0).throughput_tasks_per_second)

    def test_speedup_over(self):
        fast = outcome(makespan=10.0)
        slow = outcome(makespan=40.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)

    def test_speedup_degenerate(self):
        assert math.isnan(outcome(makespan=0.0).speedup_over(outcome()))

    def test_summary_line_content(self):
        line = outcome(tasks_lost=2).summary_line()
        assert "real_time" in line
        assert "lost=2" in line

    def test_summary_line_omits_zero_losses(self):
        assert "lost" not in outcome().summary_line()


class TestFacade:
    def test_engine_accessor(self):
        frieda = Frieda.local(num_workers=1)
        assert frieda.engine is not None

    def test_config_defaults(self):
        config = FriedaConfig()
        assert config.strategy is StrategyKind.REAL_TIME
        assert config.multicore

    def test_local_and_tcp_constructors(self):
        assert Frieda.local(num_workers=2).engine.num_workers == 2
        assert Frieda.tcp(num_workers=3).engine.num_workers == 3

    def test_simulated_constructor_default_spec(self):
        frieda = Frieda.simulated()
        assert frieda.engine.spec.num_workers == 4
