"""Unit tests for heartbeat monitoring and recovery planning."""

import pytest

from repro.core.monitoring import (
    HeartbeatConfig,
    HeartbeatMonitor,
    Liveness,
    RecoveryPlan,
)


class TestHeartbeatConfig:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(suspect_after=10, dead_after=5)
        with pytest.raises(ValueError):
            HeartbeatConfig(suspect_after=0, dead_after=5)


class TestHeartbeatMonitor:
    @pytest.fixture
    def monitor(self):
        return HeartbeatMonitor(HeartbeatConfig(suspect_after=5, dead_after=15))

    def test_unknown_component(self, monitor):
        assert monitor.liveness("ghost", 0.0) is Liveness.UNKNOWN

    def test_healthy_within_threshold(self, monitor):
        monitor.beat("w0", 10.0)
        assert monitor.liveness("w0", 14.0) is Liveness.HEALTHY

    def test_suspected_after_silence(self, monitor):
        monitor.beat("w0", 10.0)
        assert monitor.liveness("w0", 16.0) is Liveness.SUSPECTED

    def test_dead_after_long_silence(self, monitor):
        monitor.beat("w0", 10.0)
        assert monitor.liveness("w0", 26.0) is Liveness.DEAD

    def test_suspected_component_recovers_on_beat(self, monitor):
        monitor.beat("w0", 10.0)
        assert monitor.liveness("w0", 16.0) is Liveness.SUSPECTED
        monitor.beat("w0", 17.0)
        assert monitor.liveness("w0", 18.0) is Liveness.HEALTHY

    def test_dead_stays_dead_despite_beats(self, monitor):
        monitor.beat("w0", 0.0)
        monitor.sweep(20.0)  # declares w0 dead
        assert monitor.liveness("w0", 20.0) is Liveness.DEAD
        monitor.beat("w0", 21.0)  # ignored: must re-register
        assert monitor.liveness("w0", 21.5) is Liveness.DEAD

    def test_liveness_is_pure(self, monitor):
        """Reading DEAD does not declare death; only sweep() does."""
        monitor.beat("w0", 0.0)
        assert monitor.liveness("w0", 20.0) is Liveness.DEAD
        monitor.beat("w0", 21.0)  # never declared, so the beat lands
        assert monitor.liveness("w0", 21.5) is Liveness.HEALTHY

    def test_forget_allows_reregistration(self, monitor):
        monitor.beat("w0", 0.0)
        monitor.sweep(20.0)  # declared dead
        monitor.forget("w0")
        monitor.beat("w0", 30.0)
        assert monitor.liveness("w0", 31.0) is Liveness.HEALTHY

    def test_stale_beat_ignored_and_counted(self):
        from repro.telemetry.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        monitor = HeartbeatMonitor(
            HeartbeatConfig(suspect_after=5, dead_after=15), metrics=metrics
        )
        monitor.beat("w0", 10.0)
        monitor.beat("w0", 5.0)  # threaded-runtime clock race: benign
        assert monitor.liveness("w0", 14.0) is Liveness.HEALTHY
        assert metrics.counter("heartbeat.stale").value == 1
        assert metrics.counter("heartbeat.beats").value == 1

    def test_sweep_counts_transitions_not_observations(self):
        from repro.telemetry.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        monitor = HeartbeatMonitor(
            HeartbeatConfig(suspect_after=5, dead_after=15), metrics=metrics
        )
        monitor.beat("w0", 0.0)
        monitor.sweep(6.0)
        monitor.sweep(7.0)  # still suspected: no second increment
        assert metrics.counter("heartbeat.suspected").value == 1
        monitor.sweep(20.0)
        monitor.sweep(21.0)  # still dead: no second increment
        assert metrics.counter("heartbeat.dead").value == 1

    def test_sweep_classifies_everyone(self, monitor):
        monitor.beat("a", 0.0)
        monitor.beat("b", 10.0)
        states = monitor.sweep(16.0)
        assert states["a"] is Liveness.DEAD
        assert states["b"] is Liveness.SUSPECTED

    def test_dead_components_set(self, monitor):
        monitor.beat("a", 0.0)
        monitor.beat("b", 14.0)
        assert monitor.dead_components(16.0) == frozenset({"a"})


class TestRecoveryPlan:
    def test_live_component_no_action(self):
        plan = RecoveryPlan()
        assert plan.decide("w0", Liveness.HEALTHY).action == "none"

    def test_dead_worker_isolated(self):
        plan = RecoveryPlan()
        action = plan.decide("w0", Liveness.DEAD)
        assert action.action == "isolate_worker"

    def test_dead_master_without_recovery_terminal(self):
        plan = RecoveryPlan(master_id="m", restart_master=False)
        action = plan.decide("m", Liveness.DEAD)
        assert action.action == "none"
        assert "single point of failure" in action.reason

    def test_dead_master_with_recovery_restarts(self):
        plan = RecoveryPlan(master_id="m", restart_master=True)
        assert plan.decide("m", Liveness.DEAD).action == "restart_master"
