"""Unit tests for the FRIEDA protocol messages and JSON codec."""

import pytest

from repro.core.messages import (
    AddWorker,
    ConfigUpdate,
    ConnectionAck,
    ExecStatus,
    FileData,
    FileMetadata,
    Message,
    NoMoreData,
    RegisterWorker,
    RemoveWorker,
    RequestData,
    SetPartitionInfo,
    StartMaster,
    WorkerFailed,
    decode_message,
    encode_message,
)
from repro.errors import ProtocolError

ALL_MESSAGES = [
    StartMaster(strategy="real_time", grouping="single", multicore=True),
    SetPartitionInfo(groups=(("a", "b"), ("c",)), sizes=((1, 2), (3,))),
    RegisterWorker(worker_id="w0", node_id="n0", cores=4),
    ConnectionAck(worker_id="w0", accepted=True),
    RequestData(worker_id="w0"),
    FileMetadata(task_id=3, file_names=("a", "b"), sizes=(1, 2), transfer_required=True),
    FileData(task_id=3, file_name="a", payload_len=10),
    ExecStatus(worker_id="w0", task_id=3, ok=False, duration=1.5, error="boom"),
    NoMoreData(worker_id="w0"),
    WorkerFailed(worker_id="w0", node_id="n0", error="gone", tasks_in_flight=(1, 2)),
    AddWorker(node_id="n9", cores=2),
    RemoveWorker(worker_id="w0", drain=False),
    ConfigUpdate(key="strategy", value="real_time"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", ALL_MESSAGES, ids=lambda m: m.msg_type)
    def test_encode_decode_round_trip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_wire_format_is_json_line(self):
        data = encode_message(RequestData(worker_id="w1"))
        assert b"\n" not in data
        assert b'"type":"REQUEST_DATA"' in data

    def test_decode_from_dict(self):
        msg = decode_message({"type": "REQUEST_DATA", "worker_id": "w2"})
        assert msg == RequestData(worker_id="w2")

    def test_message_types_match_figures(self):
        # The wire names the architecture figures use.
        for name in ("START_MASTER", "SET_PARTITION_INFO", "FORK_REMOTE_WORKERS",
                     "REQUEST_DATA", "FILE_METADATA", "FILE_DATA"):
            assert name in {m.msg_type for m in Message.__subclasses__()}


class TestValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b'{"type": "BOGUS"}')

    def test_missing_type_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b'{"worker_id": "w0"}')

    def test_garbage_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json")

    def test_unknown_fields_ignored(self):
        msg = decode_message({"type": "REQUEST_DATA", "worker_id": "w0", "extra": 1})
        assert msg == RequestData(worker_id="w0")

    def test_partition_info_length_mismatch(self):
        with pytest.raises(ProtocolError):
            SetPartitionInfo(groups=(("a",),), sizes=((1,), (2,)))

    def test_lists_become_tuples(self):
        msg = decode_message(
            {"type": "SET_PARTITION_INFO", "groups": [["a"], ["b"]], "sizes": [[1], [2]]}
        )
        assert msg.groups == (("a",), ("b",))

    def test_messages_are_frozen(self):
        msg = RequestData(worker_id="w0")
        with pytest.raises(AttributeError):
            msg.worker_id = "hacked"
