"""Scheduler edge cases: late joiners, overflow queue, mixed retries."""

import pytest

from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind, strategy_for
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme, generate_groups


def build(n_files, strategy, workers, **kw):
    groups = generate_groups(synthetic_dataset("d", n_files, 10), PartitionScheme.SINGLE)
    sched = MasterScheduler(groups, strategy_for(strategy), **kw)
    for w in workers:
        sched.register_worker(w)
    sched.partition_among()
    return sched


class TestLateJoiners:
    def test_late_joiner_in_pull_mode_gets_work(self):
        sched = build(4, StrategyKind.REAL_TIME, ["w0"])
        sched.register_worker("late")
        assignment = sched.next_for("late")
        assert assignment is not None

    def test_late_joiner_in_static_mode_idles_without_requeues(self):
        sched = build(4, StrategyKind.PRE_PARTITIONED_REMOTE, ["w0"])
        sched.register_worker("late")
        assert sched.next_for("late") is None  # nothing reserved for it

    def test_late_joiner_drains_overflow_after_worker_loss(self):
        sched = build(
            4,
            StrategyKind.PRE_PARTITIONED_REMOTE,
            ["w0"],
            retry_policy=RetryPolicy.resilient(),
        )
        sched.next_for("w0")
        sched.register_worker("late")
        # w0 dies; its whole chunk requeues. The only healthy chunk
        # holder is... nobody (late has no chunk), so work lands on the
        # overflow queue and the late joiner picks it up.
        sched.worker_lost("w0")
        drained = []
        while True:
            assignment = sched.next_for("late")
            if assignment is None:
                break
            drained.append(assignment.task_id)
            sched.report_success("late", assignment.task_id)
        assert sorted(drained) == [0, 1, 2, 3]
        assert sched.done


class TestMixedRetrySemantics:
    def test_error_retry_without_loss_retry(self):
        policy = RetryPolicy(max_attempts=2, retry_on_task_error=True)
        sched = build(
            2,
            StrategyKind.REAL_TIME,
            ["w0", "w1"],
            retry_policy=policy,
            fault_tracker=FaultTracker(isolate_after=5),
        )
        a = sched.next_for("w0")
        assert sched.report_error("w0", a.task_id, "transient")
        sched.next_for("w0")  # task 1
        b = sched.next_for("w1")  # the retried task 0
        assert b.task_id == a.task_id
        sched.report_success("w1", b.task_id)
        sched.report_success("w0", 1)
        assert sched.done

    def test_loss_without_retry_keeps_errorless_accounting(self):
        sched = build(3, StrategyKind.REAL_TIME, ["w0", "w1"])
        sched.next_for("w0")
        sched.worker_lost("w0")
        summary = sched.summary()
        assert summary["lost"] == 1
        assert summary["failed"] == 0


class TestChunkingEdge:
    def test_lpt_cost_requires_hint(self):
        from repro.errors import ProtocolError

        groups = generate_groups(synthetic_dataset("d", 4, 10), PartitionScheme.SINGLE)
        sched = MasterScheduler(groups, strategy_for(StrategyKind.PRE_PARTITIONED_REMOTE))
        sched.register_worker("w0")
        with pytest.raises(ProtocolError):
            sched.partition_among(chunking="lpt_cost")

    def test_lpt_chunks_processed_in_index_order(self):
        groups = generate_groups(synthetic_dataset("d", 6, 10), PartitionScheme.SINGLE)
        sched = MasterScheduler(groups, strategy_for(StrategyKind.PRE_PARTITIONED_REMOTE))
        sched.register_worker("w0")
        sched.partition_among(chunking="lpt_cost", cost_hint=lambda g: float(g.index))
        chunk = [g.index for g in sched.planned_chunk("w0")]
        assert chunk == sorted(chunk)

    def test_single_worker_gets_everything_under_lpt(self):
        groups = generate_groups(synthetic_dataset("d", 5, 10), PartitionScheme.SINGLE)
        sched = MasterScheduler(groups, strategy_for(StrategyKind.PRE_PARTITIONED_REMOTE))
        sched.register_worker("w0")
        sched.partition_among(chunking="lpt_size")
        assert len(sched.planned_chunk("w0")) == 5
