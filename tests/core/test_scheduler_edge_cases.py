"""Scheduler edge cases: late joiners, overflow queue, mixed retries."""

import pytest

from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind, strategy_for
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme, generate_groups


def build(n_files, strategy, workers, **kw):
    groups = generate_groups(synthetic_dataset("d", n_files, 10), PartitionScheme.SINGLE)
    sched = MasterScheduler(groups, strategy_for(strategy), **kw)
    for w in workers:
        sched.register_worker(w)
    sched.partition_among()
    return sched


class TestLateJoiners:
    def test_late_joiner_in_pull_mode_gets_work(self):
        sched = build(4, StrategyKind.REAL_TIME, ["w0"])
        sched.register_worker("late")
        assignment = sched.next_for("late")
        assert assignment is not None

    def test_late_joiner_in_static_mode_idles_without_requeues(self):
        sched = build(4, StrategyKind.PRE_PARTITIONED_REMOTE, ["w0"])
        sched.register_worker("late")
        assert sched.next_for("late") is None  # nothing reserved for it

    def test_late_joiner_drains_overflow_after_worker_loss(self):
        sched = build(
            4,
            StrategyKind.PRE_PARTITIONED_REMOTE,
            ["w0"],
            retry_policy=RetryPolicy.resilient(),
        )
        sched.next_for("w0")
        sched.register_worker("late")
        # w0 dies; its whole chunk requeues. The only healthy chunk
        # holder is... nobody (late has no chunk), so work lands on the
        # overflow queue and the late joiner picks it up.
        sched.worker_lost("w0")
        drained = []
        while True:
            assignment = sched.next_for("late")
            if assignment is None:
                break
            drained.append(assignment.task_id)
            sched.report_success("late", assignment.task_id)
        assert sorted(drained) == [0, 1, 2, 3]
        assert sched.done


class TestMixedRetrySemantics:
    def test_error_retry_without_loss_retry(self):
        policy = RetryPolicy(max_attempts=2, retry_on_task_error=True)
        sched = build(
            2,
            StrategyKind.REAL_TIME,
            ["w0", "w1"],
            retry_policy=policy,
            fault_tracker=FaultTracker(isolate_after=5),
        )
        a = sched.next_for("w0")
        assert sched.report_error("w0", a.task_id, "transient")
        sched.next_for("w0")  # task 1
        b = sched.next_for("w1")  # the retried task 0
        assert b.task_id == a.task_id
        sched.report_success("w1", b.task_id)
        sched.report_success("w0", 1)
        assert sched.done

    def test_loss_without_retry_keeps_errorless_accounting(self):
        sched = build(3, StrategyKind.REAL_TIME, ["w0", "w1"])
        sched.next_for("w0")
        sched.worker_lost("w0")
        summary = sched.summary()
        assert summary["lost"] == 1
        assert summary["failed"] == 0


class TestReservedRetryBudget:
    """Reserved-task requeues must consume retry attempts.

    Regression: a task reserved for a dead worker (never started) used
    to requeue with its attempt counter untouched, so repeated worker
    loss could bounce the same chunk between doomed workers forever.
    """

    def test_repeated_worker_loss_exhausts_budget(self):
        sched = build(
            2,
            StrategyKind.PRE_PARTITIONED_REMOTE,
            ["w0"],
            retry_policy=RetryPolicy(max_attempts=3, retry_on_worker_loss=True),
        )
        # Kill a chain of workers, each inheriting the requeued chunk
        # without ever starting it. Every loss burns one attempt.
        sched.register_worker("w1")  # standby chunk holder
        requeued = sched.worker_lost("w0")  # attempt 0 -> 1, lands on w1
        assert len(requeued) == 2
        for kill, (victim, heir) in enumerate(
            [("w1", "w2"), ("w2", "w3"), ("w3", "w4")], start=2
        ):
            sched.register_worker(heir)  # inherits via _requeue rebalance
            requeued = sched.worker_lost(victim)
            if kill < 4:
                assert len(requeued) == 2, f"kill #{kill} should still retry"
            else:
                # attempt == max_attempts: budget exhausted, tasks lost.
                assert requeued == []
        assert len(sched.lost_tasks) == 2
        assert sched.summary()["lost"] == 2
        assert sched.done

    def test_budget_shared_between_reserved_and_started(self):
        sched = build(
            1,
            StrategyKind.PRE_PARTITIONED_REMOTE,
            ["w0"],
            retry_policy=RetryPolicy(max_attempts=2, retry_on_worker_loss=True),
        )
        sched.worker_lost("w0")  # reserved loss: attempt 0 -> 1
        sched.register_worker("w1")
        a = sched.next_for("w1")  # started: attempt -> 2
        assert a.attempt == 2
        sched.worker_lost("w1")  # in-flight at the cap: lost for good
        assert sched.lost_tasks and sched.done


class TestSpeculationFailureInterplay:
    def _speculating_pair(self, *, retry_policy=None, fault_tracker=None):
        sched = build(
            1,
            StrategyKind.REAL_TIME,
            ["w0", "w1"],
            retry_policy=retry_policy or RetryPolicy.paper_faithful(),
            fault_tracker=fault_tracker or FaultTracker(),
        )
        original = sched.next_for("w0")
        backup = sched.speculate_for("w1")
        assert backup is not None and backup.task_id == original.task_id
        return sched, original, backup

    def test_loser_success_report_discarded(self):
        sched, original, _backup = self._speculating_pair()
        sched.report_success("w0", original.task_id)
        sched.report_success("w1", original.task_id)  # loser of the race
        assert len(sched.completed) == 1
        assert sched.completed[original.task_id].worker_id == "w0"
        assert sched.done

    def test_loser_error_after_original_won_is_not_retried(self):
        tracker = FaultTracker(isolate_after=10)
        sched, original, _backup = self._speculating_pair(
            retry_policy=RetryPolicy.resilient(), fault_tracker=tracker
        )
        sched.report_success("w0", original.task_id)
        retried = sched.report_error("w1", original.task_id, "late crash")
        assert retried is False
        assert not sched.failed_tasks  # the task *succeeded*
        # The error still counts against the loser's health record.
        assert tracker.health("w1").errors == 1
        assert sched.done

    def test_worker_lost_while_backup_in_flight_defers_to_backup(self):
        sched, original, _backup = self._speculating_pair(
            retry_policy=RetryPolicy.resilient()
        )
        requeued = sched.worker_lost("w0")
        assert requeued == []  # backup still running; no third copy
        assert sched.summary()["lost"] == 0
        assert not sched.done
        sched.report_success("w1", original.task_id)
        assert sched.done

    def test_error_with_backup_in_flight_defers_to_backup(self):
        sched, original, _backup = self._speculating_pair(
            retry_policy=RetryPolicy.resilient(),
            fault_tracker=FaultTracker(isolate_after=10),
        )
        retried = sched.report_error("w0", original.task_id, "boom")
        assert retried is False  # the backup copy will decide the outcome
        sched.report_success("w1", original.task_id)
        assert len(sched.completed) == 1
        assert sched.done


class TestChunkingEdge:
    def test_lpt_cost_requires_hint(self):
        from repro.errors import ProtocolError

        groups = generate_groups(synthetic_dataset("d", 4, 10), PartitionScheme.SINGLE)
        sched = MasterScheduler(groups, strategy_for(StrategyKind.PRE_PARTITIONED_REMOTE))
        sched.register_worker("w0")
        with pytest.raises(ProtocolError):
            sched.partition_among(chunking="lpt_cost")

    def test_lpt_chunks_processed_in_index_order(self):
        groups = generate_groups(synthetic_dataset("d", 6, 10), PartitionScheme.SINGLE)
        sched = MasterScheduler(groups, strategy_for(StrategyKind.PRE_PARTITIONED_REMOTE))
        sched.register_worker("w0")
        sched.partition_among(chunking="lpt_cost", cost_hint=lambda g: float(g.index))
        chunk = [g.index for g in sched.planned_chunk("w0")]
        assert chunk == sorted(chunk)

    def test_single_worker_gets_everything_under_lpt(self):
        groups = generate_groups(synthetic_dataset("d", 5, 10), PartitionScheme.SINGLE)
        sched = MasterScheduler(groups, strategy_for(StrategyKind.PRE_PARTITIONED_REMOTE))
        sched.register_worker("w0")
        sched.partition_among(chunking="lpt_size")
        assert len(sched.planned_chunk("w0")) == 5


def _pull_scheduler(n_files=4, workers=("w0", "w1")):
    groups = generate_groups(synthetic_dataset("d", n_files, 10), PartitionScheme.SINGLE)
    sched = MasterScheduler(groups, strategy_for(StrategyKind.REAL_TIME))
    for w in workers:
        sched.register_worker(w)
    sched.partition_among()
    return sched


class TestInFlightBookkeeping:
    def test_has_in_flight_tracks_assignment_lifecycle(self):
        sched = _pull_scheduler()
        a = sched.next_for("w0")
        assert sched.has_in_flight("w0", a.task_id)
        assert not sched.has_in_flight("w1", a.task_id)
        sched.report_success("w0", a.task_id)
        assert not sched.has_in_flight("w0", a.task_id)

    def test_assignment_in_flight_resends_same_task(self):
        # A repeated REQUEST_DATA (lost reply) must get the *same*
        # assignment back, not a second task.
        sched = _pull_scheduler()
        a = sched.next_for("w0")
        again = sched.assignment_in_flight("w0")
        assert again is not None and again.task_id == a.task_id
        assert sched.assignment_in_flight("w1") is None

    def test_assignment_in_flight_earliest_of_several(self):
        sched = _pull_scheduler(n_files=4, workers=("w0",))
        first = sched.next_for("w0")
        sched.next_for("w0")
        assert sched.assignment_in_flight("w0").task_id == first.task_id


class TestAbandonOutstanding:
    def test_everything_unresolved_becomes_lost(self):
        sched = _pull_scheduler(n_files=4)
        a = sched.next_for("w0")
        sched.report_success("w0", a.task_id)
        b = sched.next_for("w1")  # in flight, never reported
        lost = sched.abandon_outstanding("master connection lost")
        assert {x.task_id for x in lost} == {1, 2, 3} - {a.task_id} | {b.task_id}
        summary = sched.summary()
        assert summary["completed"] == 1
        assert summary["lost"] == 3
        assert sched.done

    def test_abandon_is_idempotent(self):
        sched = _pull_scheduler(n_files=2)
        sched.abandon_outstanding()
        assert sched.abandon_outstanding() == []
        assert sched.summary()["lost"] == 2

    def test_abandon_covers_static_chunks(self):
        groups = generate_groups(synthetic_dataset("d", 4, 10), PartitionScheme.SINGLE)
        sched = MasterScheduler(
            groups, strategy_for(StrategyKind.PRE_PARTITIONED_REMOTE)
        )
        sched.register_worker("w0")
        sched.partition_among()
        lost = sched.abandon_outstanding()
        assert len(lost) == 4  # reserved-but-unassigned chunk work counts
