"""Unit tests for worker-side logic."""

import pytest

from repro.core.commands import CommandTemplate
from repro.core.worker import WorkerLogic
from repro.errors import ProtocolError


@pytest.fixture
def logic():
    return WorkerLogic(
        "n0:0", "n0", CommandTemplate(template="cmp $inp1 $inp2"), scratch_dir="/scratch"
    )


class TestDataTracking:
    def test_missing_files(self, logic):
        logic.receive_file("a")
        assert logic.missing_files(["a", "b"]) == ("b",)

    def test_resolve_path_uses_scratch(self, logic):
        assert logic.resolve_path("x.dat") == "/scratch/x.dat"

    def test_resolve_path_override_wins(self, logic):
        logic.path_overrides["x.dat"] = "/data/orig/x.dat"
        assert logic.resolve_path("x.dat") == "/data/orig/x.dat"

    def test_resolve_without_scratch(self):
        logic = WorkerLogic("w", "n")
        assert logic.resolve_path("x") == "x"


class TestExecutionLifecycle:
    def test_begin_requires_inputs_present(self, logic):
        with pytest.raises(ProtocolError):
            logic.begin_task(0, ["a", "b"], now=0.0)

    def test_begin_renders_command(self, logic):
        logic.receive_file("a")
        logic.receive_file("b")
        record = logic.begin_task(0, ["a", "b"], now=1.0)
        assert record.command == "cmp /scratch/a /scratch/b"

    def test_concurrent_tasks_rejected(self, logic):
        logic.receive_file("a")
        logic.receive_file("b")
        logic.begin_task(0, ["a", "b"], now=0.0)
        with pytest.raises(ProtocolError):
            logic.begin_task(1, ["a", "b"], now=0.0)

    def test_finish_without_task_rejected(self, logic):
        with pytest.raises(ProtocolError):
            logic.finish_task(1.0)

    def test_finish_records_duration(self, logic):
        logic.receive_file("a")
        logic.receive_file("b")
        logic.begin_task(0, ["a", "b"], now=2.0)
        record = logic.finish_task(5.0)
        assert record.duration == pytest.approx(3.0)
        assert record.ok is True
        assert logic.tasks_completed == 1

    def test_abort_closes_failed(self, logic):
        logic.receive_file("a")
        logic.receive_file("b")
        logic.begin_task(0, ["a", "b"], now=2.0)
        record = logic.abort_task(4.0, "vm died")
        assert record.ok is False
        assert record.error == "vm died"
        assert logic.tasks_completed == 0

    def test_abort_with_no_task_is_noop(self, logic):
        assert logic.abort_task(1.0, "x") is None

    def test_busy_time_sums(self, logic):
        logic.receive_file("a")
        logic.receive_file("b")
        for i in range(2):
            logic.begin_task(i, ["a", "b"], now=float(i * 10))
            logic.finish_task(float(i * 10 + 4))
        assert logic.busy_time == pytest.approx(8.0)

    def test_callable_command_rendering(self):
        logic = WorkerLogic("w", "n", CommandTemplate(function=print))
        logic.receive_file("a")
        record = logic.begin_task(0, ["a"], now=0.0)
        assert "print" in record.command

    def test_no_command_join_paths(self):
        logic = WorkerLogic("w", "n", None)
        logic.receive_file("a")
        record = logic.begin_task(0, ["a"], now=0.0)
        assert record.command == "a"
