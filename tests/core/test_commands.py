"""Unit tests for command templating (§II-D execution syntax)."""

import pytest

from repro.core.commands import CommandTemplate
from repro.errors import ConfigurationError


class TestConstruction:
    def test_needs_exactly_one_form(self):
        with pytest.raises(ConfigurationError):
            CommandTemplate()
        with pytest.raises(ConfigurationError):
            CommandTemplate(template="x", function=print)

    def test_empty_template_rejected(self):
        with pytest.raises(ConfigurationError):
            CommandTemplate(template="   ")


class TestArity:
    def test_paper_example(self):
        # §II-D: "app arg1 arg2 $inp1"
        ct = CommandTemplate(template="app arg1 arg2 $inp1")
        assert ct.arity == 1

    def test_two_inputs(self):
        assert CommandTemplate(template="cmp $inp1 $inp2").arity == 2

    def test_inp_alias_for_inp1(self):
        assert CommandTemplate(template="app $inp").arity == 1

    def test_no_placeholders(self):
        assert CommandTemplate(template="hostname").arity == 0

    def test_gap_in_indices_rejected(self):
        with pytest.raises(ConfigurationError):
            _ = CommandTemplate(template="app $inp1 $inp3").arity

    def test_callable_arity_is_none(self):
        assert CommandTemplate(function=print).arity is None

    def test_braced_placeholders(self):
        assert CommandTemplate(template="app ${inp1}x").arity == 1


class TestBuild:
    def test_substitution(self):
        ct = CommandTemplate(template="blastall -i $inp1 -d $inp2")
        cmd = ct.build(["/data/q.fa", "/data/nr.db"])
        assert cmd == "blastall -i /data/q.fa -d /data/nr.db"

    def test_repeated_placeholder(self):
        ct = CommandTemplate(template="cp $inp1 $inp1.bak")
        assert ct.build(["/x"]) == "cp /x /x.bak"

    def test_output_placeholder(self):
        ct = CommandTemplate(template="app $inp1 > $out")
        assert ct.build(["/a"], output_path="/out.txt") == "app /a > /out.txt"

    def test_wrong_group_size_rejected(self):
        ct = CommandTemplate(template="cmp $inp1 $inp2")
        with pytest.raises(ConfigurationError):
            ct.build(["/only-one"])

    def test_validate_group_size(self):
        ct = CommandTemplate(template="cmp $inp1 $inp2")
        ct.validate_group_size(2)
        with pytest.raises(ConfigurationError):
            ct.validate_group_size(3)

    def test_zero_arity_accepts_any_group(self):
        CommandTemplate(template="hostname").validate_group_size(5)

    def test_callable_accepts_any_group(self):
        CommandTemplate(function=print).validate_group_size(7)

    def test_build_on_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            CommandTemplate(function=print).build(["/x"])


class TestCall:
    def test_call_invokes_function(self):
        seen = []
        ct = CommandTemplate(function=lambda *paths: seen.extend(paths))
        ct.call(["/a", "/b"])
        assert seen == ["/a", "/b"]

    def test_call_on_template_rejected(self):
        with pytest.raises(ConfigurationError):
            CommandTemplate(template="x $inp1").call(["/a"])


class TestDisplayName:
    def test_explicit_name_wins(self):
        assert CommandTemplate(template="app $inp1", name="my-app").display_name == "my-app"

    def test_template_uses_program_word(self):
        assert CommandTemplate(template="blastall -i $inp1").display_name == "blastall"

    def test_callable_uses_function_name(self):
        def analyze(path):
            pass

        assert CommandTemplate(function=analyze).display_name == "analyze"
