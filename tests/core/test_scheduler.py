"""Unit tests for the master scheduler (static vs pull assignment)."""

import pytest

from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind, strategy_for
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme, generate_groups
from repro.errors import ProtocolError


def make_scheduler(n_files=12, strategy=StrategyKind.REAL_TIME, workers=("w0", "w1"), **kw):
    groups = generate_groups(synthetic_dataset("d", n_files, 100), PartitionScheme.SINGLE)
    sched = MasterScheduler(groups, strategy_for(strategy), **kw)
    for w in workers:
        sched.register_worker(w)
    sched.partition_among()
    return sched


class TestRegistration:
    def test_double_registration_rejected(self):
        sched = make_scheduler()
        with pytest.raises(ProtocolError):
            sched.register_worker("w0")

    def test_next_before_partition_rejected(self):
        groups = generate_groups(synthetic_dataset("d", 2, 1), PartitionScheme.SINGLE)
        sched = MasterScheduler(groups, strategy_for(StrategyKind.REAL_TIME))
        sched.register_worker("w0")
        with pytest.raises(ProtocolError):
            sched.next_for("w0")

    def test_static_partition_needs_workers(self):
        groups = generate_groups(synthetic_dataset("d", 2, 1), PartitionScheme.SINGLE)
        sched = MasterScheduler(groups, strategy_for(StrategyKind.PRE_PARTITIONED_REMOTE))
        with pytest.raises(ProtocolError):
            sched.partition_among()


class TestPullAssignment:
    def test_fifo_order(self):
        sched = make_scheduler(n_files=4)
        ids = [sched.next_for("w0").task_id, sched.next_for("w1").task_id]
        assert ids == [0, 1]

    def test_any_worker_can_drain_queue(self):
        sched = make_scheduler(n_files=3, workers=("w0",))
        for expected in range(3):
            assignment = sched.next_for("w0")
            assert assignment.task_id == expected
            sched.report_success("w0", assignment.task_id)
        assert sched.next_for("w0") is None
        assert sched.done

    def test_pull_balances_by_demand(self):
        # The fast worker asks more often -> gets more tasks.
        sched = make_scheduler(n_files=6)
        counts = {"w0": 0, "w1": 0}
        # w0 asks twice per w1 ask.
        pattern = ["w0", "w0", "w1"] * 2
        for wid in pattern:
            a = sched.next_for(wid)
            if a:
                counts[wid] += 1
                sched.report_success(wid, a.task_id)
        assert counts["w0"] == 4
        assert counts["w1"] == 2


class TestStaticAssignment:
    def test_contiguous_chunks(self):
        sched = make_scheduler(n_files=6, strategy=StrategyKind.PRE_PARTITIONED_REMOTE)
        chunk0 = [g.index for g in sched.planned_chunk("w0")]
        chunk1 = [g.index for g in sched.planned_chunk("w1")]
        assert chunk0 == [0, 1, 2]
        assert chunk1 == [3, 4, 5]

    def test_uneven_division(self):
        sched = make_scheduler(n_files=7, strategy=StrategyKind.PRE_PARTITIONED_REMOTE)
        assert len(sched.planned_chunk("w0")) == 4
        assert len(sched.planned_chunk("w1")) == 3

    def test_workers_only_get_their_chunk(self):
        sched = make_scheduler(n_files=4, strategy=StrategyKind.PRE_PARTITIONED_REMOTE)
        seen = []
        while True:
            a = sched.next_for("w0")
            if a is None:
                break
            seen.append(a.task_id)
            sched.report_success("w0", a.task_id)
        assert seen == [0, 1]  # only its own chunk, not w1's

    def test_chunks_cover_everything(self):
        sched = make_scheduler(n_files=9, strategy=StrategyKind.PRE_PARTITIONED_REMOTE)
        union = set()
        for w in ("w0", "w1"):
            union.update(g.index for g in sched.planned_chunk(w))
        assert union == set(range(9))


class TestCompletion:
    def test_done_after_all_success(self):
        sched = make_scheduler(n_files=2, workers=("w0",))
        for _ in range(2):
            a = sched.next_for("w0")
            sched.report_success("w0", a.task_id)
        assert sched.done
        assert sched.summary() == {
            "total": 2, "completed": 2, "failed": 0, "lost": 0, "in_flight": 0,
        }

    def test_not_done_with_in_flight(self):
        sched = make_scheduler(n_files=1, workers=("w0",))
        sched.next_for("w0")
        assert not sched.done

    def test_unknown_status_rejected(self):
        sched = make_scheduler()
        with pytest.raises(ProtocolError):
            sched.report_success("w0", 99)


class TestErrorsAndIsolation:
    def test_error_without_retry_fails_task(self):
        sched = make_scheduler(n_files=2, workers=("w0", "w1"))
        a = sched.next_for("w0")
        retried = sched.report_error("w0", a.task_id, "segfault")
        assert not retried
        assert len(sched.failed_tasks) == 1

    def test_isolated_worker_gets_no_more_data(self):
        sched = make_scheduler(n_files=4)
        a = sched.next_for("w0")
        sched.report_error("w0", a.task_id, "boom")  # isolate_after=1 default
        assert sched.faults.is_isolated("w0")
        assert sched.next_for("w0") is None
        assert sched.next_for("w1") is not None

    def test_isolation_threshold(self):
        tracker = FaultTracker(isolate_after=2)
        sched = make_scheduler(n_files=6, fault_tracker=tracker)
        a = sched.next_for("w0")
        sched.report_error("w0", a.task_id, "flaky once")
        assert sched.next_for("w0") is not None  # still below threshold

    def test_retry_on_task_error(self):
        sched = make_scheduler(
            n_files=1,
            workers=("w0", "w1"),
            retry_policy=RetryPolicy(max_attempts=2, retry_on_task_error=True),
        )
        a = sched.next_for("w0")
        assert sched.report_error("w0", a.task_id, "flaky")
        b = sched.next_for("w1")
        assert b.task_id == a.task_id
        assert b.attempt == 2
        sched.report_success("w1", b.task_id)
        assert sched.done

    def test_retry_attempts_bounded(self):
        sched = make_scheduler(
            n_files=1,
            workers=("w0", "w1"),
            fault_tracker=FaultTracker(isolate_after=10),
            retry_policy=RetryPolicy(max_attempts=2, retry_on_task_error=True),
        )
        a = sched.next_for("w0")
        assert sched.report_error("w0", a.task_id, "1st")
        b = sched.next_for("w1")
        assert not sched.report_error("w1", b.task_id, "2nd")  # attempts exhausted
        assert sched.done


class TestWorkerLoss:
    def test_paper_faithful_loses_tasks(self):
        sched = make_scheduler(n_files=4, strategy=StrategyKind.PRE_PARTITIONED_REMOTE)
        a = sched.next_for("w0")
        requeued = sched.worker_lost("w0", "vm died")
        assert requeued == []
        # In-flight task + remaining chunk both lost.
        assert {t.task_id for t in sched.lost_tasks} == {0, 1}
        # Rest of the run can still finish.
        while True:
            b = sched.next_for("w1")
            if b is None:
                break
            sched.report_success("w1", b.task_id)
        assert sched.done
        assert len(sched.completed) == 2

    def test_retry_requeues_to_survivor(self):
        sched = make_scheduler(
            n_files=4,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            retry_policy=RetryPolicy.resilient(),
        )
        sched.next_for("w0")
        requeued = sched.worker_lost("w0", "vm died")
        assert len(requeued) == 2
        done_ids = []
        while True:
            b = sched.next_for("w1")
            if b is None:
                break
            done_ids.append(b.task_id)
            sched.report_success("w1", b.task_id)
        assert sorted(done_ids) == [0, 1, 2, 3]
        assert sched.done
        assert sched.lost_tasks == []

    def test_real_time_loss_only_in_flight(self):
        sched = make_scheduler(n_files=4, strategy=StrategyKind.REAL_TIME)
        a = sched.next_for("w0")
        sched.worker_lost("w0")
        assert [t.task_id for t in sched.lost_tasks] == [a.task_id]
        # Queue intact for the survivor.
        remaining = []
        while True:
            b = sched.next_for("w1")
            if b is None:
                break
            remaining.append(b.task_id)
            sched.report_success("w1", b.task_id)
        assert remaining == [1, 2, 3]

    def test_all_workers_lost_terminates(self):
        sched = make_scheduler(n_files=4)
        sched.worker_lost("w0")
        sched.worker_lost("w1")
        assert sched.done  # queued work exists but nobody can take it

    def test_lost_worker_is_isolated(self):
        sched = make_scheduler(n_files=4)
        sched.worker_lost("w0")
        assert sched.next_for("w0") is None
