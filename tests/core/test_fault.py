"""Unit tests for fault tracking and retry policies."""

import pytest

from repro.core.fault import FaultTracker, RetryPolicy


class TestRetryPolicy:
    def test_paper_faithful_never_retries(self):
        policy = RetryPolicy.paper_faithful()
        assert not policy.should_retry(1, worker_loss=True)
        assert not policy.should_retry(1, worker_loss=False)

    def test_resilient_retries_both(self):
        policy = RetryPolicy.resilient(max_attempts=3)
        assert policy.should_retry(1, worker_loss=True)
        assert policy.should_retry(2, worker_loss=False)
        assert not policy.should_retry(3, worker_loss=True)

    def test_loss_only_policy(self):
        policy = RetryPolicy(max_attempts=2, retry_on_worker_loss=True)
        assert policy.should_retry(1, worker_loss=True)
        assert not policy.should_retry(1, worker_loss=False)


class TestFaultTracker:
    def test_isolate_after_validation(self):
        with pytest.raises(ValueError):
            FaultTracker(isolate_after=0)

    def test_first_error_isolates_by_default(self):
        tracker = FaultTracker()
        assert tracker.record_error("w0", "boom")
        assert tracker.is_isolated("w0")

    def test_threshold_two_requires_two_errors(self):
        tracker = FaultTracker(isolate_after=2)
        assert not tracker.record_error("w0")
        assert tracker.record_error("w0")

    def test_loss_isolates_immediately(self):
        tracker = FaultTracker(isolate_after=5)
        tracker.record_loss("w0", "vm gone")
        assert tracker.is_isolated("w0")
        assert tracker.is_lost("w0")

    def test_error_does_not_mark_lost(self):
        tracker = FaultTracker()
        tracker.record_error("w0")
        assert not tracker.is_lost("w0")

    def test_unknown_worker_healthy(self):
        tracker = FaultTracker()
        assert not tracker.is_isolated("ghost")
        assert tracker.health("ghost") is None

    def test_error_messages_kept(self):
        tracker = FaultTracker(isolate_after=3)
        tracker.record_error("w0", "first")
        tracker.record_error("w0", "second")
        assert tracker.health("w0").error_messages == ["first", "second"]

    def test_isolated_workers_set(self):
        tracker = FaultTracker()
        tracker.record_error("w0")
        tracker.record_loss("w2")
        assert tracker.isolated_workers == frozenset({"w0", "w2"})

    def test_total_errors(self):
        tracker = FaultTracker(isolate_after=10)
        tracker.record_error("w0")
        tracker.record_error("w1")
        tracker.record_error("w1")
        assert tracker.total_errors == 3
