"""Property-based tests: the message codec round-trips arbitrary field
values (the wire protocol can't lose or mangle data)."""

from hypothesis import given, strategies as st

from repro.core.messages import (
    ExecStatus,
    FileMetadata,
    RegisterWorker,
    SetPartitionInfo,
    WorkerFailed,
    decode_message,
    encode_message,
)

names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    max_size=40,
)


@given(names, names, st.integers(1, 1024))
def test_register_worker_round_trip(worker_id, node_id, cores):
    msg = RegisterWorker(worker_id=worker_id, node_id=node_id, cores=cores)
    assert decode_message(encode_message(msg)) == msg


@given(
    st.lists(
        st.lists(names, min_size=1, max_size=4).map(tuple),
        max_size=10,
    ).map(tuple)
)
def test_partition_info_round_trip(groups):
    sizes = tuple(tuple(len(n) for n in group) for group in groups)
    msg = SetPartitionInfo(groups=groups, sizes=sizes)
    assert decode_message(encode_message(msg)) == msg


@given(
    st.integers(-1, 10**6),
    st.lists(names, max_size=5).map(tuple),
    st.booleans(),
)
def test_file_metadata_round_trip(task_id, file_names, transfer_required):
    msg = FileMetadata(
        task_id=task_id,
        file_names=file_names,
        sizes=tuple(1 for _ in file_names),
        transfer_required=transfer_required,
    )
    assert decode_message(encode_message(msg)) == msg


@given(names, st.integers(-1, 10**9), st.booleans(), st.floats(0, 1e6), names)
def test_exec_status_round_trip(worker_id, task_id, ok, duration, error):
    msg = ExecStatus(
        worker_id=worker_id, task_id=task_id, ok=ok, duration=duration, error=error
    )
    assert decode_message(encode_message(msg)) == msg


@given(names, names, names, st.lists(st.integers(0, 10**6), max_size=8).map(tuple))
def test_worker_failed_round_trip(worker_id, node_id, error, tasks):
    msg = WorkerFailed(
        worker_id=worker_id, node_id=node_id, error=error, tasks_in_flight=tasks
    )
    assert decode_message(encode_message(msg)) == msg


@given(names, st.integers(-1, 100), st.binary(max_size=256))
def test_frame_reader_round_trip_with_payload(file_name, task_id, payload):
    from repro.core.messages import FileData
    from repro.runtime.protocol import FrameReader, write_frame

    class _W:
        def __init__(self):
            self.data = bytearray()

        def write(self, chunk):
            self.data.extend(chunk)

    writer = _W()
    msg = FileData(task_id=task_id, file_name=file_name, payload_len=len(payload))
    write_frame(writer, msg, payload)
    reader = FrameReader()
    reader.feed(bytes(writer.data))
    decoded, decoded_payload = reader.pop()
    assert decoded == msg
    assert decoded_payload == payload
