"""Unit tests for the controller logic (control plane)."""

import pytest

from repro.core.commands import CommandTemplate
from repro.core.controller import ControllerLogic
from repro.core.messages import WorkerFailed
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.errors import ConfigurationError


@pytest.fixture
def controller():
    return ControllerLogic(
        strategy=StrategyKind.REAL_TIME,
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
        command=CommandTemplate(template="cmp $inp1 $inp2"),
    )


class TestPartitionGeneration:
    def test_generates_groups(self, controller):
        ds = synthetic_dataset("d", 8, 100)
        groups = controller.generate_partitions(ds)
        assert len(groups) == 4
        assert controller.events[-1].kind == "PARTITION_GENERATED"

    def test_command_arity_validated(self):
        controller = ControllerLogic(
            grouping=PartitionScheme.SINGLE,
            command=CommandTemplate(template="cmp $inp1 $inp2"),
        )
        with pytest.raises(ConfigurationError):
            controller.generate_partitions(synthetic_dataset("d", 4, 1))

    def test_partition_info_message(self, controller):
        ds = synthetic_dataset("d", 4, 50)
        controller.generate_partitions(ds)
        msg = controller.partition_info_message()
        assert len(msg.groups) == 2
        assert msg.sizes[0] == (50, 50)

    def test_partition_info_before_generation_rejected(self, controller):
        with pytest.raises(ConfigurationError):
            controller.partition_info_message()


class TestStartMaster:
    def test_message_carries_configuration(self, controller):
        msg = controller.start_master_message()
        assert msg.strategy == "real_time"
        assert msg.grouping == "pairwise_adjacent"
        assert msg.multicore is True


class TestWorkerPlanning:
    def test_multicore_clones_per_core(self, controller):
        plans = controller.plan_workers([("n0", 4), ("n1", 2)])
        assert [p.clones for p in plans] == [4, 2]
        assert controller.all_worker_ids == (
            "n0:0", "n0:1", "n0:2", "n0:3", "n1:0", "n1:1",
        )

    def test_single_clone_without_multicore(self):
        controller = ControllerLogic(multicore=False)
        plans = controller.plan_workers([("n0", 4)])
        assert plans[0].clones == 1

    def test_fork_event_logged(self, controller):
        controller.plan_workers([("n0", 4)])
        assert any(e.kind == "FORK_REMOTE_WORKERS" for e in controller.events)


class TestRuntimeReports:
    def test_worker_failure_recorded_and_isolated(self, controller):
        controller.plan_workers([("n0", 2)])
        controller.on_worker_failed(
            WorkerFailed(worker_id="n0:1", node_id="n0", error="gone"), time=5.0
        )
        assert controller.fault_tracker.is_lost("n0:1")
        kinds = [e.kind for e in controller.events]
        assert "WORKER_FAILED" in kinds

    def test_error_isolation_logged(self, controller):
        isolated = controller.on_worker_error("n0:0", "segfault", time=1.0)
        assert isolated  # isolate_after defaults to 1
        assert any(e.kind == "WORKER_ISOLATED" for e in controller.events)

    def test_elastic_add(self, controller):
        controller.plan_workers([("n0", 4)])
        plan = controller.on_worker_added("n9", cores=2, time=30.0)
        assert plan.worker_ids == ("n9:0", "n9:1")
        assert len(controller.worker_plans) == 2

    def test_elastic_remove(self, controller):
        controller.plan_workers([("n0", 4), ("n1", 4)])
        controller.on_worker_removed("n0", time=10.0)
        assert [p.node_id for p in controller.worker_plans] == ["n1"]
