"""Unit tests for strategy descriptors (§III)."""

import pytest

from repro.core.strategies import DataManagementStrategy, StrategyKind, strategy_for
from repro.errors import ConfigurationError


class TestLookup:
    @pytest.mark.parametrize("kind", list(StrategyKind))
    def test_every_kind_resolves(self, kind):
        descriptor = strategy_for(kind)
        assert descriptor.kind is kind

    def test_string_lookup(self):
        assert strategy_for("real_time").kind is StrategyKind.REAL_TIME

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            strategy_for("hadoop")


class TestSemantics:
    def test_real_time_is_lazy_and_isolating(self):
        rt = strategy_for(StrategyKind.REAL_TIME)
        assert rt.lazy
        assert not rt.static_assignment
        assert not rt.staged_before_execution
        assert rt.isolates_failures

    def test_pre_partitioned_remote_has_sequential_phases(self):
        pre = strategy_for(StrategyKind.PRE_PARTITIONED_REMOTE)
        assert pre.staged_before_execution
        assert pre.static_assignment
        assert not pre.lazy

    def test_pre_partitioned_local_needs_no_transfer(self):
        local = strategy_for(StrategyKind.PRE_PARTITIONED_LOCAL)
        assert local.data_local_to_workers
        assert not local.staged_before_execution

    def test_common_data_replicates_everything(self):
        common = strategy_for(StrategyKind.COMMON_DATA)
        assert common.replicate_all
        assert common.staged_before_execution

    def test_lazy_and_staged_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            DataManagementStrategy(
                kind=StrategyKind.REAL_TIME,
                static_assignment=False,
                staged_before_execution=True,
                lazy=True,
                replicate_all=False,
                data_local_to_workers=False,
                isolates_failures=True,
            )

    def test_only_real_time_isolates(self):
        # §V-A: isolation is the real-time mode's automatic behaviour.
        isolating = [k for k in StrategyKind if strategy_for(k).isolates_failures]
        assert isolating == [StrategyKind.REAL_TIME]
