"""Unit tests for storage-tier selection (§III-A)."""

import pytest

from repro.cloud.cluster import ClusterSpec
from repro.cloud.storage import StorageTier
from repro.core.storage_policy import StorageRequirements, StorageDecision, select_storage
from repro.errors import ConfigurationError
from repro.util.units import GB, TB


SPEC = ClusterSpec()  # c1.xlarge: 40 GB local disk
SPEC_WITH_NSTORE = ClusterSpec(network_storage_bytes=10 * TB)


class TestLocalPreference:
    def test_small_data_goes_local(self):
        decision = select_storage(StorageRequirements(per_node_bytes=2 * GB), SPEC)
        assert decision.tier is StorageTier.LOCAL
        assert decision.estimated_read_bps == SPEC.instance_type.disk_read_bps

    def test_headroom_respected(self):
        # 35 GB fits in 40 GB raw but not within 80% headroom.
        decision = select_storage(
            StorageRequirements(per_node_bytes=35 * GB), SPEC_WITH_NSTORE
        )
        assert decision.tier is StorageTier.NETWORK

    def test_custom_headroom(self):
        decision = select_storage(
            StorageRequirements(per_node_bytes=35 * GB, local_headroom=1.0), SPEC
        )
        assert decision.tier is StorageTier.LOCAL

    def test_shared_bytes_count_toward_local_budget(self):
        decision = select_storage(
            StorageRequirements(per_node_bytes=20 * GB, shared_bytes=20 * GB),
            SPEC_WITH_NSTORE,
        )
        assert decision.tier is StorageTier.NETWORK


class TestSharingAndPersistence:
    def test_sharing_forces_network_tier(self):
        decision = select_storage(
            StorageRequirements(per_node_bytes=1 * GB, shared_bytes=5 * GB, needs_sharing=True),
            SPEC_WITH_NSTORE,
        )
        assert decision.tier is StorageTier.NETWORK

    def test_sharing_without_network_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            select_storage(
                StorageRequirements(per_node_bytes=1 * GB, needs_sharing=True), SPEC
            )

    def test_shared_data_exceeding_tier_rejected(self):
        small = ClusterSpec(network_storage_bytes=1 * GB)
        with pytest.raises(ConfigurationError):
            select_storage(
                StorageRequirements(
                    per_node_bytes=0, shared_bytes=5 * GB, needs_sharing=True
                ),
                small,
            )

    def test_persistence_selects_block_store(self):
        decision = select_storage(
            StorageRequirements(per_node_bytes=1 * GB, needs_persistence=True), SPEC
        )
        assert decision.tier is StorageTier.BLOCK


class TestRefusals:
    def test_too_big_for_everything(self):
        with pytest.raises(ConfigurationError):
            select_storage(StorageRequirements(per_node_bytes=100 * TB), SPEC_WITH_NSTORE)

    def test_negative_requirements_rejected(self):
        with pytest.raises(ConfigurationError):
            select_storage(StorageRequirements(per_node_bytes=-1), SPEC)

    def test_bad_headroom_rejected(self):
        with pytest.raises(ConfigurationError):
            select_storage(
                StorageRequirements(per_node_bytes=1, local_headroom=0.0), SPEC
            )

    def test_rationale_is_informative(self):
        decision = select_storage(StorageRequirements(per_node_bytes=2 * GB), SPEC)
        assert "local" in str(decision).lower()
        assert isinstance(decision, StorageDecision)
