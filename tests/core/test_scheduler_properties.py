"""Property-based tests for scheduler invariants.

Under any interleaving of requests/successes/errors/losses:

- a task id is never completed twice,
- completed + failed + lost + in-flight + queued == total,
- with no failures every task completes exactly once (work
  conservation),
- pull mode never hands out more than `total` assignments when
  retries are off.
"""

from hypothesis import given, settings, strategies as st

from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind, strategy_for
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme, generate_groups


def build(n_files, strategy, workers, retry=None, isolate_after=1):
    groups = generate_groups(synthetic_dataset("d", n_files, 10), PartitionScheme.SINGLE)
    sched = MasterScheduler(
        groups,
        strategy_for(strategy),
        retry_policy=retry,
        fault_tracker=FaultTracker(isolate_after=isolate_after),
    )
    for w in workers:
        sched.register_worker(w)
    sched.partition_among()
    return sched


@given(
    st.integers(0, 30),
    st.sampled_from([StrategyKind.REAL_TIME, StrategyKind.PRE_PARTITIONED_REMOTE]),
    st.integers(1, 5),
)
@settings(max_examples=60)
def test_work_conservation_no_failures(n_files, strategy, n_workers):
    workers = [f"w{i}" for i in range(n_workers)]
    sched = build(n_files, strategy, workers)
    completed = []
    progressed = True
    while progressed:
        progressed = False
        for wid in workers:
            assignment = sched.next_for(wid)
            if assignment is not None:
                sched.report_success(wid, assignment.task_id)
                completed.append(assignment.task_id)
                progressed = True
    assert sched.done
    assert sorted(completed) == list(range(n_files))


@given(
    st.integers(1, 25),
    st.sampled_from([StrategyKind.REAL_TIME, StrategyKind.PRE_PARTITIONED_REMOTE]),
    st.integers(2, 4),
    st.data(),
)
@settings(max_examples=80)
def test_accounting_invariant_with_chaos(n_files, strategy, n_workers, data):
    workers = [f"w{i}" for i in range(n_workers)]
    retry = data.draw(
        st.sampled_from([None, RetryPolicy.resilient(), RetryPolicy(2, True, False)])
    )
    sched = build(n_files, strategy, workers, retry=retry, isolate_after=3)
    alive = set(workers)
    seen_completed: set[int] = set()
    for _ in range(n_files * 6):
        if sched.done or not alive:
            break
        wid = data.draw(st.sampled_from(sorted(alive)))
        action = data.draw(st.sampled_from(["ok", "ok", "ok", "err", "lose"]))
        assignment = sched.next_for(wid)
        if assignment is None:
            if action == "lose" and len(alive) > 1:
                sched.worker_lost(wid)
                alive.discard(wid)
            continue
        if action == "lose" and len(alive) > 1:
            sched.worker_lost(wid)
            alive.discard(wid)
        elif action == "err":
            sched.report_error(wid, assignment.task_id, "chaos")
        else:
            assert assignment.task_id not in seen_completed, "double completion"
            sched.report_success(wid, assignment.task_id)
            seen_completed.add(assignment.task_id)
        # Accounting invariant after every step.
        summary = sched.summary()
        assert summary["completed"] + summary["failed"] + summary["lost"] <= n_files
        assert summary["completed"] == len(seen_completed)
    # Terminal states are consistent.
    assert len(sched.completed) == len(seen_completed)
    assert set(sched.completed) == seen_completed


@given(st.integers(1, 20), st.integers(1, 4))
@settings(max_examples=60)
def test_static_chunks_partition_tasks(n_files, n_workers):
    workers = [f"w{i}" for i in range(n_workers)]
    sched = build(n_files, StrategyKind.PRE_PARTITIONED_REMOTE, workers)
    union: list[int] = []
    for wid in workers:
        chunk = [g.index for g in sched.planned_chunk(wid)]
        union.extend(chunk)
        # Contiguity of each chunk.
        assert chunk == sorted(chunk)
        if chunk:
            assert chunk[-1] - chunk[0] == len(chunk) - 1
    assert sorted(union) == list(range(n_files))
    # Balance: sizes differ by at most one.
    sizes = [len(sched.planned_chunk(w)) for w in workers]
    assert max(sizes) - min(sizes) <= 1
