"""Unit tests for the adaptive strategy advisor (extension)."""

from repro.core.advisor import RunRecord, StrategyAdvisor, WorkloadFeatures
from repro.core.strategies import StrategyKind


def record(app, strategy, makespan):
    return RunRecord(app_name=app, strategy=strategy, makespan=makespan)


class TestColdStart:
    def test_default_is_real_time(self):
        assert StrategyAdvisor().recommend("new-app") is StrategyKind.REAL_TIME

    def test_transfer_bound_prefers_real_time(self):
        features = WorkloadFeatures(bytes_per_compute_second=10e6, task_cost_cv=0.0)
        assert StrategyAdvisor().recommend("als", features) is StrategyKind.REAL_TIME

    def test_skewed_compute_prefers_real_time(self):
        features = WorkloadFeatures(bytes_per_compute_second=100.0, task_cost_cv=0.5)
        assert StrategyAdvisor().recommend("blast", features) is StrategyKind.REAL_TIME

    def test_uniform_compute_bound_prefers_pre_partitioned(self):
        features = WorkloadFeatures(bytes_per_compute_second=100.0, task_cost_cv=0.01)
        assert (
            StrategyAdvisor().recommend("uniform", features)
            is StrategyKind.PRE_PARTITIONED_REMOTE
        )


class TestHistory:
    def test_best_observed_strategy_wins(self):
        advisor = StrategyAdvisor()
        advisor.record(record("app", StrategyKind.PRE_PARTITIONED_REMOTE, 100.0))
        advisor.record(record("app", StrategyKind.REAL_TIME, 80.0))
        assert advisor.recommend("app") is StrategyKind.REAL_TIME

    def test_history_beats_features(self):
        advisor = StrategyAdvisor()
        advisor.record(record("app", StrategyKind.PRE_PARTITIONED_LOCAL, 10.0))
        features = WorkloadFeatures(bytes_per_compute_second=10e6)
        assert advisor.recommend("app", features) is StrategyKind.PRE_PARTITIONED_LOCAL

    def test_means_across_repeats(self):
        advisor = StrategyAdvisor()
        advisor.record(record("app", StrategyKind.REAL_TIME, 100.0))
        advisor.record(record("app", StrategyKind.REAL_TIME, 60.0))
        advisor.record(record("app", StrategyKind.PRE_PARTITIONED_REMOTE, 85.0))
        observed = advisor.observed_strategies("app")
        assert observed[StrategyKind.REAL_TIME] == 80.0
        assert advisor.recommend("app") is StrategyKind.REAL_TIME

    def test_histories_per_app_isolated(self):
        advisor = StrategyAdvisor()
        advisor.record(record("a", StrategyKind.REAL_TIME, 10.0))
        advisor.record(record("b", StrategyKind.PRE_PARTITIONED_REMOTE, 10.0))
        assert advisor.recommend("a") is StrategyKind.REAL_TIME
        assert advisor.recommend("b") is StrategyKind.PRE_PARTITIONED_REMOTE

    def test_records_list_kept(self):
        advisor = StrategyAdvisor()
        advisor.record(record("a", StrategyKind.REAL_TIME, 10.0))
        assert len(advisor.records) == 1
