"""Regression tests: scheduler gauges must track actual pending work.

``queue.depth`` and ``run.completion_rate`` are the signals the
multi-tenant service (and SLO probes) read per job; any mutation path
that leaves them stale turns into a cross-job lie the moment two jobs
share the plane.  These tests audit the paths that historically
drifted: worker loss before partition time, error-count isolation
stranding a reserved static chunk, requeues, speculation, and the
empty-workload edge.
"""

import random

import pytest

from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind, strategy_for
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme, generate_groups
from repro.telemetry.metrics import MetricsRegistry


def build(n_files, strategy, *, metrics, retry=None, faults=None):
    groups = generate_groups(synthetic_dataset("d", n_files, 100), PartitionScheme.SINGLE)
    return MasterScheduler(
        groups,
        strategy_for(strategy),
        retry_policy=retry or RetryPolicy.resilient(3),
        fault_tracker=faults or FaultTracker(),
        metrics=metrics,
    )


def actual_pending(sched):
    """Ground truth the gauge must equal: queued + still-reserved tasks."""
    return len(sched._queue) + sum(len(c) for c in sched._static_chunks.values())


def assert_gauge_consistent(sched, metrics):
    assert metrics.gauge("queue.depth").value == actual_pending(sched)
    assert sched.pending_count == actual_pending(sched)


class TestDepthGaugeDrift:
    def test_worker_lost_before_partition_does_not_strand_chunk(self):
        """A worker that dies inside the registration window must not be
        handed a static chunk nobody can ever serve."""
        metrics = MetricsRegistry()
        sched = build(4, StrategyKind.PRE_PARTITIONED_REMOTE, metrics=metrics)
        sched.register_worker("w0")
        sched.register_worker("w1")
        sched.worker_lost("w1")
        sched.partition_among()
        assert_gauge_consistent(sched, metrics)
        while (a := sched.next_for("w0")) is not None:
            sched.report_success("w0", a.task_id)
            assert_gauge_consistent(sched, metrics)
        assert sched.done
        assert sched.summary()["completed"] == 4
        assert metrics.gauge("queue.depth").value == 0

    def test_all_candidates_dead_leaves_work_on_queue(self):
        metrics = MetricsRegistry()
        sched = build(3, StrategyKind.PRE_PARTITIONED_REMOTE, metrics=metrics)
        sched.register_worker("w0")
        sched.worker_lost("w0")
        sched.partition_among()
        assert_gauge_consistent(sched, metrics)
        assert metrics.gauge("queue.depth").value == 3
        # A late elastic joiner can still drain the whole workload.
        sched.register_worker("w1")
        while (a := sched.next_for("w1")) is not None:
            sched.report_success("w1", a.task_id)
        assert sched.summary()["completed"] == 3
        assert metrics.gauge("queue.depth").value == 0

    def test_error_isolation_drains_reserved_chunk(self):
        """Isolation via error count (not loss) must redistribute the
        isolated worker's remaining reservation."""
        metrics = MetricsRegistry()
        sched = build(
            4,
            StrategyKind.PRE_PARTITIONED_REMOTE,
            metrics=metrics,
            faults=FaultTracker(isolate_after=1),
        )
        sched.register_worker("w0")
        sched.register_worker("w1")
        sched.partition_among()
        bad = sched.next_for("w1")
        retried = sched.report_error("w1", bad.task_id, "boom")
        assert retried
        assert sched.faults.is_isolated("w1")
        assert_gauge_consistent(sched, metrics)
        while (a := sched.next_for("w0")) is not None:
            sched.report_success("w0", a.task_id)
        assert sched.done
        assert sched.summary()["completed"] == 4
        assert metrics.gauge("queue.depth").value == 0

    def test_empty_workload_reports_complete(self):
        metrics = MetricsRegistry()
        sched = MasterScheduler([], strategy_for(StrategyKind.REAL_TIME), metrics=metrics)
        assert metrics.gauge("run.completion_rate").value == 1.0
        assert metrics.gauge("queue.depth").value == 0
        sched.register_worker("w0")
        sched.partition_among()
        assert sched.done


class TestChaosGaugeInvariant:
    @pytest.mark.parametrize(
        "strategy",
        [StrategyKind.REAL_TIME, StrategyKind.PRE_PARTITIONED_REMOTE],
    )
    @pytest.mark.parametrize("seed", [7, 21, 1234])
    def test_gauge_equals_pending_under_chaos(self, strategy, seed):
        """Drive a randomized mix of success/error/loss/speculation and
        assert gauge == actual pending after every single event."""
        rng = random.Random(seed)
        metrics = MetricsRegistry()
        sched = build(
            24,
            strategy,
            metrics=metrics,
            retry=RetryPolicy.resilient(3),
            faults=FaultTracker(isolate_after=2),
        )
        workers = [f"w{i}" for i in range(5)]
        for w in workers:
            sched.register_worker(w)
        sched.partition_among()
        assert_gauge_consistent(sched, metrics)

        alive = set(workers)
        for _ in range(600):
            if sched.done:
                break
            healthy = [w for w in alive if not sched.faults.is_isolated(w)]
            if not healthy:
                break
            roll = rng.random()
            if roll < 0.55:
                w = rng.choice(healthy)
                a = sched.next_for(w) or sched.speculate_for(w)
                if a is not None and rng.random() < 0.85:
                    if sched.has_in_flight(w, a.task_id):
                        sched.report_success(w, a.task_id)
            elif roll < 0.8:
                victims = [
                    (w, t) for (w, t) in sched._in_flight if w in healthy
                ]
                if victims:
                    w, t = rng.choice(victims)
                    sched.report_error(w, t, "chaos")
            elif roll < 0.9 and len(healthy) > 1:
                w = rng.choice(healthy)
                sched.worker_lost(w, "chaos kill")
                alive.discard(w)
            else:
                w = rng.choice(healthy)
                sched.speculate_for(w)
            assert_gauge_consistent(sched, metrics)

        # Drain whatever is left with the survivors so the run ends in a
        # terminal state, then check the gauges one last time.
        for _ in range(400):
            if sched.done:
                break
            healthy = [w for w in alive if not sched.faults.is_isolated(w)]
            if not healthy:
                break
            w = healthy[0]
            a = sched.next_for(w)
            if a is None:
                inflight = [(wi, t) for (wi, t) in sched._in_flight]
                if not inflight:
                    break
                wi, t = inflight[0]
                sched.report_success(wi, t)
            else:
                sched.report_success(w, a.task_id)
            assert_gauge_consistent(sched, metrics)

        assert_gauge_consistent(sched, metrics)
        summary = sched.summary()
        resolved = summary["completed"] + summary["failed"] + summary["lost"]
        if sched.done and summary["in_flight"] == 0 and not sched.has_queued_work:
            assert resolved == summary["total"]
            assert metrics.gauge("queue.depth").value == 0
