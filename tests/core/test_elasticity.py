"""Unit tests for elasticity management."""

from repro.core.elasticity import AutoScalePolicy, ElasticityManager


class TestElasticityManager:
    def test_membership_tracking(self):
        mgr = ElasticityManager()
        mgr.node_added(1.0, "n0")
        mgr.node_added(2.0, "n1")
        mgr.node_removed(3.0, "n0")
        assert mgr.active_nodes == {"n1"}
        assert mgr.additions == 2
        assert mgr.removals == 1

    def test_event_log_ordered(self):
        mgr = ElasticityManager()
        mgr.node_added(1.0, "n0", reason="user")
        mgr.node_removed(9.0, "n0", reason="drain")
        assert [e.action for e in mgr.events] == ["add", "remove"]
        assert mgr.events[1].reason == "drain"

    def test_no_policy_always_holds(self):
        mgr = ElasticityManager()
        assert mgr.evaluate(0.0, queued=1000) == "hold"


class TestAutoScalePolicy:
    def test_scale_up_on_deep_queue(self):
        policy = AutoScalePolicy(scale_up_ratio=8.0)
        assert policy.recommend(queued=100, active_nodes=4) == "add"

    def test_hold_in_band(self):
        policy = AutoScalePolicy(scale_up_ratio=8.0, scale_down_ratio=1.0)
        assert policy.recommend(queued=16, active_nodes=4) == "hold"

    def test_scale_down_when_drained(self):
        policy = AutoScalePolicy(scale_down_ratio=1.0, min_nodes=1)
        assert policy.recommend(queued=1, active_nodes=4) == "remove"

    def test_max_nodes_cap(self):
        policy = AutoScalePolicy(max_nodes=4)
        assert policy.recommend(queued=1000, active_nodes=4) == "hold"

    def test_min_nodes_floor(self):
        policy = AutoScalePolicy(min_nodes=2)
        assert policy.recommend(queued=0, active_nodes=2) == "hold"

    def test_zero_nodes_always_adds(self):
        assert AutoScalePolicy().recommend(queued=0, active_nodes=0) == "add"

    def test_manager_records_recommendations(self):
        mgr = ElasticityManager(AutoScalePolicy(scale_up_ratio=2.0))
        mgr.node_added(0.0, "n0")
        action = mgr.evaluate(5.0, queued=50)
        assert action == "add"
        assert mgr.events[-1].action == "recommend_add"
