"""Unit tests for the TCP wire protocol framing."""

import asyncio

import pytest

from repro.core.messages import FileData, RegisterWorker, RequestData
from repro.errors import ProtocolError
from repro.runtime.protocol import FrameReader, read_frame, write_frame


class _FakeWriter:
    """Collects written bytes (duck-types StreamWriter.write)."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk: bytes) -> None:
        self.data.extend(chunk)


class TestFrameReader:
    def test_round_trip_plain_message(self):
        writer = _FakeWriter()
        write_frame(writer, RequestData(worker_id="w0"))
        reader = FrameReader()
        reader.feed(bytes(writer.data))
        message, payload = reader.pop()
        assert message == RequestData(worker_id="w0")
        assert payload == b""

    def test_round_trip_with_payload(self):
        writer = _FakeWriter()
        body = b"\x00\x01binary image bytes\xff"
        write_frame(
            writer,
            FileData(task_id=1, file_name="img.npy", payload_len=len(body)),
            body,
        )
        reader = FrameReader()
        reader.feed(bytes(writer.data))
        message, payload = reader.pop()
        assert message.file_name == "img.npy"
        assert payload == body

    def test_incremental_feeding_byte_at_a_time(self):
        writer = _FakeWriter()
        write_frame(writer, RegisterWorker(worker_id="w1", node_id="n1", cores=2))
        reader = FrameReader()
        for i in range(len(writer.data)):
            assert len(reader) == 0 or i == len(writer.data)
            reader.feed(bytes(writer.data[i : i + 1]))
        message, _ = reader.pop()
        assert message.worker_id == "w1"

    def test_multiple_frames_in_one_feed(self):
        writer = _FakeWriter()
        write_frame(writer, RequestData(worker_id="a"))
        write_frame(writer, RequestData(worker_id="b"))
        reader = FrameReader()
        reader.feed(bytes(writer.data))
        assert reader.pop()[0].worker_id == "a"
        assert reader.pop()[0].worker_id == "b"
        assert reader.pop() is None

    def test_payload_length_mismatch_rejected(self):
        writer = _FakeWriter()
        with pytest.raises(ProtocolError):
            write_frame(
                writer, FileData(task_id=0, file_name="x", payload_len=5), b"123"
            )

    def test_payload_on_non_filedata_rejected(self):
        writer = _FakeWriter()
        with pytest.raises(ProtocolError):
            write_frame(writer, RequestData(worker_id="w"), b"payload")

    def test_oversized_frame_length_rejected(self):
        reader = FrameReader()
        with pytest.raises(ProtocolError):
            reader.feed((2**30).to_bytes(4, "big") + b"x")


class TestAsyncReadFrame:
    def test_async_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            writer = _FakeWriter()
            payload = b"hello-bytes"
            write_frame(
                writer,
                FileData(task_id=2, file_name="f", payload_len=len(payload)),
                payload,
            )
            reader.feed_data(bytes(writer.data))
            reader.feed_eof()
            return await read_frame(reader)

        message, payload = asyncio.run(scenario())
        assert message.task_id == 2
        assert payload == b"hello-bytes"

    def test_eof_mid_frame_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00\x00\x10partial")
            reader.feed_eof()
            return await read_frame(reader)

        with pytest.raises(asyncio.IncompleteReadError):
            asyncio.run(scenario())


class TestPayloadChecksum:
    def test_checksum_is_stable_hex(self):
        from repro.runtime.protocol import payload_checksum

        a = payload_checksum(b"abc")
        assert a == payload_checksum(b"abc")
        assert len(a) == 8
        assert a != payload_checksum(b"abd")

    def test_file_data_message_carries_checksum(self):
        from repro.runtime.protocol import file_data_message, payload_checksum

        msg = file_data_message(3, "f.dat", b"xyz")
        assert msg.payload_len == 3
        assert msg.checksum == payload_checksum(b"xyz")

    def test_corrupted_payload_raises_after_frame_consumed(self):
        # The stream must stay framed: the mismatch surfaces only after
        # the whole frame left the buffer, so the next frame decodes.
        from repro.errors import ChecksumError
        from repro.runtime.protocol import FrameReader, file_data_message

        good = b"payload-bytes"
        writer = _FakeWriter()
        write_frame(writer, file_data_message(1, "a", good), good)
        blob = bytearray(writer.data)
        blob[-4] ^= 0xFF  # flip one payload byte on the "wire"
        writer2 = _FakeWriter()
        write_frame(writer2, RequestData(worker_id="w0"), b"")

        reader = FrameReader()
        with pytest.raises(ChecksumError) as err:
            reader.feed(bytes(blob) + bytes(writer2.data))
        assert err.value.frame.file_name == "a"
        reader.feed(b"")  # resume: buffered bytes still decode
        message, _ = reader.pop()
        assert isinstance(message, RequestData)

    def test_unchecksummed_payload_still_accepted(self):
        # Frames built without file_data_message (checksum="") skip
        # verification — wire compatibility with bare senders.
        payload = b"raw"
        writer = _FakeWriter()
        write_frame(
            writer, FileData(task_id=1, file_name="f", payload_len=3), payload
        )
        reader = FrameReader()
        reader.feed(bytes(writer.data))
        message, got = reader.pop()
        assert got == payload

    def test_async_checksum_mismatch_raises(self):
        from repro.errors import ChecksumError
        from repro.runtime.protocol import file_data_message

        async def scenario():
            reader = asyncio.StreamReader()
            writer = _FakeWriter()
            good = b"0123456789"
            write_frame(writer, file_data_message(7, "g", good), good)
            blob = bytearray(writer.data)
            blob[-1] ^= 0xFF
            reader.feed_data(bytes(blob))
            reader.feed_eof()
            return await read_frame(reader)

        with pytest.raises(ChecksumError):
            asyncio.run(scenario())


class TestTelemetryFrames:
    def _shipped_blob(self):
        from repro.telemetry.shipping import TelemetryShipper, encode_batch
        from repro.telemetry.spans import Telemetry

        tel = Telemetry(clock=lambda: 0.0, record=True, run="w0")
        with tel.span("task", track="worker:w0", task=1):
            pass
        tel.metrics.counter("worker.tasks", ok=True).inc()
        batch = TelemetryShipper(tel).take_batch()
        return batch, encode_batch(batch)

    def test_telemetry_batch_round_trips_with_payload(self):
        from repro.runtime.protocol import telemetry_batch_message
        from repro.telemetry.shipping import decode_batch

        batch, blob = self._shipped_blob()
        writer = _FakeWriter()
        write_frame(writer, telemetry_batch_message("w0", batch["seq"], blob), blob)
        reader = FrameReader()
        reader.feed(bytes(writer.data))
        message, payload = reader.pop()
        assert message.msg_type == "TELEMETRY"
        assert message.worker_id == "w0"
        assert message.seq == batch["seq"]
        assert message.payload_len == len(blob)
        assert decode_batch(payload) == batch

    def test_corrupted_telemetry_payload_raises_checksum_error(self):
        from repro.errors import ChecksumError
        from repro.runtime.protocol import telemetry_batch_message

        _, blob = self._shipped_blob()
        writer = _FakeWriter()
        write_frame(writer, telemetry_batch_message("w0", 1, blob), blob)
        corrupted = bytearray(writer.data)
        corrupted[-3] ^= 0xFF
        # A clean frame behind the bad one must still decode: telemetry
        # loss never desynchronizes the stream.
        writer2 = _FakeWriter()
        write_frame(writer2, RequestData(worker_id="w1"))

        reader = FrameReader()
        with pytest.raises(ChecksumError) as err:
            reader.feed(bytes(corrupted) + bytes(writer2.data))
        assert err.value.frame.msg_type == "TELEMETRY"
        reader.feed(b"")
        message, _ = reader.pop()
        assert isinstance(message, RequestData)

    def test_telemetry_batch_is_a_payload_kind(self):
        from repro.core.messages import TelemetryBatch
        from repro.runtime.protocol import PAYLOAD_KINDS

        assert TelemetryBatch in PAYLOAD_KINDS
