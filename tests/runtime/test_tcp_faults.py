"""Fault-path integration tests for the TCP execution plane.

Covers the hardening work: registration window (no deadlock on a
worker that dies pre-REGISTER), heartbeat-driven death of a hung
worker, elastic rejoin of a crashed worker under a fresh id, scripted
wire faults (corrupt / drop / delay / truncate), staging-push crashes,
total-loss accounting, stale status reports, and master loss.
"""

import os
import threading
import time

import pytest

from repro.core.fault import RetryPolicy
from repro.core.monitoring import HeartbeatConfig
from repro.core.strategies import StrategyKind
from repro.runtime.faults import ANY_TASK, FaultRule, FaultScript
from repro.runtime.tcp import TcpEngine


HB = dict(
    heartbeat_interval=0.05,
    heartbeat_config=HeartbeatConfig(suspect_after=0.2, dead_after=0.45),
)


@pytest.fixture
def input_files(tmp_path):
    paths = []
    for i in range(6):
        path = tmp_path / f"in{i}.dat"
        path.write_bytes(bytes([i]) * (100 + i))
        paths.append(str(path))
    return paths


def slow_program(path, seconds=0.05):
    with open(path, "rb") as fh:
        fh.read()
    time.sleep(seconds)


def event_kinds(outcome):
    return [e.kind for e in outcome.controller_events]


class TestRegistrationWindow:
    def test_worker_dead_before_register_does_not_deadlock(self, input_files):
        # Regression: the old all_registered.wait() barrier hung the
        # whole run until run_timeout when any worker died pre-REGISTER.
        started = time.monotonic()
        outcome = TcpEngine(
            num_workers=3, run_timeout=60, registration_window=0.5
        ).run(
            input_files,
            command=lambda p: None,
            crash_before_register=["tcp:1"],
        )
        assert outcome.tasks_completed == 6
        assert time.monotonic() - started < 30
        assert "REGISTRATION_WINDOW_CLOSED" in event_kinds(outcome)

    def test_window_closes_with_partial_membership_static(self, input_files):
        # Static partitioning must cover the dataset with whoever
        # actually registered, not the configured worker count.
        outcome = TcpEngine(
            num_workers=3, run_timeout=60, registration_window=0.5
        ).run(
            input_files,
            command=lambda p: None,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            crash_before_register=["tcp:2"],
        )
        assert outcome.tasks_completed == 6
        assert outcome.tasks_lost == 0


class TestHeartbeatDeath:
    def test_hung_worker_declared_dead_and_work_recovered(self, input_files):
        outcome = TcpEngine(num_workers=3, run_timeout=60, **HB).run(
            input_files,
            command=slow_program,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            retry_policy=RetryPolicy.resilient(),
            hang_worker_on_task={"tcp:1": 2},
        )
        assert outcome.tasks_completed == 6
        assert outcome.extra["heartbeat_deaths"] == ["tcp:1"]
        kinds = event_kinds(outcome)
        assert "NODE_DECLARED_DEAD" in kinds
        assert "WORKER_FAILED" in kinds

    def test_hang_without_heartbeats_rejected(self, input_files):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TcpEngine(num_workers=2, run_timeout=60).run(
                input_files,
                command=lambda p: None,
                hang_worker_on_task={"tcp:0": 1},
            )

    def test_clean_run_declares_nobody_dead(self, input_files):
        # Gracefully drained workers must be forgotten by the monitor,
        # not declared dead for their post-exit silence.
        outcome = TcpEngine(num_workers=2, run_timeout=60, **HB).run(
            input_files, command=slow_program
        )
        assert outcome.tasks_completed == 6
        assert outcome.extra["heartbeat_deaths"] == []
        assert "NODE_DECLARED_DEAD" not in event_kinds(outcome)

    def test_combined_prereg_crash_and_hang(self, input_files):
        # The acceptance scenario: one worker dies pre-registration,
        # one crashes mid-task, one hangs; survivors finish everything
        # well before the run timeout.
        root = os.path.dirname(input_files[0])
        extra = []
        for i in range(6, 9):
            path = os.path.join(root, f"in{i}.dat")
            with open(path, "wb") as fh:
                fh.write(bytes([i]) * (100 + i))
            extra.append(path)
        paths = input_files + extra
        started = time.monotonic()
        outcome = TcpEngine(
            num_workers=4, run_timeout=90, registration_window=0.5, **HB
        ).run(
            paths,
            command=slow_program,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            retry_policy=RetryPolicy.resilient(),
            crash_before_register=["tcp:0"],
            crash_worker_on_task={"tcp:2": 4},
            hang_worker_on_task={"tcp:3": 6},
        )
        assert outcome.tasks_completed == 9
        assert outcome.tasks_lost == 0
        assert time.monotonic() - started < 60
        assert outcome.extra["heartbeat_deaths"] == ["tcp:3"]
        kinds = event_kinds(outcome)
        assert "REGISTRATION_WINDOW_CLOSED" in kinds
        assert "NODE_DECLARED_DEAD" in kinds


class TestElasticRejoin:
    def test_crashed_worker_rejoins_and_completes_requeued_work(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60, **HB).run(
            input_files,
            command=lambda p: slow_program(p, 0.1),
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"tcp:0": ANY_TASK},
            respawn_after_crash={"tcp:0": 0.05},
        )
        assert outcome.tasks_completed == 6
        assert outcome.extra["late_joins"] == ["tcp:0:r1"]
        assert "WORKER_JOINED_LATE" in event_kinds(outcome)
        rejoined = [r for r in outcome.task_records if r.worker_id == "tcp:0:r1"]
        assert rejoined, "the rejoined worker never completed a task"
        assert any(r.attempt > 1 for r in rejoined), (
            "the rejoined worker should have absorbed requeued work"
        )

    def test_duplicate_worker_id_rejected(self, input_files):
        # A rejoin must come back under a fresh id; the engine's
        # respawn hook does exactly that, and late_joins proves the
        # fresh id (not the dead one) was the accepted registration.
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: slow_program(p, 0.05),
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"tcp:1": ANY_TASK},
            respawn_after_crash={"tcp:1": 0.05},
        )
        assert outcome.tasks_completed == 6
        assert all(j != "tcp:1" for j in outcome.extra["late_joins"])


class TestWireFaults:
    def test_corrupt_payload_retransmitted(self, input_files):
        script = FaultScript([FaultRule(action="corrupt", msg_type="FILE_DATA")])
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files, command=lambda p: None, fault_script=script
        )
        assert outcome.tasks_completed == 6
        assert outcome.extra["retransmits"] >= 1
        assert ("master", "corrupt", "FILE_DATA") in {
            (s, a, m) for (s, a, m, _t) in outcome.extra["injected_faults"]
        }

    def test_corrupted_bytes_never_reach_the_program(self, input_files):
        # The checksum layer must hand the program the original bytes,
        # not the corrupted ones.
        contents = {}
        lock = threading.Lock()

        def program(path):
            with open(path, "rb") as fh:
                with lock:
                    contents[os.path.basename(path)] = fh.read()

        script = FaultScript(
            [FaultRule(action="corrupt", msg_type="FILE_DATA", times=3)]
        )
        TcpEngine(num_workers=2, run_timeout=60).run(
            input_files, command=program, fault_script=script
        )
        for i in range(6):
            assert contents[f"in{i}.dat"] == bytes([i]) * (100 + i)

    def test_dropped_assignment_reissued(self, input_files):
        script = FaultScript([FaultRule(action="drop", msg_type="FILE_METADATA")])
        outcome = TcpEngine(num_workers=2, run_timeout=60, reply_timeout=0.3).run(
            input_files, command=lambda p: None, fault_script=script
        )
        assert outcome.tasks_completed == 6
        assert outcome.extra["reissued_requests"] >= 1

    def test_drop_without_reply_timeout_rejected(self, input_files):
        from repro.errors import ConfigurationError

        script = FaultScript([FaultRule(action="drop", msg_type="FILE_METADATA")])
        with pytest.raises(ConfigurationError):
            TcpEngine(num_workers=2, run_timeout=60).run(
                input_files, command=lambda p: None, fault_script=script
            )

    def test_truncated_frame_is_a_connection_loss(self, input_files):
        # Truncation (the TransferFaultModel failure mode) kills the
        # connection mid-frame; with retries on, survivors absorb it.
        script = FaultScript([FaultRule(action="truncate", msg_type="FILE_DATA")])
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: None,
            retry_policy=RetryPolicy.resilient(),
            fault_script=script,
        )
        assert outcome.tasks_completed == 6
        assert "WORKER_FAILED" in event_kinds(outcome)

    def test_delayed_frame_still_completes(self, input_files):
        script = FaultScript(
            [FaultRule(action="delay", msg_type="FILE_DATA", delay_s=0.2, times=2)]
        )
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files, command=lambda p: None, fault_script=script
        )
        assert outcome.tasks_completed == 6

    def test_delayed_reply_yields_stale_status(self, input_files):
        # Delay the assignment past the worker's reply timeout: the
        # worker re-asks (reissue), then the delayed original arrives
        # and the task runs twice — the second EXEC_STATUS must be
        # discarded as stale, not crash the master. Tasks are slow so
        # work is still outstanding when the duplicate status lands.
        script = FaultScript(
            [FaultRule(action="delay", msg_type="FILE_METADATA", delay_s=0.7)]
        )
        outcome = TcpEngine(num_workers=2, run_timeout=60, reply_timeout=0.3).run(
            input_files, command=lambda p: slow_program(p, 0.25), fault_script=script
        )
        assert outcome.tasks_completed == 6
        assert outcome.extra["reissued_requests"] >= 1
        assert outcome.extra["stale_statuses"] >= 1
        assert "STALE_STATUS" in event_kinds(outcome)


class TestCrashPaths:
    def test_crash_during_staging_push(self, input_files):
        # Task id -1 == the staging phase: the worker dies while the
        # master is pushing its chunk, before any task runs.
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: None,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"tcp:1": -1},
        )
        assert outcome.tasks_completed == 6
        assert "WORKER_FAILED" in event_kinds(outcome)

    def test_all_workers_crash_accounts_everything_lost(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: None,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            crash_worker_on_task={"tcp:0": ANY_TASK, "tcp:1": ANY_TASK},
        )
        assert outcome.tasks_completed == 0
        assert outcome.tasks_lost == 6
        assert (
            outcome.tasks_completed + outcome.tasks_failed + outcome.tasks_lost
            == outcome.tasks_total
        )

    def test_crash_without_retry_is_paper_faithful(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: None,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            crash_worker_on_task={"tcp:1": 4},
        )
        assert outcome.tasks_lost >= 1
        assert outcome.tasks_completed + outcome.tasks_lost == outcome.tasks_total


class TestMasterLoss:
    def test_workers_unwind_cleanly_when_master_dies(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: slow_program(p, 0.05),
            crash_master_after_tasks=3,
        )
        assert outcome.extra["master_crashed"] is True
        # The threshold is checked per connection, so a concurrently
        # serving worker may land one extra completion before the
        # crash closes everything — at least 3, never all 6.
        assert 3 <= outcome.tasks_completed < outcome.tasks_total
        assert outcome.tasks_completed + outcome.tasks_lost == outcome.tasks_total
        kinds = event_kinds(outcome)
        assert "MASTER_LOST" in kinds
        assert "TASKS_ABANDONED" in kinds
