"""TCP runtime edge cases: big payloads, many workers, odd inputs."""

import os
import threading


from repro.core.strategies import StrategyKind
from repro.runtime.tcp import TcpEngine


class TestPayloadEdges:
    def test_megabyte_payload_intact(self, tmp_path):
        path = tmp_path / "big.bin"
        blob = os.urandom(1_500_000)
        path.write_bytes(blob)
        received = {}

        def program(p):
            with open(p, "rb") as fh:
                received["data"] = fh.read()

        outcome = TcpEngine(num_workers=1, run_timeout=60).run(
            [str(path)], command=program
        )
        assert outcome.all_tasks_ok
        assert received["data"] == blob
        assert outcome.bytes_transferred == len(blob)

    def test_empty_file_transfers(self, tmp_path):
        path = tmp_path / "empty.dat"
        path.write_bytes(b"")
        sizes = []
        lock = threading.Lock()

        def program(p):
            with lock:
                sizes.append(os.path.getsize(p))

        outcome = TcpEngine(num_workers=1, run_timeout=60).run(
            [str(path)], command=program
        )
        assert outcome.all_tasks_ok
        assert sizes == [0]

    def test_binary_names_with_spaces(self, tmp_path):
        path = tmp_path / "file with spaces.dat"
        path.write_bytes(b"abc")
        outcome = TcpEngine(num_workers=1, run_timeout=60).run(
            [str(path)], command=lambda p: None
        )
        assert outcome.all_tasks_ok


class TestScaleEdges:
    def test_more_workers_than_tasks(self, tmp_path):
        paths = []
        for i in range(2):
            p = tmp_path / f"f{i}.txt"
            p.write_text("x")
            paths.append(str(p))
        outcome = TcpEngine(num_workers=6, run_timeout=60).run(
            paths, command=lambda p: None
        )
        assert outcome.tasks_completed == 2

    def test_many_small_tasks(self, tmp_path):
        paths = []
        for i in range(30):
            p = tmp_path / f"f{i:02d}.txt"
            p.write_text(str(i))
            paths.append(str(p))
        counter = [0]
        lock = threading.Lock()

        def program(p):
            with lock:
                counter[0] += 1

        outcome = TcpEngine(num_workers=4, run_timeout=120).run(
            paths, command=program
        )
        assert outcome.tasks_completed == 30
        assert counter[0] == 30

    def test_single_worker_drains_common_data(self, tmp_path):
        paths = []
        for i in range(4):
            p = tmp_path / f"f{i}.txt"
            p.write_text("y" * (i + 1))
            paths.append(str(p))
        outcome = TcpEngine(num_workers=1, run_timeout=60).run(
            paths, command=lambda p: None, strategy=StrategyKind.COMMON_DATA
        )
        assert outcome.tasks_completed == 4
        total = sum(os.path.getsize(p) for p in paths)
        assert outcome.bytes_transferred == total  # one worker, one copy
