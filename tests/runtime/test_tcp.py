"""Integration tests for the asyncio TCP master/worker runtime."""

import os
import threading

import pytest

from repro.core.fault import RetryPolicy
from repro.core.strategies import StrategyKind
from repro.data.partition import PartitionScheme
from repro.runtime.tcp import TcpEngine


@pytest.fixture
def input_files(tmp_path):
    paths = []
    for i in range(6):
        path = tmp_path / f"in{i}.dat"
        path.write_bytes(bytes([i]) * (100 + i))
        paths.append(str(path))
    return paths


class TestTcpExecution:
    def test_real_time_run(self, input_files):
        seen = []
        lock = threading.Lock()

        def program(path):
            with lock:
                seen.append(os.path.basename(path))

        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files, command=program, strategy=StrategyKind.REAL_TIME
        )
        assert outcome.tasks_completed == 6
        assert sorted(seen) == sorted(os.path.basename(p) for p in input_files)

    def test_payload_bytes_arrive_intact(self, input_files):
        contents = {}
        lock = threading.Lock()

        def program(path):
            with open(path, "rb") as fh:
                with lock:
                    contents[os.path.basename(path)] = fh.read()

        TcpEngine(num_workers=2, run_timeout=60).run(
            input_files, command=program, strategy=StrategyKind.REAL_TIME
        )
        for i in range(6):
            assert contents[f"in{i}.dat"] == bytes([i]) * (100 + i)

    def test_pre_partitioned_staging_pushes_chunks(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: None,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
        )
        assert outcome.tasks_completed == 6
        total = sum(os.path.getsize(p) for p in input_files)
        assert outcome.bytes_transferred == total  # each file sent once

    def test_common_data_sends_everything_to_everyone(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: None,
            strategy=StrategyKind.COMMON_DATA,
        )
        total = sum(os.path.getsize(p) for p in input_files)
        assert outcome.bytes_transferred == 2 * total

    def test_pairwise_grouping_over_tcp(self, input_files):
        pairs = []
        lock = threading.Lock()

        def program(a, b):
            with lock:
                pairs.append((os.path.basename(a), os.path.basename(b)))

        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=program,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
        )
        assert outcome.tasks_completed == 3
        assert len(pairs) == 3

    def test_task_error_reported(self, input_files):
        def flaky(path):
            if path.endswith("in1.dat"):
                raise ValueError("bad record")

        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files, command=flaky, isolate_after=10
        )
        assert outcome.tasks_failed == 1
        assert outcome.tasks_completed == 5


class TestTcpFailureSemantics:
    def test_worker_crash_loses_task_paper_faithful(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: None,
            strategy=StrategyKind.REAL_TIME,
            crash_worker_on_task={"tcp:0": 2},
        )
        # tcp:0 dies when handed task 2; task 2 is lost (no retries).
        assert outcome.tasks_lost >= 1
        assert outcome.tasks_completed + outcome.tasks_lost == outcome.tasks_total
        kinds = [e.kind for e in outcome.controller_events]
        assert "WORKER_FAILED" in kinds

    def test_worker_crash_with_retry_completes(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: None,
            strategy=StrategyKind.REAL_TIME,
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"tcp:1": 3},
        )
        assert outcome.tasks_lost == 0
        assert outcome.tasks_completed == outcome.tasks_total
