"""Fault-path tests for the threaded execution plane.

The thread watchdog mirrors the TCP master's two detection paths: a
thread that exits abruptly is the broken-connection twin; a thread
that stops beating while alive is declared dead by the heartbeat
sweep. Both feed the same worker_lost → requeue → isolate path.
"""

import time

import pytest

from repro.core.fault import RetryPolicy
from repro.core.monitoring import HeartbeatConfig
from repro.core.strategies import StrategyKind
from repro.errors import ConfigurationError
from repro.runtime.faults import ANY_TASK
from repro.runtime.local import ThreadedEngine


HB = dict(
    heartbeat_interval=0.05,
    heartbeat_config=HeartbeatConfig(suspect_after=0.15, dead_after=0.3),
)


@pytest.fixture
def input_files(tmp_path):
    paths = []
    for i in range(6):
        path = tmp_path / f"in{i}.dat"
        path.write_bytes(bytes([i]) * 64)
        paths.append(str(path))
    return paths


def slow_program(path):
    time.sleep(0.03)


def event_kinds(outcome):
    return [e.kind for e in outcome.controller_events]


class TestThreadCrash:
    def test_crashed_thread_work_retried_on_survivor(self, input_files):
        outcome = ThreadedEngine(num_workers=2).run(
            input_files,
            command=slow_program,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"local:1": 4},
        )
        assert outcome.tasks_completed == 6
        assert outcome.tasks_lost == 0
        kinds = event_kinds(outcome)
        assert "NODE_DECLARED_DEAD" in kinds
        assert "WORKER_FAILED" in kinds

    def test_crash_without_retry_is_paper_faithful(self, input_files):
        outcome = ThreadedEngine(num_workers=2).run(
            input_files,
            command=slow_program,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            crash_worker_on_task={"local:1": 4},
        )
        assert outcome.tasks_lost >= 1
        assert outcome.tasks_completed + outcome.tasks_lost == outcome.tasks_total

    def test_crash_on_first_draw_under_pull(self, input_files):
        outcome = ThreadedEngine(num_workers=2).run(
            input_files,
            command=slow_program,
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"local:0": ANY_TASK},
        )
        assert outcome.tasks_completed == 6
        assert any(r.attempt > 1 for r in outcome.task_records)


class TestThreadHang:
    def test_hung_thread_declared_dead_by_sweep(self, input_files):
        started = time.monotonic()
        outcome = ThreadedEngine(num_workers=3, **HB).run(
            input_files,
            command=slow_program,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            retry_policy=RetryPolicy.resilient(),
            hang_worker_on_task={"local:1": 2},
        )
        assert outcome.tasks_completed == 6
        assert time.monotonic() - started < 30
        assert "NODE_DECLARED_DEAD" in event_kinds(outcome)

    def test_hang_without_heartbeats_rejected(self, input_files):
        with pytest.raises(ConfigurationError):
            ThreadedEngine(num_workers=2).run(
                input_files,
                command=slow_program,
                hang_worker_on_task={"local:0": 1},
            )

    def test_healthy_run_with_heartbeats_declares_nobody(self, input_files):
        outcome = ThreadedEngine(num_workers=2, **HB).run(
            input_files, command=slow_program
        )
        assert outcome.tasks_completed == 6
        assert "NODE_DECLARED_DEAD" not in event_kinds(outcome)
