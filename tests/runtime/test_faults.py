"""Unit tests for the scripted runtime fault model."""

import pytest

from repro.core.messages import FileData, FileMetadata, RequestData
from repro.errors import ConfigurationError
from repro.runtime.faults import ANY_TASK, FaultRule, FaultScript


class TestFaultRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(action="explode")

    def test_bad_side_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(action="drop", side="bystander")

    def test_zero_times_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(action="drop", times=0)

    def test_matching_filters(self):
        rule = FaultRule(action="drop", msg_type="FILE_DATA", task_id=3, file_name="a")
        hit = FileData(task_id=3, file_name="a", payload_len=0)
        assert rule.matches("master", hit)
        assert not rule.matches("worker", hit)  # wrong side
        assert not rule.matches(
            "master", FileData(task_id=4, file_name="a", payload_len=0)
        )
        assert not rule.matches(
            "master", FileData(task_id=3, file_name="b", payload_len=0)
        )
        assert not rule.matches("master", RequestData(worker_id="w"))

    def test_empty_filters_match_anything_from_side(self):
        rule = FaultRule(action="drop")
        assert rule.matches("master", RequestData(worker_id="w"))
        assert rule.matches(
            "master", FileMetadata(task_id=1, file_names=("a",), sizes=(1,))
        )

    def test_rule_exhausts_after_times_firings(self):
        script = FaultScript([FaultRule(action="drop", times=2)])
        msg = RequestData(worker_id="w")
        for _ in range(2):
            rule = script.match("master", msg)
            assert rule is not None
            script.record("master", rule, msg)
        assert script.match("master", msg) is None
        assert rule.exhausted


class TestFaultScript:
    def test_injection_log_records_firings(self):
        script = FaultScript([FaultRule(action="corrupt", msg_type="FILE_DATA")])
        msg = FileData(task_id=7, file_name="x", payload_len=4)
        script.record("master", script.match("master", msg), msg)
        assert script.injected == [("master", "corrupt", "FILE_DATA", 7)]

    def test_seeded_draws_are_deterministic(self):
        a = FaultScript([FaultRule(action="corrupt")], seed=42)
        b = FaultScript([FaultRule(action="corrupt")], seed=42)
        assert [a.corrupt_position(100) for _ in range(5)] == [
            b.corrupt_position(100) for _ in range(5)
        ]
        assert a.truncate_fraction() == b.truncate_fraction()

    def test_truncate_fraction_mirrors_transfer_fault_model(self):
        script = FaultScript([FaultRule(action="truncate")])
        for _ in range(20):
            assert 0.05 <= script.truncate_fraction() <= 0.95

    def test_any_task_sentinel_is_not_a_real_task_id(self):
        assert ANY_TASK < 0
        assert ANY_TASK != -1  # -1 is the staging-push pseudo task
