"""Crash→rejoin id policy parity across engines.

Every engine mints rejoin ids through ``core/identity.py`` so one
physical worker's second life can never collide with a registration
another job already holds — the single-run assumption this breaks is
that "worker id = worker" for the lifetime of the process.
"""

import time

import pytest

from repro.core.identity import RejoinIdMinter, scratch_name, split_rejoin_id
from repro.core.fault import RetryPolicy
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind, strategy_for
from repro.core.monitoring import HeartbeatConfig
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme, generate_groups
from repro.errors import ProtocolError
from repro.runtime.faults import ANY_TASK
from repro.runtime.local import ThreadedEngine


class TestMinter:
    def test_generation_sequence(self):
        minter = RejoinIdMinter()
        assert minter.mint("tcp:0") == "tcp:0:r1"
        assert minter.mint("tcp:0") == "tcp:0:r2"
        assert minter.mint("local:3") == "local:3:r1"

    def test_minting_from_a_prior_generation_advances_the_base(self):
        minter = RejoinIdMinter()
        assert minter.mint("tcp:0:r1") == "tcp:0:r2"
        assert minter.mint("tcp:0") == "tcp:0:r3"

    def test_split(self):
        assert split_rejoin_id("tcp:0") == ("tcp:0", 0)
        assert split_rejoin_id("tcp:0:r2") == ("tcp:0", 2)
        assert split_rejoin_id("w:r") == ("w:r", 0)

    def test_scratch_name_is_filesystem_safe(self):
        assert scratch_name("tcp:0:r1") == "tcp_0_r1"

    def test_minted_ids_register_cleanly_into_a_second_job(self):
        """The cross-job poisoning scenario: worker dies in job A,
        rejoins; the fresh id must be registrable in job B even though
        B already knows the original id."""
        minter = RejoinIdMinter()
        groups = generate_groups(synthetic_dataset("d", 4, 10), PartitionScheme.SINGLE)
        job_a = MasterScheduler(groups, strategy_for(StrategyKind.REAL_TIME))
        job_b = MasterScheduler(groups, strategy_for(StrategyKind.REAL_TIME))
        job_a.register_worker("w:0")
        job_b.register_worker("w:0")
        job_a.worker_lost("w:0", "crash")
        fresh = minter.mint("w:0")
        job_a.register_worker(fresh)
        job_b.register_worker(fresh)  # must not raise
        with pytest.raises(ProtocolError):
            job_b.register_worker("w:0")


class TestThreadedRejoin:
    """The threaded engine's respawn path must mirror the TCP one."""

    @pytest.fixture
    def input_files(self, tmp_path):
        paths = []
        for i in range(6):
            path = tmp_path / f"in{i}.dat"
            path.write_bytes(bytes([i]) * 64)
            paths.append(str(path))
        return paths

    def test_crashed_thread_rejoins_under_fresh_id(self, input_files):
        engine = ThreadedEngine(
            num_workers=2,
            heartbeat_interval=0.05,
            heartbeat_config=HeartbeatConfig(suspect_after=0.15, dead_after=0.3),
        )
        outcome = engine.run(
            input_files,
            command=lambda p: time.sleep(0.05),
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"local:0": ANY_TASK},
            respawn_after_crash={"local:0": 0.05},
        )
        assert outcome.tasks_completed == 6
        assert outcome.tasks_lost == 0
        rejoined = [
            r for r in outcome.task_records if r.worker_id == "local:0:r1"
        ]
        assert rejoined, "the rejoined worker never completed a task"

    def test_without_respawn_no_fresh_id_appears(self, input_files):
        outcome = ThreadedEngine(num_workers=2).run(
            input_files,
            command=lambda p: time.sleep(0.01),
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"local:0": ANY_TASK},
        )
        assert outcome.tasks_completed == 6
        assert all(":r" not in r.worker_id for r in outcome.task_records)
