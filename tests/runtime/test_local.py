"""Integration tests for the threaded engine (real files, real programs)."""

import os
import threading

import pytest

from repro.core.fault import RetryPolicy
from repro.core.strategies import StrategyKind
from repro.data.partition import PartitionScheme
from repro.errors import ConfigurationError
from repro.runtime.local import ThreadedEngine


@pytest.fixture
def input_files(tmp_path):
    paths = []
    for i in range(8):
        path = tmp_path / f"in{i}.txt"
        path.write_text(f"contents-{i}\n" * (i + 1))
        paths.append(str(path))
    return paths


class TestBasicExecution:
    @pytest.mark.parametrize("strategy", list(StrategyKind))
    def test_callable_program_all_strategies(self, input_files, strategy):
        seen = []
        lock = threading.Lock()

        def program(path):
            with lock:
                seen.append(os.path.basename(path))

        engine = ThreadedEngine(num_workers=3)
        outcome = engine.run(input_files, command=program, strategy=strategy)
        assert outcome.tasks_completed == 8
        assert sorted(seen) == sorted(os.path.basename(p) for p in input_files)

    def test_shell_command(self, input_files, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        engine = ThreadedEngine(num_workers=2)
        outcome = engine.run(
            input_files[:4],
            command=f"cp $inp1 {marker_dir}/$$.copy && true",
            strategy=StrategyKind.REAL_TIME,
        )
        assert outcome.tasks_completed == 4

    def test_pairwise_grouping(self, input_files):
        pairs = []
        lock = threading.Lock()

        def program(a, b):
            with lock:
                pairs.append((os.path.basename(a), os.path.basename(b)))

        outcome = ThreadedEngine(num_workers=2).run(
            input_files,
            command=program,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
        )
        assert outcome.tasks_completed == 4
        assert all(a.replace("in", "")[0] != b for a, b in pairs)

    def test_missing_input_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadedEngine().run(["/no/such/file"], command=print)

    def test_worker_count_validation(self):
        with pytest.raises(ConfigurationError):
            ThreadedEngine(num_workers=0)


class TestDataManagement:
    def test_remote_strategies_copy_to_scratch(self, input_files):
        observed_dirs = set()
        lock = threading.Lock()
        source_dir = os.path.dirname(input_files[0])

        def program(path):
            with lock:
                observed_dirs.add(os.path.dirname(path))

        ThreadedEngine(num_workers=2).run(
            input_files, command=program, strategy=StrategyKind.REAL_TIME
        )
        assert all(d != source_dir for d in observed_dirs)

    def test_local_strategy_uses_original_paths(self, input_files):
        observed = set()
        lock = threading.Lock()

        def program(path):
            with lock:
                observed.add(path)

        ThreadedEngine(num_workers=2).run(
            input_files, command=program, strategy=StrategyKind.PRE_PARTITIONED_LOCAL
        )
        assert observed == set(input_files)

    def test_common_data_replicates_to_all_workers(self, input_files):
        dirs_per_file: dict[str, set] = {}
        lock = threading.Lock()

        def program(path):
            with lock:
                dirs_per_file.setdefault(os.path.basename(path), set()).add(
                    os.path.dirname(path)
                )

        ThreadedEngine(num_workers=2).run(
            input_files[:4], command=program, strategy=StrategyKind.COMMON_DATA
        )
        # Each worker has its own scratch; with 2 workers the 4 tasks
        # land in at most 2 distinct scratch dirs overall.
        all_dirs = set().union(*dirs_per_file.values())
        assert 1 <= len(all_dirs) <= 2

    def test_transfer_time_accounted_for_remote(self, input_files):
        outcome = ThreadedEngine(num_workers=2).run(
            input_files,
            command=lambda p: None,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
        )
        assert outcome.transfer_time >= 0.0
        assert outcome.bytes_transferred > 0


class TestFailureHandling:
    def test_task_error_recorded(self, input_files):
        def flaky(path):
            if path.endswith("in3.txt"):
                raise RuntimeError("bad input")

        outcome = ThreadedEngine(num_workers=2).run(
            input_files, command=flaky, strategy=StrategyKind.REAL_TIME,
            isolate_after=10,
        )
        assert outcome.tasks_failed == 1
        assert outcome.tasks_completed == 7
        failed = [r for r in outcome.task_records if not r.ok]
        assert "bad input" in failed[0].error

    def test_isolation_after_first_error(self, input_files):
        # isolate_after=1: the worker that hits the bad task is cut off;
        # survivors finish the rest.
        def flaky(path):
            if path.endswith("in0.txt"):
                raise RuntimeError("boom")

        outcome = ThreadedEngine(num_workers=2).run(
            input_files, command=flaky, strategy=StrategyKind.REAL_TIME,
            isolate_after=1,
        )
        assert outcome.tasks_failed == 1
        assert outcome.tasks_completed >= 6

    def test_retry_policy_reruns_failed_task(self, input_files):
        attempts = {}
        lock = threading.Lock()

        def flaky_once(path):
            name = os.path.basename(path)
            with lock:
                attempts[name] = attempts.get(name, 0) + 1
                if name == "in2.txt" and attempts[name] == 1:
                    raise RuntimeError("transient")

        outcome = ThreadedEngine(num_workers=2).run(
            input_files,
            command=flaky_once,
            strategy=StrategyKind.REAL_TIME,
            retry_policy=RetryPolicy(max_attempts=3, retry_on_task_error=True),
            isolate_after=10,
        )
        assert outcome.tasks_completed == 8
        assert attempts["in2.txt"] == 2

    def test_failing_shell_command_reports_stderr(self, input_files):
        outcome = ThreadedEngine(num_workers=1).run(
            input_files[:2],
            command="ls /definitely/not/here/$inp1",
            strategy=StrategyKind.REAL_TIME,
            isolate_after=10,
        )
        assert outcome.tasks_failed == 2
        assert any(r.error for r in outcome.task_records)


class TestOutcomeBookkeeping:
    def test_worker_busy_per_worker(self, input_files):
        outcome = ThreadedEngine(num_workers=3).run(
            input_files, command=lambda p: None
        )
        assert set(outcome.worker_busy) == {f"local:{i}" for i in range(3)}

    def test_task_records_sorted_by_start(self, input_files):
        outcome = ThreadedEngine(num_workers=2).run(
            input_files, command=lambda p: None
        )
        starts = [r.start for r in outcome.task_records]
        assert starts == sorted(starts)
