"""Integration tests: the distributed telemetry plane over TCP.

Workers run their own recording hubs and ship spans/metrics to the
master in ``TELEMETRY`` frames; the master folds them into per-worker
tracks at drain. These tests drive real TCP runs and assert on the
merged result — including through a mid-run crash/rejoin and through
injected wire corruption of the telemetry frames themselves.
"""

import time

import pytest

from repro.core.fault import RetryPolicy
from repro.runtime.faults import ANY_TASK, FaultRule, FaultScript
from repro.runtime.tcp import TcpEngine
from repro.telemetry import SloProbe, Telemetry, dump_chrome_trace


@pytest.fixture
def input_files(tmp_path):
    paths = []
    for i in range(6):
        path = tmp_path / f"in{i}.dat"
        path.write_bytes(bytes([i]) * (100 + i))
        paths.append(str(path))
    return paths


def worker_tracks(tel):
    """{track: {span keys}} for every worker:* track in the hub."""
    tracks = {}
    for span in tel.spans:
        if span.track.startswith("worker:"):
            tracks.setdefault(span.track, set()).add(span.key)
    return tracks


class TestWorkerShipping:
    def test_worker_spans_land_in_master_trace(self, input_files):
        tel = Telemetry(record=True)
        outcome = TcpEngine(
            num_workers=2, run_timeout=60, heartbeat_interval=0.05,
            telemetry_interval=0.1,
        ).run(input_files, command=lambda p: None, telemetry=tel)
        assert outcome.tasks_completed == 6
        assert outcome.extra["telemetry_batches"] >= 1
        tracks = worker_tracks(tel)
        assert set(tracks) == {"worker:tcp:0", "worker:tcp:1"}
        for keys in tracks.values():
            assert "task" in keys and "exec" in keys
        # Per-task accounting shipped from both workers.
        tasks = [s for s in tel.spans if s.key == "task"]
        assert len(tasks) == 6
        assert tel.metrics.counter("worker.tasks", ok=True).value == 6
        assert tel.metrics.histogram("task.exec_seconds").count == 6

    def test_clock_offsets_recorded_and_applied(self, input_files):
        tel = Telemetry(record=True)
        outcome = TcpEngine(
            num_workers=2, run_timeout=60, heartbeat_interval=0.05,
        ).run(
            input_files,
            command=lambda p: time.sleep(0.02),
            telemetry=tel,
        )
        offsets = outcome.extra["clock_offsets"]
        assert set(offsets) == {"tcp:0", "tcp:1"}
        # Worker clocks start after the master's: offsets are positive
        # and small (same process, same host).
        for offset in offsets.values():
            assert 0 <= offset < 5.0
        offset_events = {
            dict(e.tags)["worker"]: e.value
            for e in tel.events
            if e.key == "clock.offset"
        }
        assert offset_events == pytest.approx(offsets)
        # Merged spans sit on the master clock: no span may start
        # before the run span.
        run_start = min(s.start for s in tel.spans if s.key == "run")
        for span in tel.spans:
            assert span.start >= run_start

    def test_parent_links_survive_merge(self, input_files):
        tel = Telemetry(record=True)
        TcpEngine(num_workers=2, run_timeout=60).run(
            input_files, command=lambda p: None, telemetry=tel
        )
        by_id = {s.span_id: s for s in tel.spans}
        assert len(by_id) == len(tel.spans), "span ids must be unique after merge"
        execs = [s for s in tel.spans if s.key == "exec"]
        assert execs
        for span in execs:
            parent = by_id[span.parent_id]
            assert parent.key == "task"
            assert parent.track == span.track

    def test_disabled_telemetry_ships_nothing(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files, command=lambda p: None
        )
        assert outcome.extra["telemetry_batches"] == 0
        assert outcome.extra["clock_offsets"] == {}


class TestCrashRejoin:
    def test_rejoined_worker_spans_present_after_midrun_crash(self, input_files):
        tel = Telemetry(record=True)
        outcome = TcpEngine(
            num_workers=2, run_timeout=60, heartbeat_interval=0.05,
            telemetry_interval=0.1,
        ).run(
            input_files,
            command=lambda p: time.sleep(0.1),
            retry_policy=RetryPolicy.resilient(),
            telemetry=tel,
            crash_worker_on_task={"tcp:0": ANY_TASK},
            respawn_after_crash={"tcp:0": 0.05},
        )
        assert outcome.tasks_completed == 6
        assert outcome.extra["late_joins"] == ["tcp:0:r1"]
        tracks = worker_tracks(tel)
        # The rejoined worker shipped its own track into the merge.
        assert "worker:tcp:0:r1" in tracks
        assert "exec" in tracks["worker:tcp:0:r1"]
        assert "tcp:0:r1" in outcome.extra["clock_offsets"]
        # And the whole thing still exports.
        assert "worker:tcp:0:r1" in dump_chrome_trace(tel)


class TestSloOverTcp:
    def test_probe_breaches_on_real_run(self, input_files):
        tel = Telemetry(record=True)
        outcome = TcpEngine(
            num_workers=2, run_timeout=60, telemetry_interval=0.05,
        ).run(
            input_files,
            command=lambda p: time.sleep(0.05),
            telemetry=tel,
            slo_probes=[
                SloProbe("lat", "task.latency_seconds.p99", "<", 1e-9),
                SloProbe("done", "run.completion_rate", ">=", 0.0),
            ],
        )
        breached = {b[0] for b in outcome.extra["slo_breaches"]}
        assert breached == {"lat"}
        assert any(e.key == "slo.breach" for e in tel.events)

    def test_probes_without_telemetry_hub_still_evaluate(self, input_files):
        outcome = TcpEngine(num_workers=2, run_timeout=60).run(
            input_files,
            command=lambda p: None,
            slo_probes=[SloProbe("depth", "queue.depth", "<", 0.5)],
        )
        # queue.depth gauge starts at 6 pending: the probe breaches even
        # though nothing records spans.
        assert [b[0] for b in outcome.extra["slo_breaches"]] == ["depth"]


class TestLossyTelemetry:
    def test_corrupt_telemetry_batch_dropped_not_retransmitted(self, input_files):
        tel = Telemetry(record=True)
        script = FaultScript(
            [FaultRule(action="corrupt", msg_type="TELEMETRY", side="worker")]
        )
        outcome = TcpEngine(
            num_workers=2, run_timeout=60, telemetry_interval=0.05,
        ).run(
            input_files,
            command=lambda p: time.sleep(0.02),
            telemetry=tel,
            fault_script=script,
        )
        assert outcome.tasks_completed == 6
        assert outcome.extra["telemetry_batches_dropped"] >= 1
        # Telemetry is lossy-tolerant: the data plane saw no retransmits.
        assert outcome.extra["retransmits"] == 0
        injected = {(s, a, m) for s, a, m, _ in script.injected}
        assert ("worker", "corrupt", "TELEMETRY") in injected
