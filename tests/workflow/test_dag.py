"""Unit tests for the workflow DAG model."""

import pytest

from repro.core.commands import CommandTemplate
from repro.errors import ConfigurationError
from repro.workflow.dag import Stage, WorkflowGraph


def stage(name, inputs_from=(), **kw):
    return Stage(
        name=name,
        command=CommandTemplate(function=lambda *p: None, name=name),
        inputs_from=tuple(inputs_from),
        **kw,
    )


class TestStage:
    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            stage("")
        with pytest.raises(ConfigurationError):
            stage("a/b")

    def test_default_output_name_uses_stem(self):
        s = stage("analyze")
        assert s.output_name(["frame0001.npy"]) == "analyze-frame0001.out"

    def test_custom_output_namer(self):
        s = Stage(
            name="x",
            command=CommandTemplate(function=lambda *p: None),
            output_namer=lambda names: f"{len(names)}.result",
        )
        assert s.output_name(["a", "b"]) == "2.result"

    def test_output_name_requires_inputs(self):
        with pytest.raises(ConfigurationError):
            stage("s").output_name([])


class TestGraph:
    def test_duplicate_stage_rejected(self):
        graph = WorkflowGraph([stage("a")])
        with pytest.raises(ConfigurationError):
            graph.add(stage("a"))

    def test_unknown_dependency_rejected(self):
        graph = WorkflowGraph([stage("b", inputs_from=["ghost"])])
        with pytest.raises(ConfigurationError):
            graph.validate()

    def test_self_dependency_rejected(self):
        graph = WorkflowGraph([stage("a", inputs_from=["a"])])
        with pytest.raises(ConfigurationError):
            graph.validate()

    def test_cycle_detected(self):
        graph = WorkflowGraph(
            [stage("a", inputs_from=["b"]), stage("b", inputs_from=["a"])]
        )
        with pytest.raises(ConfigurationError, match="cycle"):
            graph.topological_order()

    def test_topological_order_respects_edges(self):
        graph = WorkflowGraph(
            [
                stage("c", inputs_from=["a", "b"]),
                stage("a"),
                stage("b", inputs_from=["a"]),
            ]
        )
        order = [s.name for s in graph.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_order_deterministic(self):
        graph = WorkflowGraph([stage("x"), stage("y"), stage("z")])
        orders = {tuple(s.name for s in graph.topological_order()) for _ in range(5)}
        assert len(orders) == 1

    def test_roots_and_downstream(self):
        graph = WorkflowGraph(
            [stage("a"), stage("b", inputs_from=["a"]), stage("c", inputs_from=["a"])]
        )
        assert [s.name for s in graph.roots()] == ["a"]
        assert {s.name for s in graph.downstream_of("a")} == {"b", "c"}

    def test_lookup(self):
        graph = WorkflowGraph([stage("a")])
        assert graph.stage("a").name == "a"
        assert "a" in graph and "zz" not in graph
        with pytest.raises(ConfigurationError):
            graph.stage("zz")

    def test_diamond_is_valid(self):
        graph = WorkflowGraph(
            [
                stage("src"),
                stage("left", inputs_from=["src"]),
                stage("right", inputs_from=["src"]),
                stage("join", inputs_from=["left", "right"]),
            ]
        )
        graph.validate()
        assert len(graph.topological_order()) == 4
