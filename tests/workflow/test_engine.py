"""Integration tests for the workflow engine (real files, real stages)."""


import pytest

from repro.core.commands import CommandTemplate
from repro.data.partition import PartitionScheme
from repro.errors import ConfigurationError
from repro.workflow import Stage, WorkflowEngine, WorkflowGraph


@pytest.fixture
def inputs(tmp_path):
    paths = []
    for i in range(4):
        path = tmp_path / f"doc{i}.txt"
        path.write_text(("word " * (i + 1)).strip() + "\n")
        paths.append(str(path))
    return paths


@pytest.fixture
def engine(tmp_path):
    work = tmp_path / "work"
    work.mkdir()
    return WorkflowEngine(num_workers=2, work_dir=str(work))


def count_words(path):
    with open(path) as fh:
        return len(fh.read().split())


def sum_counts(*paths):
    total = 0
    for path in paths:
        with open(path) as fh:
            total += int(fh.read())
    return total


class TestSingleStage:
    def test_outputs_created_per_task(self, engine, inputs):
        graph = WorkflowGraph(
            [Stage("count", CommandTemplate(function=count_words, name="count"))]
        )
        result = engine.run(graph, inputs)
        assert result.ok
        outputs = result.outputs_of("count")
        assert len(outputs) == 4
        values = sorted(int(open(p).read()) for p in outputs)
        assert values == [1, 2, 3, 4]

    def test_shell_stage_with_out_placeholder(self, engine, inputs):
        graph = WorkflowGraph(
            [Stage("wc", CommandTemplate(template="wc -w < $inp1 > $out"))]
        )
        result = engine.run(graph, inputs)
        assert result.ok
        values = sorted(int(open(p).read()) for p in result.outputs_of("wc"))
        assert values == [1, 2, 3, 4]


class TestPipelines:
    def test_two_stage_pipeline_chains_outputs(self, engine, inputs):
        graph = WorkflowGraph(
            [
                Stage("count", CommandTemplate(function=count_words, name="count")),
                Stage(
                    "total",
                    CommandTemplate(function=sum_counts, name="total"),
                    inputs_from=("count",),
                    grouping=PartitionScheme.ROUND_ROBIN_CHUNKS,
                    grouping_options={"chunks": 1},
                ),
            ]
        )
        result = engine.run(graph, inputs)
        assert result.ok
        total_outputs = result.outputs_of("total")
        assert len(total_outputs) == 1
        assert int(open(total_outputs[0]).read()) == 1 + 2 + 3 + 4

    def test_diamond_join_sees_both_branches(self, engine, inputs):
        graph = WorkflowGraph(
            [
                Stage("count", CommandTemplate(function=count_words, name="count")),
                Stage(
                    "double",
                    CommandTemplate(
                        function=lambda p: int(open(p).read()) * 2, name="double"
                    ),
                    inputs_from=("count",),
                ),
                Stage(
                    "join",
                    CommandTemplate(function=sum_counts, name="join"),
                    inputs_from=("count", "double"),
                    grouping=PartitionScheme.ROUND_ROBIN_CHUNKS,
                    grouping_options={"chunks": 1},
                ),
            ]
        )
        result = engine.run(graph, inputs)
        assert result.ok
        total = int(open(result.outputs_of("join")[0]).read())
        assert total == (1 + 2 + 3 + 4) * 3  # originals + doubles

    def test_total_tasks_accumulates(self, engine, inputs):
        graph = WorkflowGraph(
            [
                Stage("count", CommandTemplate(function=count_words, name="count")),
                Stage(
                    "echo",
                    CommandTemplate(function=lambda p: open(p).read(), name="echo"),
                    inputs_from=("count",),
                ),
            ]
        )
        result = engine.run(graph, inputs)
        assert result.total_tasks == 8


class TestFailurePropagation:
    def test_failed_stage_skips_downstream(self, engine, inputs):
        def explode(path):
            raise RuntimeError("stage failure")

        graph = WorkflowGraph(
            [
                Stage("bad", CommandTemplate(function=explode, name="bad")),
                Stage(
                    "after",
                    CommandTemplate(function=count_words, name="after"),
                    inputs_from=("bad",),
                ),
            ]
        )
        result = engine.run(graph, inputs)
        assert not result.ok
        assert "after" not in result.stage_results  # skipped

    def test_stop_on_failure_false_runs_survivors(self, engine, inputs):
        def explode_on_doc0(path):
            if path.endswith("doc0.txt"):
                raise RuntimeError("bad doc")
            return count_words(path)

        graph = WorkflowGraph(
            [Stage("partial", CommandTemplate(function=explode_on_doc0, name="partial"),
                   )]
        )
        result = engine.run(graph, inputs, stop_on_failure=False)
        assert not result.ok
        assert len(result.outputs_of("partial")) == 3


class TestValidationAtRun:
    def test_missing_initial_inputs(self, engine):
        graph = WorkflowGraph(
            [Stage("s", CommandTemplate(function=count_words, name="s"))]
        )
        with pytest.raises(ConfigurationError):
            engine.run(graph, [])
        with pytest.raises(ConfigurationError):
            engine.run(graph, ["/no/such/file"])

    def test_bad_work_dir_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkflowEngine(work_dir="/no/such/dir")
