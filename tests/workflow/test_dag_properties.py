"""Property-based tests: random DAGs always get valid topological orders."""

from hypothesis import given, settings, strategies as st

from repro.core.commands import CommandTemplate
from repro.workflow.dag import Stage, WorkflowGraph


@st.composite
def random_dags(draw):
    """Random DAG: each stage may depend only on earlier stages (by
    construction acyclic), then stages are shuffled before insertion."""
    n = draw(st.integers(1, 10))
    edges: dict[int, tuple[int, ...]] = {}
    for i in range(n):
        if i == 0:
            edges[i] = ()
        else:
            upstream = draw(
                st.lists(st.integers(0, i - 1), max_size=min(i, 3), unique=True)
            )
            edges[i] = tuple(upstream)
    order = draw(st.permutations(range(n)))
    stages = [
        Stage(
            name=f"s{i}",
            command=CommandTemplate(function=lambda *p: None, name=f"s{i}"),
            inputs_from=tuple(f"s{j}" for j in edges[i]),
        )
        for i in order
    ]
    return WorkflowGraph(stages), edges


@given(random_dags())
@settings(max_examples=80)
def test_topological_order_respects_all_edges(dag_and_edges):
    graph, edges = dag_and_edges
    order = [s.name for s in graph.topological_order()]
    assert len(order) == len(edges)
    position = {name: i for i, name in enumerate(order)}
    for node, upstream in edges.items():
        for dep in upstream:
            assert position[f"s{dep}"] < position[f"s{node}"]


@given(random_dags())
@settings(max_examples=40)
def test_validate_accepts_every_generated_dag(dag_and_edges):
    graph, _ = dag_and_edges
    graph.validate()  # must not raise


@given(random_dags())
@settings(max_examples=40)
def test_roots_have_no_upstream(dag_and_edges):
    graph, edges = dag_and_edges
    for stage in graph.roots():
        assert stage.inputs_from == ()
    root_names = {s.name for s in graph.roots()}
    expected = {f"s{i}" for i, ups in edges.items() if not ups}
    assert root_names == expected
