"""Tests for the robustness extension experiment."""

import pytest

from repro.experiments.robustness import (
    render_robustness,
    run_robustness,
    shapes_hold,
)
from repro.util.tables import render_table


@pytest.fixture(scope="module")
def cells():
    return run_robustness(0.05, mttfs=(500.0, 5_000.0), seed=1)


class TestRobustnessSweep:
    def test_all_cells_present(self, cells):
        assert len(cells) == 4  # 2 MTTFs x 2 policies

    def test_shapes_hold(self, cells):
        assert shapes_hold(cells)

    def test_retry_dominates_isolation(self, cells):
        for mttf in (500.0, 5_000.0):
            paper = next(
                c for c in cells if c.mttf == mttf and c.policy == "paper_isolation"
            )
            retry = next(
                c for c in cells if c.mttf == mttf and c.policy == "retry_extension"
            )
            assert retry.completion_rate >= paper.completion_rate

    def test_high_failure_rate_loses_tasks_without_retry(self, cells):
        worst = next(
            c for c in cells if c.mttf == 500.0 and c.policy == "paper_isolation"
        )
        assert worst.outcome.tasks_lost > 0

    def test_render(self, cells):
        text = render_table(render_robustness(cells, 0.05))
        assert "paper_isolation" in text
        assert "retry_extension" in text

    def test_accounting_balances(self, cells):
        for cell in cells:
            outcome = cell.outcome
            assert (
                outcome.tasks_completed + outcome.tasks_lost + outcome.tasks_failed
                <= outcome.tasks_total
            )


@pytest.fixture(scope="module")
def chaos_cells():
    from repro.experiments.robustness import run_chaos_sweep

    return run_chaos_sweep(0.05, seed=0)


class TestChaosSweep:
    def test_grid_complete(self, chaos_cells):
        assert len(chaos_cells) == 4  # 2 MTTFs x 1 link MTBF x 2 policies

    def test_shapes_hold(self, chaos_cells):
        from repro.experiments.robustness import chaos_shapes_hold

        assert chaos_shapes_hold(chaos_cells)

    def test_resilient_completes_everything(self, chaos_cells):
        for cell in chaos_cells:
            if cell.policy == "resilient":
                assert cell.completion_rate == 1.0

    def test_paper_faithful_documents_losses(self, chaos_cells):
        losses = sum(
            c.outcome.tasks_lost + c.outcome.tasks_failed
            for c in chaos_cells
            if c.policy == "paper_faithful"
        )
        assert losses > 0
        failures = sum(
            c.outcome.extra["transfer_failures"]
            for c in chaos_cells
            if c.policy == "paper_faithful"
        )
        assert failures > 0

    def test_digest_reproducible(self, chaos_cells):
        from repro.experiments.robustness import chaos_digest, run_chaos_sweep

        again = run_chaos_sweep(0.05, seed=0)
        assert chaos_digest(chaos_cells) == chaos_digest(again)

    def test_digest_sensitive_to_seed(self, chaos_cells):
        from repro.experiments.robustness import chaos_digest, run_chaos_sweep

        other = run_chaos_sweep(0.05, seed=1)
        assert chaos_digest(chaos_cells) != chaos_digest(other)

    def test_render(self, chaos_cells):
        from repro.experiments.robustness import render_chaos

        text = render_table(render_chaos(chaos_cells, 0.05))
        assert "paper_faithful" in text
        assert "resilient" in text

    def test_cli_chaos_subcommand(self, capsys):
        from repro.experiments.cli import main

        assert main(["chaos", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "chaos digest: " in out
