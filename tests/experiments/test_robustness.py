"""Tests for the robustness extension experiment."""

import pytest

from repro.experiments.robustness import (
    render_robustness,
    run_robustness,
    shapes_hold,
)
from repro.util.tables import render_table


@pytest.fixture(scope="module")
def cells():
    return run_robustness(0.05, mttfs=(500.0, 5_000.0), seed=1)


class TestRobustnessSweep:
    def test_all_cells_present(self, cells):
        assert len(cells) == 4  # 2 MTTFs x 2 policies

    def test_shapes_hold(self, cells):
        assert shapes_hold(cells)

    def test_retry_dominates_isolation(self, cells):
        for mttf in (500.0, 5_000.0):
            paper = next(
                c for c in cells if c.mttf == mttf and c.policy == "paper_isolation"
            )
            retry = next(
                c for c in cells if c.mttf == mttf and c.policy == "retry_extension"
            )
            assert retry.completion_rate >= paper.completion_rate

    def test_high_failure_rate_loses_tasks_without_retry(self, cells):
        worst = next(
            c for c in cells if c.mttf == 500.0 and c.policy == "paper_isolation"
        )
        assert worst.outcome.tasks_lost > 0

    def test_render(self, cells):
        text = render_table(render_robustness(cells, 0.05))
        assert "paper_isolation" in text
        assert "retry_extension" in text

    def test_accounting_balances(self, cells):
        for cell in cells:
            outcome = cell.outcome
            assert (
                outcome.tasks_completed + outcome.tasks_lost + outcome.tasks_failed
                <= outcome.tasks_total
            )
