"""Tests for run reports, timelines, and ASCII figure plots."""

import json

import pytest

from repro.cloud.cluster import ClusterSpec
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine
from repro.experiments.plots import Bar, fig6_plot, fig7_plot, stacked_bars
from repro.experiments.report import outcome_to_dict, outcome_to_json, save_report, timeline


@pytest.fixture(scope="module")
def outcome():
    return SimulatedEngine(ClusterSpec(num_workers=2)).run(
        synthetic_dataset("r", 8, "1 MB"),
        compute_model=FixedComputeModel(1.0),
        strategy=StrategyKind.REAL_TIME,
        grouping=PartitionScheme.SINGLE,
    )


class TestReport:
    def test_dict_round_trips_through_json(self, outcome):
        payload = json.loads(outcome_to_json(outcome))
        assert payload == outcome_to_dict(outcome)

    def test_core_fields_present(self, outcome):
        payload = outcome_to_dict(outcome)
        assert payload["strategy"] == "real_time"
        assert payload["tasks"]["completed"] == 8
        assert len(payload["task_records"]) == 8
        assert payload["cost_total"] > 0

    def test_save_report(self, outcome, tmp_path):
        path = str(tmp_path / "report.json")
        save_report(outcome, path)
        with open(path) as fh:
            assert json.load(fh)["tasks"]["total"] == 8


class TestTimeline:
    def test_timeline_has_row_per_worker(self, outcome):
        text = timeline(outcome)
        lines = text.splitlines()
        assert len(lines) == 1 + len(outcome.worker_busy)

    def test_timeline_marks_tasks(self, outcome):
        text = timeline(outcome)
        assert any(ch.isdigit() for ch in text)

    def test_relative_origin(self, outcome):
        assert "timeline: 0.0s" in timeline(outcome)

    def test_width_validation(self, outcome):
        with pytest.raises(ValueError):
            timeline(outcome, width=5)

    def test_failed_tasks_marked_x(self):
        from repro.cloud.failures import FailureSchedule

        failed = SimulatedEngine(ClusterSpec(num_workers=2)).run(
            synthetic_dataset("f", 16, "1 KB"),
            compute_model=FixedComputeModel(3.0),
            strategy=StrategyKind.REAL_TIME,
            failure_schedule=FailureSchedule.of((2.0, "worker1")),
        )
        assert "x" in timeline(failed)


class TestPlots:
    def test_stacked_bars_scale_to_longest(self):
        text = stacked_bars("demo", [Bar("long", 10, 10), Bar("short", 0, 1)])
        long_line = next(l for l in text.splitlines() if l.strip().startswith("long"))
        short_line = next(l for l in text.splitlines() if l.strip().startswith("short"))
        assert long_line.count("█") + long_line.count("▒") > short_line.count("█")

    def test_nonzero_segment_always_visible(self):
        text = stacked_bars("demo", [Bar("a", 1000, 0.001), Bar("b", 0, 1000)])
        a_line = next(l for l in text.splitlines() if l.strip().startswith("a"))
        assert "█" in a_line  # the tiny execution segment still shows

    def test_empty_bars(self):
        assert "(no data)" in stacked_bars("empty", [])

    def test_width_validation(self):
        with pytest.raises(ValueError):
            stacked_bars("w", [Bar("a", 1, 1)], width=5)

    def test_fig6_and_fig7_plots_render(self):
        from repro.experiments.fig6 import run_fig6
        from repro.experiments.fig7 import run_fig7

        fig6_text = fig6_plot(run_fig6(0.02), 0.02)
        fig7_text = fig7_plot(run_fig7(0.02), 0.02)
        assert "Figure 6a" in fig6_text and "Figure 6b" in fig6_text
        assert "Figure 7a" in fig7_text and "Figure 7b" in fig7_text
        assert "legend" in fig6_text
