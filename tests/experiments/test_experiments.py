"""Shape tests for the experiment reproductions (reduced scale).

These run the same code paths as the full-scale harness at scale=0.05,
asserting the paper's qualitative claims — the same checks EXPERIMENTS.md
records at scale=1.0.
"""

import pytest

from repro.experiments.fig6 import FIG6_STRATEGIES, render_fig6, run_fig6
from repro.experiments.fig7 import render_fig7, run_fig7
from repro.experiments.paper_values import PAPER_TABLE1
from repro.experiments.table1 import render_table1, run_table1
from repro.util.tables import render_table

SCALE = 0.05


@pytest.fixture(scope="module")
def table1():
    return run_table1(SCALE)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(SCALE)


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(SCALE)


class TestTable1:
    def test_shapes_hold(self, table1):
        for result in table1.values():
            assert result.shape_holds()

    def test_als_speedup_band(self, table1):
        # Paper: ~1.6-1.8x. Allow a generous band; the point is "around
        # 2x, nowhere near 16x" (transfer-bound).
        result = table1["als"]
        assert 1.2 <= result.speedup_rt <= 2.5

    def test_blast_speedup_band(self, table1):
        # Paper: ~15-16x on 16 cores (compute-bound).
        result = table1["blast"]
        assert 10.0 <= result.speedup_rt <= 16.5

    def test_real_time_beats_pre_partitioned(self, table1):
        for result in table1.values():
            assert result.real_time.makespan < result.pre_partitioned.makespan

    def test_all_tasks_complete(self, table1):
        for result in table1.values():
            for outcome in (result.sequential, result.pre_partitioned, result.real_time):
                assert outcome.all_tasks_ok

    def test_render_includes_paper_numbers(self, table1):
        text = render_table(render_table1(table1, SCALE))
        assert "1258.80" in text and "61200" in text


class TestFig6:
    def test_orderings_match_paper(self, fig6):
        for result in fig6.values():
            assert result.shape_holds(), result.order_by_makespan()

    def test_als_transfer_dominates_remote(self, fig6):
        remote = fig6["als"].outcomes[FIG6_STRATEGIES[1]]
        assert remote.transfer_time > remote.execution_time

    def test_blast_compute_dominates_everywhere(self, fig6):
        for outcome in fig6["blast"].outcomes.values():
            assert outcome.execution_time > outcome.transfer_time

    def test_local_strategy_has_zero_transfer(self, fig6):
        for result in fig6.values():
            local = result.outcomes[FIG6_STRATEGIES[0]]
            assert local.transfer_time == 0.0

    def test_real_time_overlap_shrinks_makespan(self, fig6):
        # real-time's overlap beats the sequential-phase pre-remote run;
        # pre-remote makespan ≈ transfer + execution (sequential phases).
        rt = fig6["als"].outcomes[FIG6_STRATEGIES[2]]
        pre = fig6["als"].outcomes[FIG6_STRATEGIES[1]]
        assert rt.makespan < pre.makespan
        assert pre.makespan == pytest.approx(
            pre.transfer_time + pre.execution_time, rel=0.15
        )

    def test_render_runs(self, fig6):
        tables = render_fig6(fig6, SCALE)
        assert len(tables) == 2
        assert "SHAPE VIOLATION" not in "\n".join(render_table(t) for t in tables)


class TestFig7:
    def test_als_compute_to_data_wins_big(self, fig7):
        assert fig7["als"].ratio > 1.5

    def test_blast_insensitive(self, fig7):
        assert fig7["blast"].ratio < 1.15

    def test_shapes_hold(self, fig7):
        for result in fig7.values():
            assert result.shape_holds()

    def test_render_runs(self, fig7):
        tables = render_fig7(fig7, SCALE)
        text = "\n".join(render_table(t) for t in tables)
        assert "SHAPE VIOLATION" not in text


class TestPaperValues:
    def test_table1_constants(self):
        assert PAPER_TABLE1["als"].sequential == 1258.80
        assert PAPER_TABLE1["blast"].real_time == 3794.90

    def test_paper_speedups(self):
        assert PAPER_TABLE1["als"].speedup_rt == pytest.approx(1.81, abs=0.01)
        assert PAPER_TABLE1["blast"].speedup_rt == pytest.approx(16.13, abs=0.01)


class TestCli:
    def test_cli_table1_quick(self, capsys):
        from repro.experiments.cli import main

        code = main(["table1", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table I" in out

    def test_cli_csv_mode(self, capsys):
        from repro.experiments.cli import main

        main(["fig7", "--scale", "0.05", "--csv"])
        out = capsys.readouterr().out
        assert "data_to_compute" in out
