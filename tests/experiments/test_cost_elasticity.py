"""Tests for the cost and elasticity extension experiments."""

import pytest

from repro.experiments import cost as cost_mod
from repro.experiments import elasticity_exp
from repro.util.tables import render_table


@pytest.fixture(scope="module")
def cost_cells():
    return cost_mod.run_cost(0.05)


@pytest.fixture(scope="module")
def elasticity_cells():
    return elasticity_exp.run_elasticity(0.05, additions=(0, 2))


class TestCostExperiment:
    def test_all_cells(self, cost_cells):
        assert len(cost_cells) == 6  # 2 apps x 3 strategies

    def test_shapes_hold(self, cost_cells):
        assert cost_mod.shapes_hold(cost_cells)

    def test_cost_tracks_time_within_app(self, cost_cells):
        blast = sorted(
            (c for c in cost_cells if c.app == "blast"),
            key=lambda c: c.outcome.makespan,
        )
        costs = [c.dollars for c in blast]
        assert costs == sorted(costs)

    def test_parallel_cheaper_per_speedup_than_raw_dollars_suggest(self, cost_cells):
        for cell in cost_cells:
            assert cell.speedup > 1.0
            assert cell.dollars_per_speedup < cell.dollars

    def test_render(self, cost_cells):
        text = render_table(cost_mod.render_cost(cost_cells, 0.05))
        assert "$ / speedup" in text


class TestElasticityExperiment:
    def test_shapes_hold(self, elasticity_cells):
        assert elasticity_exp.shapes_hold(elasticity_cells)

    def test_additions_reduce_makespan(self, elasticity_cells):
        static = next(c for c in elasticity_cells if c.added_nodes == 0)
        scaled = next(c for c in elasticity_cells if c.added_nodes == 2)
        assert scaled.makespan < static.makespan

    def test_everything_completes(self, elasticity_cells):
        assert all(c.outcome.all_tasks_ok for c in elasticity_cells)

    def test_elastic_nodes_cost_money(self, elasticity_cells):
        static = next(c for c in elasticity_cells if c.added_nodes == 0)
        scaled = next(c for c in elasticity_cells if c.added_nodes == 2)
        # Extra nodes bill extra VM-hours even though the run is shorter
        # (per-started-hour default billing).
        assert scaled.outcome.cost.total >= static.outcome.cost.total

    def test_render(self, elasticity_cells):
        text = render_table(elasticity_exp.render_elasticity(elasticity_cells, 0.05))
        assert "Added nodes" in text


class TestCliIntegration:
    def test_cost_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["cost", "--scale", "0.05"]) == 0
        assert "trade-off" in capsys.readouterr().out

    def test_elasticity_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["elasticity", "--scale", "0.05"]) == 0
        assert "scale-out" in capsys.readouterr().out

    def test_robustness_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["robustness", "--scale", "0.05"]) == 0
        assert "Robustness" in capsys.readouterr().out
