"""Tests for the one-shot report generator."""

import pytest

from repro.experiments.full_report import generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report(0.05)


class TestReport:
    def test_all_shapes_ok(self, report):
        _markdown, ok = report
        assert ok

    def test_every_section_present(self, report):
        markdown, _ok = report
        for heading in (
            "Table I",
            "Figure 6",
            "Figure 7",
            "Robustness",
            "Cost/performance",
            "Elastic scale-out",
            "Storage tiers",
            "transparent locality",
        ):
            assert heading in markdown

    def test_paper_values_cited(self, report):
        markdown, _ok = report
        assert "1258.80" in markdown  # Table I paper column
        assert "61200" in markdown

    def test_ascii_figures_included(self, report):
        markdown, _ok = report
        assert "▒" in markdown and "█" in markdown  # stacked bars

    def test_cli_writes_file(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = str(tmp_path / "R.md")
        code = main(["report", "--scale", "0.05", "--output", out])
        assert code == 0
        content = open(out).read()
        assert content.startswith("# FRIEDA reproduction report")
