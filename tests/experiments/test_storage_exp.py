"""Tests for the storage-tier comparison experiment."""

import pytest

from repro.experiments import storage_exp
from repro.util.tables import render_table


@pytest.fixture(scope="module")
def cells():
    return storage_exp.run_storage(0.05)


class TestStorageExperiment:
    def test_all_sources_present(self, cells):
        sources = [c.source for c in cells]
        assert "local-disk" in sources
        assert "master-disk" in sources
        assert any(s.startswith("network-storage@") for s in sources)

    def test_shapes_hold(self, cells):
        assert storage_exp.shapes_hold(cells)

    def test_local_is_fastest(self, cells):
        local = next(c for c in cells if c.source == "local-disk")
        assert all(
            local.outcome.makespan <= c.outcome.makespan for c in cells
        )

    def test_fast_shared_tier_beats_master_uplink(self, cells):
        master = next(c for c in cells if c.source == "master-disk")
        fast = next(c for c in cells if c.source.startswith("network-storage@400"))
        assert fast.outcome.makespan < master.outcome.makespan

    def test_slow_shared_tier_loses_to_master(self, cells):
        master = next(c for c in cells if c.source == "master-disk")
        slow = next(c for c in cells if c.source.startswith("network-storage@50"))
        assert slow.outcome.makespan > master.outcome.makespan

    def test_render(self, cells):
        text = render_table(storage_exp.render_storage(cells, 0.05))
        assert "Data source" in text

    def test_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["storage", "--scale", "0.05"]) == 0
        assert "Storage tier" in capsys.readouterr().out
