"""End-to-end integration: the facade, real apps under real engines,
and the Fig 4 protocol sequence."""

import os
import threading


from repro import Frieda, PartitionScheme, StrategyKind
from repro.apps.blast import (
    BlastDatabase,
    blast_search,
    read_fasta,
    synthetic_database,
    synthetic_queries,
    write_fasta,
)
from repro.apps.imaging import BeamlineImageConfig, compare_image_files, write_image_dataset
from repro.cloud.cluster import ClusterSpec
from repro.data.files import synthetic_dataset
from repro.engines.compute import FixedComputeModel


class TestFacade:
    def test_simulated_facade(self):
        frieda = Frieda.simulated(ClusterSpec(num_workers=2))
        outcome = frieda.run(
            synthetic_dataset("d", 4, "1 MB"),
            compute_model=FixedComputeModel(1.0),
            strategy=StrategyKind.REAL_TIME,
        )
        assert outcome.all_tasks_ok

    def test_local_facade(self, tmp_path):
        paths = []
        for i in range(4):
            p = tmp_path / f"f{i}.txt"
            p.write_text("x")
            paths.append(str(p))
        outcome = Frieda.local(num_workers=2).run(paths, command=lambda p: None)
        assert outcome.all_tasks_ok

    def test_tcp_facade(self, tmp_path):
        paths = []
        for i in range(2):
            p = tmp_path / f"f{i}.txt"
            p.write_text("y")
            paths.append(str(p))
        outcome = Frieda.tcp(num_workers=1, run_timeout=60).run(
            paths, command=lambda p: None
        )
        assert outcome.all_tasks_ok


class TestImageWorkloadEndToEnd:
    def test_pairwise_image_comparison_under_frieda(self, tmp_path):
        paths = write_image_dataset(
            str(tmp_path), 8, config=BeamlineImageConfig(size=48), seed=3
        )
        verdicts = []
        lock = threading.Lock()

        def program(a, b):
            result = compare_image_files(a, b)
            with lock:
                verdicts.append(result.similar)

        outcome = Frieda.local(num_workers=3).run(
            paths,
            command=program,
            strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
        )
        assert outcome.tasks_completed == 4
        # Adjacent frames come from the same sample -> all similar.
        assert all(verdicts)


class TestBlastWorkloadEndToEnd:
    def test_query_files_under_frieda(self, tmp_path):
        db_records = synthetic_database(10, mean_length=100, seed=1)
        database = BlastDatabase(db_records)
        queries = synthetic_queries(db_records, 4, homolog_fraction=1.0, seed=2)
        paths = []
        for i, query in enumerate(queries):
            path = str(tmp_path / f"q{i}.fa")
            write_fasta([query], path)
            paths.append(path)
        hits_per_file = {}
        lock = threading.Lock()

        def program(path):
            records = read_fasta(path)
            count = sum(len(blast_search(q, database)) for q in records)
            with lock:
                hits_per_file[os.path.basename(path)] = count

        outcome = Frieda.local(num_workers=2).run(
            paths, command=program, strategy=StrategyKind.REAL_TIME
        )
        assert outcome.all_tasks_ok
        assert sum(hits_per_file.values()) >= 2  # homologs found


class TestProtocolSequence:
    def test_fig4_event_order_on_simulated_engine(self):
        """The controller's audit log follows Figure 4's sequence."""
        frieda = Frieda.simulated(ClusterSpec(num_workers=2))
        outcome = frieda.run(
            synthetic_dataset("d", 4, "1 MB"),
            compute_model=FixedComputeModel(0.5),
        )
        kinds = [e.kind for e in outcome.controller_events]
        # Partition generation precedes worker forking.
        assert kinds.index("PARTITION_GENERATED") < kinds.index("FORK_REMOTE_WORKERS")

    def test_strategy_consistency_across_engines(self, tmp_path):
        """The same workload on threaded vs TCP engines completes the
        same task set (engine-independence of the core logic)."""
        paths = []
        for i in range(4):
            p = tmp_path / f"f{i}.txt"
            p.write_text("data" * (i + 1))
            paths.append(str(p))
        threaded = Frieda.local(num_workers=2).run(paths, command=lambda p: None)
        tcp = Frieda.tcp(num_workers=2, run_timeout=60).run(paths, command=lambda p: None)
        assert threaded.tasks_completed == tcp.tasks_completed == 4
        assert {r.task_id for r in threaded.task_records} == {
            r.task_id for r in tcp.task_records
        }
