"""C kernel vs pure-Python kernel: one schedule, two implementations.

The accelerator in ``repro.sim._ckern`` replaces the Python event loop
with a C heap, and the pure kernel adds a calendar-queue far band on
top of its own heap — yet both must dispatch in exactly the same
``(when, priority, seq)`` order or simulated runs stop replaying across
machines.  The pure kernel runs in a subprocess (``FRIEDA_PURE_KERNEL``
is read at import time) and its schedule digest must match the
in-process kernel's, whichever one is active here.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.strategies import StrategyKind
from repro.sim import kernel

from tests.integration.test_determinism_replay import _run_once, _schedule_digest

_SUBPROCESS_SNIPPET = """
import sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from repro.core.strategies import StrategyKind
from tests.integration.test_determinism_replay import _run_once, _schedule_digest
outcome = _run_once(StrategyKind[sys.argv[1]], seed=7)
print(_schedule_digest(outcome))
"""


def _digest_in_pure_subprocess(strategy: StrategyKind) -> str:
    env = dict(os.environ, FRIEDA_PURE_KERNEL="1", PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET, strategy.name],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


@pytest.mark.skipif(
    kernel.Environment is kernel.PyEnvironment,
    reason="C kernel not built; both paths would be the pure kernel",
)
@pytest.mark.parametrize(
    "strategy", [StrategyKind.REAL_TIME, StrategyKind.PRE_PARTITIONED_REMOTE]
)
def test_c_and_pure_kernels_produce_identical_digests(strategy):
    here = _schedule_digest(_run_once(strategy, seed=7))
    pure = _digest_in_pure_subprocess(strategy)
    assert here == pure, f"kernel divergence under {strategy.name}"


def test_pure_kernel_env_var_is_honoured():
    # Independent of whether the accelerator is importable here, the
    # subprocess must come up on the pure kernel when asked.
    env = dict(os.environ, FRIEDA_PURE_KERNEL="1", PYTHONPATH="src")
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.sim import kernel; "
            "assert kernel.Environment is kernel.PyEnvironment; print('pure')",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "pure"
