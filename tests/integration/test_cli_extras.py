"""Remaining CLI surface: chunk groupings, plot flag, report output."""

import pytest

from repro.cli import main as frieda_main
from repro.experiments.cli import main as experiments_main


@pytest.fixture
def input_dir(tmp_path):
    data = tmp_path / "in"
    data.mkdir()
    for i in range(6):
        (data / f"f{i}.txt").write_text("x" * (i + 1))
    return str(data)


class TestChunkGroupings:
    def test_round_robin_chunks(self, input_dir, capsys):
        code = frieda_main(
            [
                "run", input_dir,
                "--command", "cat $inp1 $inp2 $inp3 > /dev/null",
                "--grouping", "round_robin_chunks",
                "--chunks", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tasks=2/2" in out

    def test_size_balanced_chunks(self, input_dir, capsys):
        code = frieda_main(
            [
                "run", input_dir,
                "--command", "true $inp1 $inp2",
                "--grouping", "size_balanced_chunks",
                "--chunks", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tasks=3/3" in out


class TestExperimentsPlotFlag:
    def test_fig6_plot(self, capsys):
        code = experiments_main(["fig6", "--scale", "0.05", "--plot"])
        out = capsys.readouterr().out
        assert code == 0
        assert "▒" in out and "█" in out  # stacked bars rendered

    def test_fig7_plot(self, capsys):
        code = experiments_main(["fig7", "--scale", "0.05", "--plot"])
        out = capsys.readouterr().out
        assert code == 0
        assert "legend" in out
