"""Cross-engine chaos parity: all three planes conclude the same thing.

Each scenario from the standing catalogue runs on the simulated,
threaded, and TCP engines; the outcome digest (task accounting +
workers declared failed) must agree. A second pass over representative
scenarios asserts the digests are also stable run-to-run — chaos runs
replay deterministically.
"""

import pytest

from repro.runtime.chaos import (
    ENGINES,
    ChaosScenario,
    outcome_digest,
    parity_digests,
    run_scenario,
    scenario_catalogue,
    worker_id,
    workers_failed,
)
from repro.errors import ConfigurationError


CATALOGUE = {sc.name: sc for sc in scenario_catalogue()}


class TestParity:
    @pytest.mark.parametrize("name", sorted(CATALOGUE))
    def test_engines_agree(self, name, tmp_path):
        digests = parity_digests(CATALOGUE[name], str(tmp_path))
        assert set(digests) == set(ENGINES)
        assert len(set(digests.values())) == 1, f"parity broken: {digests}"

    def test_faulty_scenarios_differ_from_baseline(self, tmp_path):
        # Guard against a degenerate digest: a lossy scenario must not
        # hash equal to the clean one.
        base = parity_digests(CATALOGUE["baseline"], str(tmp_path), ["simulated"])
        lossy = parity_digests(
            CATALOGUE["crash-paper-faithful"], str(tmp_path), ["simulated"]
        )
        assert base["simulated"] != lossy["simulated"]


class TestDeterminism:
    @pytest.mark.parametrize("name", ["crash-retry", "wire-faults"])
    def test_digests_stable_across_repeats(self, name, tmp_path):
        first = parity_digests(CATALOGUE[name], str(tmp_path))
        second = parity_digests(CATALOGUE[name], str(tmp_path))
        assert first == second


class TestScenarioSemantics:
    def test_crash_scenario_reports_one_worker_failed(self, tmp_path):
        outcome = run_scenario(CATALOGUE["crash-retry"], "simulated", str(tmp_path))
        assert workers_failed(outcome) == 1
        assert outcome.tasks_completed == outcome.tasks_total

    def test_hang_scenario_uses_heartbeats(self, tmp_path):
        outcome = run_scenario(CATALOGUE["hang-heartbeat"], "tcp", str(tmp_path))
        assert outcome.extra["heartbeat_deaths"] == [worker_id("tcp", 1)]

    def test_wire_scenario_perturbs_the_tcp_plane(self, tmp_path):
        outcome = run_scenario(CATALOGUE["wire-faults"], "tcp", str(tmp_path))
        assert outcome.extra["injected_faults"], "fault script never fired"
        assert outcome.tasks_completed == outcome.tasks_total

    def test_digest_covers_worker_failures(self, tmp_path):
        # Same task accounting, different worker-loss count -> digests
        # must differ (retried crash vs clean run).
        clean = run_scenario(CATALOGUE["baseline"], "simulated", str(tmp_path))
        crashed = run_scenario(CATALOGUE["crash-retry"], "simulated", str(tmp_path))
        assert crashed.tasks_completed == crashed.tasks_total
        assert outcome_digest(clean) != outcome_digest(crashed)


class TestScenarioValidation:
    def test_unknown_engine_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_scenario(CATALOGUE["baseline"], "quantum", str(tmp_path))

    def test_fault_on_missing_worker_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosScenario(name="bad", workers=2, crash_on_task={5: 1})

    def test_truncate_wire_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosScenario(name="bad", wire_rules=({"action": "truncate"},))

    def test_worker_id_mapping(self):
        assert worker_id("simulated", 0) == "worker1:0"
        assert worker_id("threaded", 1) == "local:1"
        assert worker_id("tcp", 2) == "tcp:2"
