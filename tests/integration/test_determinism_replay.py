"""Determinism regression: same seed ⇒ byte-identical event schedule.

This is the dynamic twin of the static ``wall-clock``/``global-random``
lint rules: if anyone smuggles real time or global RNG state into the
simulation despite them, two runs with the same seed stop producing
identical task placements and timestamps, and the digests diverge.
"""

from __future__ import annotations

import hashlib

from repro.core.strategies import StrategyKind
from repro.engines.simulated import SimulationOptions
from repro.workloads import als_profile, run_profile


def _schedule_digest(outcome) -> str:
    """Hash every schedule-visible quantity of a run."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(
        f"{outcome.makespan!r}|{outcome.transfer_time!r}|"
        f"{outcome.execution_time!r}|{outcome.bytes_transferred!r}".encode()
    )
    for record in outcome.task_records:
        digest.update(
            f"{record.task_id}|{record.worker_id}|{record.node_id}|"
            f"{record.start!r}|{record.end!r}|{record.ok}|{record.attempt}".encode()
        )
    return digest.hexdigest()


def _run_once(strategy, *, seed: int, mttf: float | None = None):
    profile = als_profile(scale=0.1, seed=seed)
    options = SimulationOptions(seed=seed)
    return run_profile(profile, strategy, options=options, failure_mttf=mttf)


def test_same_seed_replays_identically():
    for strategy in (StrategyKind.REAL_TIME, StrategyKind.PRE_PARTITIONED_REMOTE):
        first = _run_once(strategy, seed=7)
        second = _run_once(strategy, seed=7)
        assert _schedule_digest(first) == _schedule_digest(second), strategy


def test_same_seed_replays_identically_under_failures():
    # Failure injection is the most RNG-hungry path (exponential
    # time-to-failure per VM): it must replay bit-for-bit too.
    first = _run_once(StrategyKind.REAL_TIME, seed=11, mttf=600.0)
    second = _run_once(StrategyKind.REAL_TIME, seed=11, mttf=600.0)
    assert _schedule_digest(first) == _schedule_digest(second)


def test_different_seeds_diverge():
    # Guards the guard: if the digest ignored the schedule (or the
    # engine ignored the seed), this would silently pass above.
    base = _run_once(StrategyKind.REAL_TIME, seed=11, mttf=600.0)
    other = _run_once(StrategyKind.REAL_TIME, seed=12, mttf=600.0)
    assert _schedule_digest(base) != _schedule_digest(other)


def _trace_bytes(seed: int) -> str:
    from repro.telemetry import Telemetry, dump_chrome_trace

    telemetry = Telemetry(record=True)
    profile = als_profile(scale=0.1, seed=seed)
    run_profile(
        profile,
        StrategyKind.REAL_TIME,
        options=SimulationOptions(seed=seed),
        failure_mttf=600.0,
        telemetry=telemetry,
    )
    return dump_chrome_trace(telemetry)


def test_same_seed_exports_byte_identical_trace():
    # The exporter's determinism contract: span ids, pid/tid numbering,
    # timestamp rounding, and key ordering are all pure functions of
    # the seeded schedule.
    assert _trace_bytes(seed=7) == _trace_bytes(seed=7)


def test_different_seed_traces_diverge():
    assert _trace_bytes(seed=7) != _trace_bytes(seed=8)
