"""Tests for the ``python -m repro`` command line."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def input_dir(tmp_path):
    data = tmp_path / "inputs"
    data.mkdir()
    for i in range(4):
        (data / f"f{i}.txt").write_text(f"hello {i}\n" * (i + 1))
    return str(data)


class TestRunSubcommand:
    def test_basic_run(self, input_dir, capsys):
        code = main(["run", input_dir, "--command", "wc -l $inp1", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tasks=4/4" in out

    def test_pairwise_grouping(self, input_dir, capsys):
        code = main(
            [
                "run", input_dir,
                "--command", "cat $inp1 $inp2 > /dev/null",
                "--grouping", "pairwise_adjacent",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tasks=2/2" in out

    def test_report_written(self, input_dir, tmp_path, capsys):
        report = str(tmp_path / "out.json")
        code = main(
            ["run", input_dir, "--command", "true $inp1", "--report", report]
        )
        assert code == 0
        with open(report) as fh:
            payload = json.load(fh)
        assert payload["tasks"]["completed"] == 4

    def test_timeline_printed(self, input_dir, capsys):
        main(["run", input_dir, "--command", "true $inp1", "--timeline"])
        assert "timeline:" in capsys.readouterr().out

    def test_failing_command_nonzero_exit(self, input_dir, capsys):
        code = main(["run", input_dir, "--command", "false $inp1"])
        assert code == 1

    def test_empty_directory_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["run", str(empty), "--command", "true $inp1"]) == 2

    def test_pattern_filter(self, input_dir, capsys):
        code = main(
            ["run", input_dir, "--command", "true $inp1", "--pattern", "f1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tasks=1/1" in out

    def test_tcp_engine(self, input_dir, capsys):
        code = main(
            ["run", input_dir, "--command", "true $inp1", "--engine", "tcp",
             "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tasks=4/4" in out

    def test_strategy_choice(self, input_dir, capsys):
        code = main(
            ["run", input_dir, "--command", "true $inp1",
             "--strategy", "pre_partitioned_remote"]
        )
        assert code == 0
        assert "pre_partitioned_remote" in capsys.readouterr().out


class TestOtherSubcommands:
    def test_strategies_listing(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for kind in ("real_time", "common_data", "pairwise_adjacent"):
            assert kind in out

    def test_advise_transfer_bound(self, capsys):
        assert main(["advise", "--bytes-per-compute-second", "5e6"]) == 0
        assert capsys.readouterr().out.strip() == "real_time"

    def test_advise_uniform_compute_bound(self, capsys):
        assert main(
            ["advise", "--bytes-per-compute-second", "100", "--task-cost-cv", "0.0"]
        ) == 0
        assert capsys.readouterr().out.strip() == "pre_partitioned_remote"
