"""Smoke tests: every bundled example must run end to end.

Examples are user-facing documentation; a broken example is a broken
deliverable. Each test runs the example's ``main()`` in-process (with
small arguments where supported) and checks it completes.
"""

import os
import runpy
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, argv: list[str] | None = None) -> None:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    assert os.path.isfile(path), f"example missing: {path}"
    old_argv = sys.argv
    try:
        sys.argv = [path] + list(argv or [])
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "doc0.txt" in out

    def test_image_analysis_small(self, capsys):
        run_example("image_analysis.py", ["4"])
        out = capsys.readouterr().out
        assert "comparisons" in out
        assert "similar" in out

    def test_blast_pipeline_small(self, capsys):
        run_example("blast_pipeline.py", ["2"])
        out = capsys.readouterr().out
        assert "queries matched the database" in out

    def test_cloud_simulation(self, capsys):
        run_example("cloud_simulation.py")
        out = capsys.readouterr().out
        assert "strategy comparison" in out
        assert "retry extension" in out
        assert "elastic 4->6" in out

    def test_adaptive_strategy(self, capsys):
        run_example("adaptive_strategy.py")
        out = capsys.readouterr().out
        assert "cold start" in out
        assert "history-driven recommendations" in out

    def test_workflow_pipeline(self, capsys):
        run_example("workflow_pipeline.py")
        out = capsys.readouterr().out
        assert "workflow ok=True" in out
        assert "adjacent pairs similar" in out

    def test_ring_analysis(self, capsys):
        run_example("ring_analysis.py", ["4"])
        out = capsys.readouterr().out
        assert "rings at" in out
        assert "same-sample" in out
