"""Retry policy, transient faults and timeouts at the transfer layer."""

import pytest

from repro.cloud.failures import TransferFaultModel
from repro.cloud.network import FlowNetwork
from repro.errors import ConfigurationError
from repro.sim import Environment
from repro.transfer.base import TransferProtocol, TransferRequest
from repro.transfer.retry import TransferRetryPolicy
from repro.transfer.staging import StagingPlan, TransferService
from repro.util.seeding import make_rng
from repro.util.units import MB, Mbit


class _Raw(TransferProtocol):
    name = "raw"
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1
    per_stream_cap_bps = None


def build(env, *, retry_policy=None, fault_model=None):
    net = FlowNetwork(env)
    net.add_link("up", 100 * Mbit)
    return net, TransferService(
        env, net, _Raw(), retry_policy=retry_policy, fault_model=fault_model
    )


def run_transfer(env, service, request):
    def proc(env):
        result = yield env.process(service.transfer(request))
        return result

    p = env.process(proc(env))
    env.run()
    return p.value


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransferRetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            TransferRetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            TransferRetryPolicy(jitter_fraction=2.0)
        with pytest.raises(ConfigurationError):
            TransferRetryPolicy(timeout_s=0.0)

    def test_paper_faithful_disabled(self):
        policy = TransferRetryPolicy.paper_faithful()
        assert not policy.enabled
        assert policy.max_attempts == 1

    def test_resilient_enabled(self):
        policy = TransferRetryPolicy.resilient()
        assert policy.enabled
        assert policy.max_attempts > 1
        assert policy.timeout_s is not None

    def test_backoff_exponential_and_capped(self):
        policy = TransferRetryPolicy(
            max_attempts=9, backoff_base_s=1.0, backoff_factor=2.0, backoff_cap_s=5.0
        )
        rng = make_rng(0, "test")
        delays = [policy.backoff_s(k, rng) for k in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_only_draws_when_configured(self):
        """A jitter-free policy must leave the seeded stream untouched."""
        rng = make_rng(0, "test")
        before = rng.bit_generator.state["state"]["state"]
        TransferRetryPolicy(max_attempts=3, backoff_base_s=1.0).backoff_s(1, rng)
        assert rng.bit_generator.state["state"]["state"] == before
        jittered = TransferRetryPolicy(
            max_attempts=3, backoff_base_s=1.0, jitter_fraction=0.5
        )
        delay = jittered.backoff_s(1, rng)
        assert rng.bit_generator.state["state"]["state"] != before
        assert 0.5 <= delay <= 1.5


class TestRetryLoop:
    def test_fault_then_success(self):
        env = Environment()
        # fault_rate high: attempt 1 faults (seed chosen to fault first).
        model = TransferFaultModel(0.99, seed=1)
        _net, service = build(
            env,
            retry_policy=TransferRetryPolicy(max_attempts=30, backoff_base_s=0.01),
            fault_model=model,
        )
        result = run_transfer(env, service, TransferRequest("f", 1 * MB, ("up",)))
        # With 30 attempts at 1% success each, almost surely fails — the
        # point is the loop terminates and reports attempts either way.
        assert result.attempts >= 1
        assert result.ok or result.attempts == 30

    def test_retries_until_success_counts_attempts(self):
        env = Environment()
        model = TransferFaultModel(0.5, seed=3)
        _net, service = build(
            env,
            retry_policy=TransferRetryPolicy(max_attempts=50, backoff_base_s=0.01),
            fault_model=model,
        )
        result = run_transfer(env, service, TransferRequest("f", 1 * MB, ("up",)))
        assert result.ok
        assert result.attempts >= 1
        assert result.error == ""

    def test_exhausted_retries_return_failed_result(self):
        env = Environment()
        model = TransferFaultModel(0.999999, seed=5)
        _net, service = build(
            env,
            retry_policy=TransferRetryPolicy(max_attempts=3, backoff_base_s=0.01),
            fault_model=model,
        )
        result = run_transfer(env, service, TransferRequest("f", 1 * MB, ("up",)))
        assert not result.ok
        assert result.attempts == 3
        assert "transient-fault" in result.error

    def test_paper_faithful_single_attempt(self):
        env = Environment()
        model = TransferFaultModel(0.999999, seed=5)
        _net, service = build(
            env,
            retry_policy=TransferRetryPolicy.paper_faithful(),
            fault_model=model,
        )
        result = run_transfer(env, service, TransferRequest("f", 1 * MB, ("up",)))
        assert not result.ok
        assert result.attempts == 1

    def test_clean_path_unchanged_without_faults(self):
        env = Environment()
        _net, service = build(env, retry_policy=TransferRetryPolicy.resilient())
        result = run_transfer(env, service, TransferRequest("f", 100 * MB, ("up",)))
        assert result.ok
        assert result.attempts == 1
        assert result.duration == pytest.approx(8.0, rel=1e-6)

    def test_deterministic_replay(self):
        ends = []
        for _ in range(2):
            env = Environment()
            _net, service = build(
                env,
                retry_policy=TransferRetryPolicy(
                    max_attempts=10, backoff_base_s=0.5, jitter_fraction=0.5
                ),
                fault_model=TransferFaultModel(0.6, seed=7),
            )
            results = [
                run_transfer(
                    env, service, TransferRequest(f"f{i}", 1 * MB, ("up",))
                )
                for i in range(5)
            ]
            ends.append(tuple((r.end, r.ok, r.attempts) for r in results))
        assert ends[0] == ends[1]


class TestTimeout:
    def test_timeout_cancels_and_fails_attempt(self):
        env = Environment()
        # 100 Mbit link, 100 MB file = 8 s; 1 s timeout must kill it.
        net, service = build(
            env, retry_policy=TransferRetryPolicy(max_attempts=1, timeout_s=1.0)
        )
        result = run_transfer(env, service, TransferRequest("f", 100 * MB, ("up",)))
        assert not result.ok
        assert result.error == "timeout"
        assert result.end == pytest.approx(1.0)
        # The cancelled flow released its bandwidth (no active flows).
        assert not net._flows

    def test_timeout_within_budget_succeeds(self):
        env = Environment()
        _net, service = build(
            env, retry_policy=TransferRetryPolicy(max_attempts=1, timeout_s=10.0)
        )
        result = run_transfer(env, service, TransferRequest("f", 100 * MB, ("up",)))
        assert result.ok
        assert result.end == pytest.approx(8.0, rel=1e-6)


class TestStagingNeverCrashes:
    def test_every_request_yields_a_result(self):
        env = Environment()
        _net, service = build(
            env,
            retry_policy=TransferRetryPolicy.paper_faithful(),
            fault_model=TransferFaultModel(0.5, seed=11),
        )
        plan = StagingPlan(concurrency=2)
        for i in range(12):
            plan.add(TransferRequest(f"f{i}", 1 * MB, ("up",), tag=f"t{i}"))

        def proc(env):
            results = yield env.process(plan.execute(service))
            return results

        p = env.process(proc(env))
        env.run()
        results = p.value
        assert len(results) == 12
        assert {r.file_name for r in results} == {f"f{i}" for i in range(12)}
        assert all(r.attempts == 1 for r in results)
        assert any(not r.ok for r in results)  # seed 11 faults some
        assert any(r.ok for r in results)
        assert all(r.tag.startswith("t") for r in results)

    def test_metrics_track_retries_and_failures(self):
        from repro.telemetry.spans import Telemetry

        env = Environment()
        tel = Telemetry(clock=lambda: env.now)
        net = FlowNetwork(env)
        net.add_link("up", 100 * Mbit)
        service = TransferService(
            env,
            net,
            _Raw(),
            telemetry=tel,
            retry_policy=TransferRetryPolicy(max_attempts=2, backoff_base_s=0.01),
            fault_model=TransferFaultModel(0.9, seed=2),
        )

        def proc(env):
            for i in range(10):
                yield env.process(
                    service.transfer(TransferRequest(f"f{i}", 1 * MB, ("up",)))
                )

        env.process(proc(env))
        env.run()
        snap = tel.metrics.snapshot()["counters"]
        assert snap["transfer.count"] == 10
        assert snap["transfer.retries"] > 0
        assert snap["transfer.faults"] > 0
        failed = sum(1 for r in service.results if not r.ok)
        assert snap["transfer.failed"] == failed
