"""Unit tests for the transfer service and staging plans."""

import pytest

from repro.cloud.network import FlowNetwork
from repro.errors import TransferError
from repro.sim import Environment
from repro.sim.monitor import Monitor
from repro.transfer.base import TransferProtocol, TransferRequest
from repro.transfer.gridftp import GridFtpModel
from repro.transfer.scp import ScpModel
from repro.transfer.staging import StagingPlan, TransferService
from repro.util.units import MB, Mbit


class _Raw(TransferProtocol):
    """No handshake, perfect efficiency — for exact timing assertions."""

    name = "raw"
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1
    per_stream_cap_bps = None


def build(env, protocol, monitor=None):
    net = FlowNetwork(env)
    net.add_link("up", 100 * Mbit)
    net.add_link("down", 100 * Mbit)
    return net, TransferService(env, net, protocol, monitor)


class TestTransferService:
    def test_raw_transfer_timing(self):
        env = Environment()
        _net, service = build(env, _Raw())

        def proc(env):
            result = yield env.process(
                service.transfer(TransferRequest("f", 100 * MB, ("up", "down")))
            )
            return result

        p = env.process(proc(env))
        env.run()
        assert p.value.duration == pytest.approx(8.0, rel=1e-6)

    def test_scp_adds_handshake_and_overhead(self):
        env = Environment()
        _net, service = build(env, ScpModel())

        def proc(env):
            result = yield env.process(
                service.transfer(TransferRequest("f", 93 * MB, ("up", "down")))
            )
            return result

        p = env.process(proc(env))
        env.run()
        # 93 MB at 93% efficiency = 100 MB wire = 8 s, plus handshake.
        assert p.value.duration == pytest.approx(8.0 + ScpModel().handshake_latency, rel=1e-3)

    def test_gridftp_splits_streams(self):
        env = Environment()
        net, service = build(env, GridFtpModel())

        def proc(env):
            yield env.process(
                service.transfer(TransferRequest("f", 10 * MB, ("up", "down")))
            )

        env.process(proc(env))
        env.run()
        assert net.completed_flows == GridFtpModel().streams

    def test_results_recorded(self):
        env = Environment()
        _net, service = build(env, _Raw())

        def proc(env):
            yield env.process(service.transfer(TransferRequest("a", 1 * MB, ("up",))))
            yield env.process(service.transfer(TransferRequest("b", 1 * MB, ("up",))))

        env.process(proc(env))
        env.run()
        assert [r.file_name for r in service.results] == ["a", "b"]

    def test_monitor_intervals_emitted(self):
        env = Environment()
        monitor = Monitor()
        _net, service = build(env, _Raw(), monitor)

        def proc(env):
            yield env.process(service.transfer(TransferRequest("a", 1 * MB, ("up",))))

        env.process(proc(env))
        env.run()
        assert len(monitor.intervals_for("transfer")) == 1


class TestStagingPlan:
    def test_concurrency_limits_parallelism(self):
        env = Environment()
        _net, service = build(env, _Raw())
        plan = StagingPlan(concurrency=1)
        for i in range(3):
            plan.add(TransferRequest(f"f{i}", 100 * MB, ("up", "down")))

        def proc(env):
            results = yield env.process(plan.execute(service))
            return results

        p = env.process(proc(env))
        env.run()
        # Serialized: 3 x 8 s (sharing would also give 24 s total, but
        # serialization means the first finishes at 8 s).
        assert env.now == pytest.approx(24.0, rel=1e-6)
        assert min(r.end for r in p.value) == pytest.approx(8.0, rel=1e-6)

    def test_unbounded_concurrency_shares_fairly(self):
        env = Environment()
        _net, service = build(env, _Raw())
        plan = StagingPlan(concurrency=3)
        for i in range(3):
            plan.add(TransferRequest(f"f{i}", 100 * MB, ("up", "down")))

        def proc(env):
            results = yield env.process(plan.execute(service))
            return results

        p = env.process(proc(env))
        env.run()
        assert all(r.end == pytest.approx(24.0, rel=1e-6) for r in p.value)

    def test_total_bytes(self):
        plan = StagingPlan()
        plan.add(TransferRequest("a", 10, ("l",)))
        plan.add(TransferRequest("b", 20, ("l",)))
        assert plan.total_bytes == 30

    def test_invalid_concurrency(self):
        env = Environment()
        _net, service = build(env, _Raw())
        plan = StagingPlan(concurrency=0)
        plan.add(TransferRequest("a", 10, ("up",)))
        p = env.process(plan.execute(service))
        with pytest.raises(TransferError):
            env.run()

    def test_empty_plan_completes_instantly(self):
        env = Environment()
        _net, service = build(env, _Raw())

        def proc(env):
            results = yield env.process(StagingPlan().execute(service))
            return results

        p = env.process(proc(env))
        env.run()
        assert p.value == []
