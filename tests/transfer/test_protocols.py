"""Unit tests for transfer protocol models."""

import pytest

from repro.errors import TransferError
from repro.transfer.base import TransferProtocol, TransferRequest, TransferResult
from repro.transfer.gridftp import GridFtpModel
from repro.transfer.scp import ScpModel


class TestTransferRequest:
    def test_negative_size_rejected(self):
        with pytest.raises(TransferError):
            TransferRequest("f", -1, ("l",))

    def test_empty_path_rejected(self):
        with pytest.raises(TransferError):
            TransferRequest("f", 10, ())


class TestTransferResult:
    def test_throughput(self):
        r = TransferResult("f", 1_000_000, start=0.0, end=8.0)
        assert r.duration == 8.0
        assert r.throughput_bps == pytest.approx(1e6)

    def test_zero_duration_infinite_throughput(self):
        r = TransferResult("f", 10, start=1.0, end=1.0)
        assert r.throughput_bps == float("inf")


class TestProtocolModels:
    def test_scp_single_stream(self):
        scp = ScpModel()
        assert scp.streams == 1
        assert scp.stream_sizes(1000) == [1000]

    def test_scp_handshake_positive(self):
        assert ScpModel().handshake_latency > 0

    def test_gridftp_parallel_streams_sum_to_total(self):
        g = GridFtpModel()
        sizes = g.stream_sizes(1003)
        assert len(sizes) == g.streams
        assert sum(sizes) == 1003

    def test_gridftp_cheaper_handshake_than_scp(self):
        assert GridFtpModel().handshake_latency < ScpModel().handshake_latency

    def test_gridftp_higher_efficiency(self):
        assert GridFtpModel().efficiency > ScpModel().efficiency

    def test_effective_bytes_inflates_by_efficiency(self):
        scp = ScpModel()
        assert scp.effective_bytes(930) == pytest.approx(1000.0)

    def test_invalid_efficiency_rejected(self):
        class Bad(TransferProtocol):
            efficiency = 0.0

        with pytest.raises(TransferError):
            Bad().effective_bytes(10)

    def test_zero_byte_stream_sizes(self):
        assert GridFtpModel().stream_sizes(0) == [0]
