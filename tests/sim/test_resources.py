"""Unit tests for sim resources: Resource, Container, Store, FilterStore."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, FilterStore, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        log = []

        def user(env, tag, hold):
            with res.request() as req:
                yield req
                log.append((env.now, tag, "in"))
                yield env.timeout(hold)
            log.append((env.now, tag, "out"))

        for tag, hold in [("a", 5), ("b", 5), ("c", 5)]:
            env.process(user(env, tag, hold))
        env.run()
        # c must wait for a slot at t=5
        assert (0.0, "a", "in") in log and (0.0, "b", "in") in log
        assert (5.0, "c", "in") in log
        assert env.now == 10.0

    def test_fifo_queueing(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(env, tag):
            with res.request() as req:
                yield req
                order.append(tag)
                yield env.timeout(1)

        for tag in "abcd":
            env.process(user(env, tag))
        env.run()
        assert order == list("abcd")

    def test_count_and_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                assert res.count == 1
                yield env.timeout(10)

        def waiter(env):
            yield env.timeout(1)
            request = res.request()
            assert res.queue_length == 1
            request.cancel()
            assert res.queue_length == 0

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        assert res.count == 0

    def test_release_unknown_request_raises(self):
        env = Environment()
        res = Resource(env)
        other = Resource(env)
        req = other.request()
        with pytest.raises(SimulationError):
            res.release(req)

    def test_context_manager_releases_on_exception(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def failing(env):
            with res.request() as req:
                yield req
                raise RuntimeError("task failed")

        def follower(env):
            yield env.timeout(1)
            with res.request() as req:
                yield req
                return "got-slot"

        bad = env.process(failing(env))
        good = env.process(follower(env))

        def supervisor(env):
            try:
                yield bad
            except RuntimeError:
                pass

        env.process(supervisor(env))
        env.run()
        assert good.value == "got-slot"


class TestContainer:
    def test_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Container(env, capacity=0)
        with pytest.raises(SimulationError):
            Container(env, capacity=5, init=6)

    def test_put_then_get(self):
        env = Environment()
        c = Container(env, capacity=100, init=0)

        def producer(env):
            yield env.timeout(2)
            yield c.put(30)

        def consumer(env):
            yield c.get(30)
            return env.now

        p = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert p.value == 2.0
        assert c.level == 0

    def test_get_blocks_until_level(self):
        env = Environment()
        c = Container(env, init=10, capacity=100)

        def consumer(env):
            yield c.get(25)
            return env.now

        def producer(env):
            yield env.timeout(5)
            yield c.put(20)

        p = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert p.value == 5.0

    def test_put_blocks_at_capacity(self):
        env = Environment()
        c = Container(env, capacity=10, init=10)

        def producer(env):
            yield c.put(5)
            return env.now

        def consumer(env):
            yield env.timeout(3)
            yield c.get(7)

        p = env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert p.value == 3.0

    def test_negative_amounts_rejected(self):
        env = Environment()
        c = Container(env)
        with pytest.raises(SimulationError):
            c.put(-1)
        with pytest.raises(SimulationError):
            c.get(-1)


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        def producer(env):
            for item in "xyz":
                yield store.put(item)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == ["x", "y", "z"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        def producer(env):
            yield env.timeout(4)
            yield store.put("late")

        p = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert p.value == (4.0, "late")

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)

        def producer(env):
            yield store.put(1)
            yield store.put(2)  # blocks until the first is taken
            return env.now

        def consumer(env):
            yield env.timeout(7)
            yield store.get()

        p = env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert p.value == 7.0

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_len_reflects_items(self):
        env = Environment()
        store = Store(env)

        def producer(env):
            yield store.put("a")
            yield store.put("b")

        env.process(producer(env))
        env.run()
        assert len(store) == 2

    def test_bulk_put_get_preserves_fifo(self):
        """10k put/get pairs drain in order (regression: the FIFO pop
        used to be list.pop(0), quadratic over a backlog this size)."""
        env = Environment()
        store = Store(env)
        n = 10_000
        received = []

        def producer(env):
            for i in range(n):
                yield store.put(i)

        def consumer(env):
            for _ in range(n):
                item = yield store.get()
                received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == list(range(n))
        assert len(store) == 0


class TestFilterStore:
    def test_filter_selects_matching(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def consumer(env):
            item = yield store.get(lambda x: x % 2 == 0)
            got.append(item)

        def producer(env):
            for item in (1, 3, 4, 5):
                yield store.put(item)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [4]
        assert list(store.items) == [1, 3, 5]

    def test_multiple_getters_different_filters(self):
        env = Environment()
        store = FilterStore(env)
        results = {}

        def consumer(env, key, predicate):
            item = yield store.get(predicate)
            results[key] = item

        env.process(consumer(env, "big", lambda x: x > 10))
        env.process(consumer(env, "small", lambda x: x <= 10))

        def producer(env):
            yield store.put(3)
            yield store.put(50)

        env.process(producer(env))
        env.run()
        assert results == {"small": 3, "big": 50}

    def test_default_filter_takes_first(self):
        env = Environment()
        store = FilterStore(env)

        def roundtrip(env):
            yield store.put("first")
            yield store.put("second")
            item = yield store.get()
            return item

        p = env.process(roundtrip(env))
        env.run()
        assert p.value == "first"
