"""Unit tests for the Monitor instrumentation."""

import pytest

from repro.sim.monitor import Monitor


class TestSamples:
    def test_series_returns_points(self):
        m = Monitor()
        m.sample(1.0, "queue", 3)
        m.sample(2.0, "queue", 5)
        m.sample(1.5, "other", 9)
        assert m.series("queue") == [(1.0, 3), (2.0, 5)]

    def test_stats_accumulate_numeric(self):
        m = Monitor()
        for t, v in [(0, 2.0), (1, 4.0)]:
            m.sample(t, "load", v)
        assert m.stats("load").mean == pytest.approx(3.0)

    def test_non_numeric_samples_kept_but_not_statted(self):
        m = Monitor()
        m.sample(0.0, "event", "vm-failed")
        assert m.series("event") == [(0.0, "vm-failed")]
        assert m.stats("event").count == 0

    def test_bool_not_statted(self):
        m = Monitor()
        m.sample(0.0, "flag", True)
        assert m.stats("flag").count == 0

    def test_tags_preserved(self):
        m = Monitor()
        m.sample(0.0, "x", 1, worker="w0")
        assert m.records[0].tags == (("worker", "w0"),)

    def test_stats_read_does_not_mutate(self):
        # Probing an unknown key must not register it: reads are pure.
        m = Monitor()
        empty = m.stats("never-sampled")
        assert empty.count == 0
        empty.add(99.0)  # mutating the returned throwaway is harmless
        assert m.stats("never-sampled").count == 0
        m.sample(0.0, "real", 1.0)
        assert m.stats("real").count == 1

    def test_series_unknown_key_empty_without_registration(self):
        m = Monitor()
        assert m.series("ghost") == []
        m.sample(1.0, "ghost", 5)
        assert m.series("ghost") == [(1.0, 5)]


class TestIntervals:
    def test_invalid_interval_rejected(self):
        m = Monitor()
        with pytest.raises(ValueError):
            m.interval("x", 5.0, 4.0)

    def test_busy_time_sums_durations(self):
        m = Monitor()
        m.interval("exec", 0, 2, worker="a")
        m.interval("exec", 1, 4, worker="b")
        assert m.busy_time("exec") == pytest.approx(5.0)

    def test_busy_time_filter_by_tag(self):
        m = Monitor()
        m.interval("exec", 0, 2, worker="a")
        m.interval("exec", 0, 3, worker="b")
        assert m.busy_time("exec", worker="a") == pytest.approx(2.0)

    def test_union_merges_overlaps(self):
        m = Monitor()
        m.interval("t", 0, 4)
        m.interval("t", 2, 6)
        m.interval("t", 10, 11)
        assert m.union_time("t") == pytest.approx(7.0)

    def test_union_empty_zero(self):
        assert Monitor().union_time("nothing") == 0.0

    def test_union_identical_intervals(self):
        m = Monitor()
        m.interval("t", 1, 3)
        m.interval("t", 1, 3)
        assert m.union_time("t") == pytest.approx(2.0)

    def test_union_touching_intervals(self):
        m = Monitor()
        m.interval("t", 0, 2)
        m.interval("t", 2, 5)
        assert m.union_time("t") == pytest.approx(5.0)

    def test_intervals_for_key_isolation(self):
        m = Monitor()
        m.interval("a", 0, 1)
        m.interval("b", 0, 2)
        assert len(m.intervals_for("a")) == 1

    def test_union_zero_length_intervals(self):
        m = Monitor()
        m.interval("t", 3, 3)
        assert m.union_time("t") == 0.0
        # A zero-length interval inside a covered range adds nothing.
        m.interval("t", 0, 5)
        m.interval("t", 2, 2)
        assert m.union_time("t") == pytest.approx(5.0)

    def test_union_identical_starts_different_ends(self):
        m = Monitor()
        m.interval("t", 1, 2)
        m.interval("t", 1, 6)
        m.interval("t", 1, 4)
        assert m.union_time("t") == pytest.approx(5.0)

    def test_union_zero_length_touching_nonzero(self):
        m = Monitor()
        m.interval("t", 2, 2)
        m.interval("t", 2, 5)
        assert m.union_time("t") == pytest.approx(3.0)

    def test_index_matches_append_order_and_global_list(self):
        m = Monitor()
        m.interval("a", 0, 1, worker="w0")
        m.interval("b", 1, 2)
        m.interval("a", 2, 3, worker="w1")
        by_key = m.intervals_for("a")
        assert [i.start for i in by_key] == [0, 2]
        assert [i for i in m.intervals if i.key == "a"] == by_key
        assert m.intervals_for("a", worker="w1")[0].start == 2

    def test_intervals_for_returns_copy(self):
        m = Monitor()
        m.interval("a", 0, 1)
        listing = m.intervals_for("a")
        listing.clear()
        assert len(m.intervals_for("a")) == 1
