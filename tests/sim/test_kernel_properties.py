"""Property-based tests for the simulation kernel (hypothesis).

Invariants: virtual time is monotone, every scheduled timeout fires at
exactly its requested time, FIFO resources never exceed capacity, and
stores conserve items.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Resource, Store


@given(st.lists(st.floats(0, 1e5), min_size=1, max_size=40))
@settings(max_examples=60)
def test_timeouts_fire_at_requested_times(delays):
    env = Environment()
    observed = []

    def waiter(env, delay):
        yield env.timeout(delay)
        observed.append((delay, env.now))

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert len(observed) == len(delays)
    for requested, fired in observed:
        assert fired == requested


@given(st.lists(st.floats(0, 1000), min_size=1, max_size=40))
@settings(max_examples=60)
def test_time_is_monotone(delays):
    env = Environment()
    trace = []

    def waiter(env, delay):
        yield env.timeout(delay)
        trace.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert trace == sorted(trace)


@given(
    st.integers(1, 5),
    st.lists(st.floats(0.1, 10), min_size=1, max_size=25),
)
@settings(max_examples=40)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    res = Resource(env, capacity=capacity)
    in_use = [0]
    peak = [0]

    def user(env, hold):
        with res.request() as req:
            yield req
            in_use[0] += 1
            peak[0] = max(peak[0], in_use[0])
            yield env.timeout(hold)
            in_use[0] -= 1

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert peak[0] <= capacity
    assert in_use[0] == 0
    # Work conservation: everyone eventually ran.
    assert res.count == 0 and res.queue_length == 0


@given(st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=50)
def test_store_conserves_items_in_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(st.integers(1, 8), st.integers(1, 30))
@settings(max_examples=40)
def test_makespan_lower_bound_with_capacity(capacity, n_tasks):
    """n unit tasks on a k-wide resource take exactly ceil(n/k) time."""
    env = Environment()
    res = Resource(env, capacity=capacity)

    def task(env):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    for _ in range(n_tasks):
        env.process(task(env))
    env.run()
    expected = -(-n_tasks // capacity)  # ceil division
    assert env.now == float(expected)
