"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


class TestEnvironmentBasics:
    def test_time_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_initial_time(self):
        assert Environment(initial_time=10.0).now == 10.0

    def test_run_empty_heap_returns(self):
        env = Environment()
        env.run()
        assert env.now == 0.0

    def test_run_until_deadline_advances_clock(self):
        env = Environment()
        env.run(until=25.0)
        assert env.now == 25.0

    def test_run_until_past_deadline_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(SimulationError):
            env.run(until=5.0)

    def test_step_on_empty_heap_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")


class TestTimeout:
    def test_timeout_advances_time(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 5.0

    def test_timeout_value_delivered(self):
        env = Environment()

        def proc(env):
            value = yield env.timeout(1, value="hello")
            return value

        p = env.process(proc(env))
        env.run()
        assert p.value == "hello"

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_zero_delay_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield env.timeout(0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_timeouts_ordered(self):
        env = Environment()
        order = []

        def waiter(env, delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(waiter(env, 3, "c"))
        env.process(waiter(env, 1, "a"))
        env.process(waiter(env, 2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        env = Environment()
        order = []

        def waiter(env, tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in "abc":
            env.process(waiter(env, tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestEvent:
    def test_manual_succeed(self):
        env = Environment()
        ev = env.event()

        def trigger(env):
            yield env.timeout(2)
            ev.succeed("payload")

        def waiter(env):
            value = yield ev
            return (env.now, value)

        p = env.process(waiter(env))
        env.process(trigger(env))
        env.run()
        assert p.value == (2.0, "payload")

    def test_double_trigger_raises(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_failed_event_raises_in_process(self):
        env = Environment()
        ev = env.event()

        def waiter(env):
            try:
                yield ev
            except ValueError as exc:
                return str(exc)

        p = env.process(waiter(env))
        ev.fail(ValueError("boom"))
        env.run()
        assert p.value == "boom"

    def test_unhandled_failure_propagates_to_run(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("nobody caught me"))
        with pytest.raises(RuntimeError):
            env.run()

    def test_defused_failure_does_not_propagate(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("handled"))
        ev.defuse()
        env.run()  # no raise


class TestProcess:
    def test_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return 42

        p = env.process(proc(env))
        env.run()
        assert p.ok and p.value == 42

    def test_process_is_waitable(self):
        env = Environment()

        def child(env):
            yield env.timeout(3)
            return "child-done"

        def parent(env):
            result = yield env.process(child(env))
            return (env.now, result)

        p = env.process(parent(env))
        env.run()
        assert p.value == (3.0, "child-done")

    def test_exception_fails_process(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise KeyError("oops")

        def parent(env):
            try:
                yield env.process(bad(env))
            except KeyError:
                return "caught"

        p = env.process(parent(env))
        env.run()
        assert p.value == "caught"

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yield_non_event_fails(self):
        env = Environment()

        def bad(env):
            yield 42

        p = env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()
        assert not p.ok

    def test_is_alive_lifecycle(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_immediate_return(self):
        env = Environment()

        def instant(env):
            return "done"
            yield  # pragma: no cover

        p = env.process(instant(env))
        env.run()
        assert p.value == "done"

    def test_run_until_process(self):
        env = Environment()

        def proc(env):
            yield env.timeout(4)
            return "x"

        p = env.process(proc(env))
        result = env.run(until=p)
        assert result == "x"
        assert env.now == 4.0

    def test_active_process_tracking(self):
        env = Environment()
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        def killer(env, victim):
            yield env.timeout(5)
            victim.interrupt("reason")

        p = env.process(sleeper(env))
        env.process(killer(env, p))
        env.run()
        assert p.value == ("interrupted", "reason", 5.0)

    def test_interrupt_terminated_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_fails_process(self):
        env = Environment()

        def sleeper(env):
            yield env.timeout(100)

        def killer(env, victim):
            yield env.timeout(1)
            victim.interrupt("bang")

        p = env.process(sleeper(env))

        def parent(env):
            try:
                yield p
            except Interrupt:
                return "propagated"

        par = env.process(parent(env))
        env.process(killer(env, p))
        env.run()
        assert par.value == "propagated"

    def test_interrupted_process_can_continue(self):
        env = Environment()

        def resilient(env):
            while True:
                try:
                    yield env.timeout(100)
                    return "slept"
                except Interrupt:
                    yield env.timeout(1)
                    return ("recovered", env.now)

        def killer(env, victim):
            yield env.timeout(2)
            victim.interrupt()

        p = env.process(resilient(env))
        env.process(killer(env, p))
        env.run()
        assert p.value == ("recovered", 3.0)


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc(env):
            result = yield env.all_of([env.timeout(3, "a"), env.timeout(7, "b")])
            return (env.now, sorted(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (7.0, ["a", "b"])

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc(env):
            result = yield env.any_of([env.timeout(3, "fast"), env.timeout(7, "slow")])
            return (env.now, list(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (3.0, ["fast"])

    def test_all_of_empty_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield env.all_of([])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_all_of_propagates_failure(self):
        env = Environment()
        bad = env.event()

        def proc(env):
            try:
                yield env.all_of([env.timeout(5), bad])
            except ValueError:
                return "failed-fast"

        p = env.process(proc(env))
        bad.fail(ValueError("x"))
        env.run()
        assert p.value == "failed-fast"

    def test_mixed_env_condition_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            env1.all_of([env1.timeout(1), env2.timeout(1)])

    def test_all_of_already_triggered_events(self):
        env = Environment()
        t1 = env.timeout(1, "x")

        def proc(env):
            yield env.timeout(5)  # t1 long processed
            result = yield env.all_of([t1])
            return list(result.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == ["x"]
