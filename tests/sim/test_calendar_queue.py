"""Calendar-queue far band + batched dispatch: ordering is untouched.

The pure-Python kernel parks events ``>= _FAR_HORIZON`` in unsorted
calendar buckets and dispatches same-instant runs as batches, but the
observable contract is unchanged: events fire in exact
``(when, priority, seq)`` order, where ``seq`` is assigned at schedule
time.  These tests drive :class:`PyEnvironment` directly (the C
accelerator has no far band) and check the dispatch order against the
independently computed sort key.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.kernel import (
    NORMAL,
    URGENT,
    Interrupt,
    PyEnvironment,
    SimulationError,
    _FAR_HORIZON,
)


def _scheduled_event(env, label, order, prio, delay):
    """Schedule a bare pre-succeeded event recording its dispatch."""
    ev = env.event()
    ev._ok = True
    ev._value = None
    ev.callbacks.append(lambda _e: order.append(label))
    env._schedule(ev, prio, delay)
    return ev


def test_mixed_bands_dispatch_in_when_prio_seq_order():
    rng = random.Random(42)
    env = PyEnvironment()
    order: list[int] = []
    keys = []
    for seq in range(400):
        # Delays straddle the far horizon; duplicate instants and both
        # priorities are common by construction.
        delay = rng.choice(
            [
                rng.randrange(0, 8) * 1.0,
                float(rng.randrange(60, 70)),
                _FAR_HORIZON * rng.randrange(1, 5),
                _FAR_HORIZON * 50 + rng.randrange(0, 3),
            ]
        )
        prio = rng.choice([URGENT, NORMAL, NORMAL])
        _scheduled_event(env, seq, order, prio, delay)
        keys.append((delay, prio, seq))
    env.run()
    assert order == [seq for _, _, seq in sorted(keys)]
    assert not env._far and env._far_next == float("inf")


def test_same_instant_batch_preserves_priority_and_seq():
    env = PyEnvironment()
    order: list[str] = []
    for i in range(5):
        _scheduled_event(env, f"n{i}", order, NORMAL, 10.0)
    _scheduled_event(env, "u0", order, URGENT, 10.0)
    env.run()
    # URGENT sorts before every NORMAL at the same instant even though
    # it was scheduled last.
    assert order == ["u0", "n0", "n1", "n2", "n3", "n4"]


def test_urgent_scheduled_mid_batch_preempts_remainder():
    """A callback scheduling a same-instant URGENT event mid-batch must
    see it dispatched before the rest of the already-popped batch."""
    env = PyEnvironment()
    order: list[str] = []

    def first_fires(_e):
        order.append("first")
        _scheduled_event(env, "urgent-late", order, URGENT, 0.0)

    ev = env.event()
    ev._ok = True
    ev._value = None
    ev.callbacks.append(first_fires)
    env._schedule(ev, NORMAL, 5.0)
    for i in range(3):
        _scheduled_event(env, f"rest{i}", order, NORMAL, 5.0)
    env.run()
    assert order == ["first", "urgent-late", "rest0", "rest1", "rest2"]


def test_far_events_cross_bucket_boundaries_in_order():
    env = PyEnvironment()
    order: list[float] = []
    # Same bucket, reverse scheduling order: bucket lists are unsorted,
    # the merge into the heap must still sort them.
    for when in [3 * _FAR_HORIZON + off for off in (9.0, 1.0, 5.0)]:
        _scheduled_event(env, when, order, NORMAL, when)
    # An earlier bucket scheduled after a later one.
    _scheduled_event(env, 2 * _FAR_HORIZON, order, NORMAL, 2 * _FAR_HORIZON)
    env.run()
    assert order == sorted(order)


def test_peek_and_step_see_far_band():
    env = PyEnvironment()
    hits = []
    _scheduled_event(env, "far", hits, NORMAL, 1000.0)
    assert env.peek() == 1000.0
    env.step()
    assert env.now == 1000.0 and hits == ["far"]
    assert env.peek() == float("inf")


def test_run_until_event_crosses_far_band():
    env = PyEnvironment()

    def sleeper(env):
        yield env.timeout(10_000.0)
        return "woke"

    proc = env.process(sleeper(env))
    assert env.run(until=proc) == "woke"
    assert env.now == 10_000.0


def test_run_deadline_between_buckets_leaves_far_intact():
    env = PyEnvironment()
    order: list[str] = []
    _scheduled_event(env, "near", order, NORMAL, 1.0)
    _scheduled_event(env, "far", order, NORMAL, 10 * _FAR_HORIZON)
    env.run(until=5.0)
    assert order == ["near"] and env.now == 5.0
    env.run()
    assert order == ["near", "far"]


def test_timer_wheel_interrupt_from_far_sleep():
    """Interrupting a process parked in a far bucket delivers promptly
    and leaves the stale far entry harmless."""
    env = PyEnvironment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(5 * _FAR_HORIZON)
            log.append("overslept")
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))

    proc = env.process(sleeper(env))

    def waker(env):
        yield env.timeout(1.0)
        proc.interrupt("wake")

    env.process(waker(env))
    env.run()
    assert log == [("interrupted", 1.0, "wake")]


def test_negative_delay_still_rejected():
    env = PyEnvironment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)
