"""Kernel edge cases discovered during engine development."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Event


class TestConditionEdges:
    def test_any_of_with_already_processed_child(self):
        env = Environment()
        early = env.timeout(1, "early")

        def proc(env):
            yield env.timeout(5)  # 'early' has long been processed
            result = yield env.any_of([early, env.timeout(100, "never")])
            return (env.now, list(result.values()))

        p = env.process(proc(env))
        env.run(until=p)
        assert p.value == (5.0, ["early"])

    def test_any_of_empty_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield env.any_of([])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_nested_conditions(self):
        env = Environment()

        def proc(env):
            inner = env.all_of([env.timeout(2), env.timeout(3)])
            outer = yield env.any_of([inner, env.timeout(10)])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 3.0


class TestTriggerEdges:
    def test_trigger_from_untriggered_source_raises(self):
        """Mirroring an event that hasn't fired yet is a usage error and
        must say so, not blow up deep inside with a TypeError."""
        env = Environment()
        source = Event(env)
        mirror = Event(env)
        with pytest.raises(SimulationError, match="cannot mirror an untriggered event"):
            mirror.trigger(source)

    def test_trigger_mirrors_triggered_source(self):
        env = Environment()
        source = Event(env)
        source.succeed("payload")
        mirror = Event(env)
        mirror.trigger(source)
        env.run()
        assert mirror.ok and mirror.value == "payload"


class TestRunUntilEdges:
    def test_run_until_failed_event_raises(self):
        env = Environment()

        def failer(env):
            yield env.timeout(1)
            raise ValueError("proc failed")

        p = env.process(failer(env))
        with pytest.raises(ValueError):
            env.run(until=p)

    def test_run_until_already_processed_event(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)
            return "done"

        p = env.process(quick(env))
        env.run()
        assert env.run(until=p) == "done"  # returns instantly

    def test_run_until_unreachable_event_raises(self):
        env = Environment()
        orphan = Event(env)  # nobody will ever trigger this

        def quick(env):
            yield env.timeout(1)

        env.process(quick(env))
        with pytest.raises(SimulationError):
            env.run(until=orphan)


class TestInterruptEdges:
    def test_interrupt_process_waiting_on_condition(self):
        from repro.sim import Interrupt

        env = Environment()

        def waiter(env):
            try:
                yield env.all_of([env.timeout(50), env.timeout(60)])
            except Interrupt:
                return ("interrupted", env.now)

        def killer(env, victim):
            yield env.timeout(5)
            victim.interrupt()

        p = env.process(waiter(env))
        env.process(killer(env, p))
        env.run()
        assert p.value == ("interrupted", 5.0)

    def test_double_interrupt_delivers_once_then_again(self):
        from repro.sim import Interrupt

        env = Environment()
        hits = []

        def tough(env):
            for _ in range(2):
                try:
                    yield env.timeout(100)
                except Interrupt:
                    hits.append(env.now)
            return "survived-nothing"

        def killer(env, victim):
            yield env.timeout(1)
            victim.interrupt()
            yield env.timeout(1)
            victim.interrupt()

        p = env.process(tough(env))
        env.process(killer(env, p))
        env.run()
        assert hits == [1.0, 2.0]
