"""Unit tests for table rendering."""

import pytest

from repro.util.tables import Table, render_table


class TestTable:
    def test_add_row_validates_width(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_render_contains_cells(self):
        table = Table("Demo", ["name", "value"])
        table.add_row(["alpha", 1.5])
        table.add_row(["beta", 12000.0])
        text = render_table(table)
        assert "Demo" in text
        assert "alpha" in text
        assert "1.50" in text
        assert "12,000.0" in text  # thousands separator for big floats

    def test_notes_rendered(self):
        table = Table("T", ["x"])
        table.add_row([1])
        table.add_note("hello note")
        assert "hello note" in render_table(table)

    def test_alignment_consistent(self):
        table = Table("T", ["col"])
        table.add_row(["short"])
        table.add_row(["a-much-longer-cell"])
        lines = render_table(table).splitlines()
        widths = {len(l) for l in lines[2:4]}
        assert len(widths) == 1  # header and rule equal width

    def test_nan_rendering(self):
        table = Table("T", ["x"])
        table.add_row([float("nan")])
        assert "nan" in render_table(table)


class TestCsv:
    def test_basic_csv(self):
        table = Table("T", ["a", "b"])
        table.add_row([1, "x"])
        csv = table.to_csv()
        assert csv.splitlines() == ["a,b", "1.00,x"] or csv.splitlines() == ["a,b", "1,x"]

    def test_escapes_commas(self):
        table = Table("T", ["a"])
        table.add_row(["x,y"])
        assert '"x,y"' in table.to_csv()

    def test_escapes_quotes(self):
        table = Table("T", ["a"])
        table.add_row(['say "hi"'])
        assert '""hi""' in table.to_csv()
