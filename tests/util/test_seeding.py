"""Unit tests for deterministic RNG derivation."""

import numpy as np
from hypothesis import given, strategies as st

from repro.util.seeding import SeedSequenceFactory, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "failures") == derive_seed(7, "failures")

    def test_different_names_differ(self):
        assert derive_seed(7, "failures") != derive_seed(7, "tasks")

    def test_different_roots_differ(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    def test_path_components_matter(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")

    def test_63_bit_range(self):
        for seed in (0, 1, 2**62, 12345):
            value = derive_seed(seed, "k")
            assert 0 <= value < 2**63

    @given(st.integers(0, 2**31), st.text(max_size=20))
    def test_always_in_range(self, root, name):
        assert 0 <= derive_seed(root, name) < 2**63


class TestMakeRng:
    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen

    def test_seeded_reproducible(self):
        a = make_rng(5, "x").random(4)
        b = make_rng(5, "x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_fresh_stream(self):
        # Can't assert values; just check it works.
        assert make_rng(None).random() is not None


class TestSeedSequenceFactory:
    def test_independent_streams(self):
        factory = SeedSequenceFactory(42)
        a = factory.rng("one").random(8)
        b = factory.rng("two").random(8)
        assert not np.array_equal(a, b)

    def test_reproducible_across_instances(self):
        a = SeedSequenceFactory(42).rng("x").random(4)
        b = SeedSequenceFactory(42).rng("x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_seed_matches_derive(self):
        assert SeedSequenceFactory(9).seed("k") == derive_seed(9, "k")
