"""Unit tests for repro.util.stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    RunningStats,
    coefficient_of_variation,
    percentile,
    summarize,
)


class TestRunningStats:
    def test_empty_mean_is_nan(self):
        assert math.isnan(RunningStats().mean)

    def test_single_value(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.minimum == 5.0 == s.maximum
        assert math.isnan(s.variance)

    def test_known_sample(self):
        s = RunningStats()
        s.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert s.mean == pytest.approx(5.0)
        assert s.stdev == pytest.approx(2.138, abs=1e-3)

    def test_min_max_track(self):
        s = RunningStats()
        s.extend([3, -1, 10])
        assert s.minimum == -1
        assert s.maximum == 10

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_matches_direct_computation(self, values):
        s = RunningStats()
        s.extend(values)
        mean = sum(values) / len(values)
        assert s.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-4)


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_element(self):
        assert percentile([7.0], 95) == 7.0

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=30),
        st.floats(0, 100),
    )
    def test_within_bounds(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)


class TestSummarize:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.total == pytest.approx(10.0)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_single_value_zero_stdev(self):
        assert summarize([3.0]).stdev == 0.0


class TestCoefficientOfVariation:
    def test_uniform_sample_zero(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_degenerate_nan(self):
        assert math.isnan(coefficient_of_variation([1.0]))
        assert math.isnan(coefficient_of_variation([0.0, 0.0]))

    def test_known_value(self):
        cv = coefficient_of_variation([8, 12])
        assert cv == pytest.approx(2.828 / 10.0, abs=1e-3)
