"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    GB,
    KB,
    MB,
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_duration,
    format_rate,
    parse_size,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(42) == 42

    def test_float_truncates(self):
        assert parse_size(41.9) == 41

    def test_decimal_units(self):
        assert parse_size("7 MB") == 7 * MB
        assert parse_size("1KB") == KB
        assert parse_size("2 GB") == 2 * GB

    def test_binary_units(self):
        assert parse_size("1 KiB") == 1024
        assert parse_size("1MiB") == 1024**2

    def test_fractional(self):
        assert parse_size("1.5 MB") == 1_500_000

    def test_case_insensitive(self):
        assert parse_size("3 mb") == 3 * MB

    def test_bare_number_string(self):
        assert parse_size("123") == 123

    def test_shorthand_suffix(self):
        assert parse_size("5M") == 5 * MB

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_size("seven megabytes")

    def test_negative_not_matched(self):
        with pytest.raises(ValueError):
            parse_size("-5 MB")


class TestBitByteConversion:
    def test_round_trip(self):
        assert bits_to_bytes(bytes_to_bits(12345)) == 12345

    def test_byte_is_eight_bits(self):
        assert bytes_to_bits(1) == 8.0


class TestFormatting:
    def test_format_bytes_scales(self):
        assert format_bytes(7 * MB) == "7.00 MB"
        assert format_bytes(500) == "500 B"
        assert format_bytes(2.5 * GB) == "2.50 GB"

    def test_format_rate(self):
        assert format_rate(100_000_000) == "100.00 Mbit/s"
        assert format_rate(1_000) == "1.00 Kbit/s"

    def test_format_duration_seconds(self):
        assert format_duration(89.5) == "89.5s"

    def test_format_duration_minutes(self):
        assert format_duration(150) == "2m30.0s"

    def test_format_duration_hours(self):
        assert format_duration(61200) == "17h00m"

    def test_format_duration_negative(self):
        assert format_duration(-61200) == "-17h00m"
