"""Unit tests for BLOSUM62 scoring and sequence encoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.apps.blast.scoring import (
    AMINO_ACIDS,
    BLOSUM62,
    PROTEIN_ALPHABET,
    decode_sequence,
    encode_sequence,
    score_pair,
)
from repro.errors import ApplicationError


class TestMatrix:
    def test_shape_and_symmetry(self):
        assert BLOSUM62.shape == (24, 24)
        assert np.array_equal(BLOSUM62, BLOSUM62.T)

    def test_known_values(self):
        # Spot-check canonical entries of the NCBI matrix.
        def score(a, b):
            return BLOSUM62[PROTEIN_ALPHABET.index(a), PROTEIN_ALPHABET.index(b)]

        assert score("W", "W") == 11
        assert score("A", "A") == 4
        assert score("C", "C") == 9
        assert score("A", "R") == -1
        assert score("W", "A") == -3
        assert score("*", "*") == 1
        assert score("A", "*") == -4

    def test_diagonal_is_maximum_per_row(self):
        # For the 20 standard residues, identity is the best match.
        for ch in AMINO_ACIDS:
            i = PROTEIN_ALPHABET.index(ch)
            assert BLOSUM62[i, i] == BLOSUM62[i, :20].max()

    def test_expected_background_score_negative(self):
        # A substitution matrix must have negative expected score.
        sub = BLOSUM62[:20, :20].astype(float)
        assert sub.mean() < 0


class TestEncoding:
    def test_round_trip(self):
        seq = "ARNDCQEGHILKMFPSTWYV"
        assert decode_sequence(encode_sequence(seq)) == seq

    def test_lowercase_accepted(self):
        np.testing.assert_array_equal(encode_sequence("mkv"), encode_sequence("MKV"))

    def test_ambiguity_codes(self):
        encoded = encode_sequence("BZX*")
        assert decode_sequence(encoded) == "BZX*"

    def test_u_maps_to_x(self):
        assert decode_sequence(encode_sequence("U")) == "X"

    def test_invalid_characters_rejected(self):
        with pytest.raises(ApplicationError):
            encode_sequence("MK1V")

    def test_empty_sequence(self):
        assert encode_sequence("").size == 0


class TestScorePair:
    def test_identity_scores_positive(self):
        assert score_pair("WWW", "WWW") == 33

    def test_mismatch_lengths_rejected(self):
        with pytest.raises(ApplicationError):
            score_pair("MK", "MKV")

    def test_empty_pair_zero(self):
        assert score_pair("", "") == 0

    def test_accepts_preencoded(self):
        a = encode_sequence("MKV")
        assert score_pair(a, a) == score_pair("MKV", "MKV")

    @given(st.text(alphabet=AMINO_ACIDS, min_size=1, max_size=50))
    def test_self_score_is_row_maximum(self, seq):
        other = "".join(AMINO_ACIDS[(AMINO_ACIDS.index(c) + 1) % 20] for c in seq)
        assert score_pair(seq, seq) >= score_pair(seq, other)

    @given(
        st.text(alphabet=AMINO_ACIDS, min_size=1, max_size=50),
        st.text(alphabet=AMINO_ACIDS, min_size=1, max_size=50),
    )
    def test_symmetry(self, a, b):
        n = min(len(a), len(b))
        assert score_pair(a[:n], b[:n]) == score_pair(b[:n], a[:n])
