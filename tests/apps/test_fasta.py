"""Unit tests for FASTA I/O."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.apps.blast.fasta import (
    SequenceRecord,
    iter_fasta,
    parse_fasta,
    read_fasta,
    write_fasta,
)
from repro.apps.blast.scoring import AMINO_ACIDS
from repro.errors import ApplicationError


class TestParse:
    def test_single_record(self):
        records = parse_fasta(">seq1 a description\nACDEF\nGHIKL\n")
        assert len(records) == 1
        assert records[0].seq_id == "seq1"
        assert records[0].description == "a description"
        assert records[0].residues == "ACDEFGHIKL"

    def test_multiple_records(self):
        records = parse_fasta(">a\nMK\n>b\nWV\n")
        assert [r.seq_id for r in records] == ["a", "b"]

    def test_blank_lines_ignored(self):
        records = parse_fasta("\n>a\n\nMK\n\n")
        assert records[0].residues == "MK"

    def test_lowercase_uppercased(self):
        assert parse_fasta(">a\nmkv\n")[0].residues == "MKV"

    def test_residues_before_header_rejected(self):
        with pytest.raises(ApplicationError):
            parse_fasta("ACDEF\n>a\nMK\n")

    def test_empty_record_rejected(self):
        with pytest.raises(ApplicationError):
            parse_fasta(">a\n>b\nMK\n")

    def test_empty_header_rejected(self):
        with pytest.raises(ApplicationError):
            parse_fasta(">\nMK\n")

    def test_empty_input_gives_no_records(self):
        assert parse_fasta("") == []

    def test_no_description(self):
        record = parse_fasta(">just_id\nMK\n")[0]
        assert record.description == ""
        assert record.header == "just_id"


class TestWrite:
    def test_wrapping(self):
        record = SequenceRecord("a", "", "M" * 130)
        buf = io.StringIO()
        write_fasta([record], buf, width=60)
        lines = buf.getvalue().splitlines()
        assert lines[0] == ">a"
        assert [len(l) for l in lines[1:]] == [60, 60, 10]

    def test_invalid_width(self):
        with pytest.raises(ApplicationError):
            write_fasta([], io.StringIO(), width=0)

    def test_file_round_trip(self, tmp_path):
        records = [
            SequenceRecord("x", "desc one", "MKVW"),
            SequenceRecord("y", "", "ACDEFGHIKLMNPQRSTVWY"),
        ]
        path = str(tmp_path / "test.fa")
        write_fasta(records, path)
        back = read_fasta(path)
        assert back == records

    def test_read_missing_file(self):
        with pytest.raises(ApplicationError):
            read_fasta("/no/such.fa")


class TestIterFasta:
    def test_batching(self, tmp_path):
        records = [SequenceRecord(f"s{i}", "", "MKV") for i in range(5)]
        path = str(tmp_path / "b.fa")
        write_fasta(records, path)
        batches = list(iter_fasta(path, batch_size=2))
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_invalid_batch_size(self, tmp_path):
        path = str(tmp_path / "b.fa")
        write_fasta([SequenceRecord("a", "", "MK")], path)
        with pytest.raises(ApplicationError):
            list(iter_fasta(path, batch_size=0))


@given(
    st.lists(
        st.tuples(
            st.integers(0, 10_000),
            st.text(alphabet=AMINO_ACIDS, min_size=1, max_size=200),
        ),
        min_size=0,
        max_size=10,
        unique_by=lambda t: t[0],
    )
)
def test_fasta_round_trip_property(pairs):
    records = [SequenceRecord(f"id{i}", "", seq) for i, seq in pairs]
    buf = io.StringIO()
    write_fasta(records, buf, width=17)
    assert parse_fasta(buf.getvalue()) == records
