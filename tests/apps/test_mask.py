"""Tests for SEG-style low-complexity masking."""

import numpy as np
import pytest

from repro.apps.blast.mask import (
    SegParams,
    low_complexity_mask,
    mask_sequence,
    masked_fraction,
    window_entropy,
)
from repro.apps.blast.scoring import encode_sequence
from repro.errors import ApplicationError

COMPLEX = "MKVWACDEFGHILNPQRSTY"  # 20 distinct residues
LOW = "A" * 30


class TestWindowEntropy:
    def test_uniform_window_max_entropy(self):
        assert window_entropy(encode_sequence(COMPLEX)) == pytest.approx(
            np.log2(20), abs=1e-9
        )

    def test_homopolymer_zero_entropy(self):
        assert window_entropy(encode_sequence("AAAA")) == 0.0

    def test_empty_window(self):
        assert window_entropy(encode_sequence("")) == 0.0

    def test_two_letter_alphabet(self):
        assert window_entropy(encode_sequence("ABABABAB".replace("B", "R"))) == pytest.approx(1.0)


class TestSegParams:
    def test_validation(self):
        with pytest.raises(ApplicationError):
            SegParams(window=1)
        with pytest.raises(ApplicationError):
            SegParams(trigger=3.0, extend=2.0)


class TestMasking:
    def test_homopolymer_fully_masked(self):
        mask = low_complexity_mask(LOW)
        assert mask.all()

    def test_complex_sequence_unmasked(self):
        mask = low_complexity_mask(COMPLEX * 3)
        assert not mask.any()

    def test_short_sequence_unmasked(self):
        assert not low_complexity_mask("MKV").any()

    def test_embedded_run_masked_flanks_kept(self):
        seq = COMPLEX + LOW + COMPLEX
        masked = mask_sequence(seq)
        assert masked.startswith(COMPLEX[:10])
        assert masked.endswith(COMPLEX[-10:])
        assert "X" * 20 in masked

    def test_mask_preserves_length(self):
        seq = COMPLEX + LOW
        assert len(mask_sequence(seq)) == len(seq)

    def test_masked_fraction(self):
        assert masked_fraction(LOW) == 1.0
        assert masked_fraction(COMPLEX * 2) == 0.0
        assert masked_fraction("") == 0.0

    def test_masked_residues_produce_no_seeds(self):
        from repro.apps.blast.seed import neighborhood_words

        masked = mask_sequence(LOW)
        words = neighborhood_words(encode_sequence(masked), k=3, threshold=11)
        assert words == []  # XXX scores far below the threshold

    def test_masking_reduces_decoy_seeds(self):
        from repro.apps.blast.seed import KmerIndex, find_seed_hits

        index = KmerIndex(k=3)
        index.add_sequence(encode_sequence("A" * 60))
        query = COMPLEX + "A" * 30
        raw = find_seed_hits(encode_sequence(query), index, threshold=11)
        masked = find_seed_hits(
            encode_sequence(mask_sequence(query)), index, threshold=11
        )
        assert len(masked) < len(raw)
