"""Unit tests for the imaging application (generation + metrics + pipeline)."""

import math
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.imaging.generate import BeamlineImageConfig, generate_image, write_image_dataset
from repro.apps.imaging.pipeline import compare_image_files, compare_images
from repro.apps.imaging.similarity import (
    histogram_intersection,
    mean_squared_error,
    normalized_cross_correlation,
    psnr,
    similarity_report,
    ssim_global,
)
from repro.errors import ApplicationError

CFG = BeamlineImageConfig(size=64)


class TestGeneration:
    def test_shape_and_dtype(self):
        image = generate_image(CFG, sample_seed=0)
        assert image.shape == (64, 64)
        assert image.dtype == np.float32

    def test_deterministic_per_seed_and_frame(self):
        a = generate_image(CFG, sample_seed=1, frame=0)
        b = generate_image(CFG, sample_seed=1, frame=0)
        np.testing.assert_array_equal(a, b)

    def test_frames_of_same_sample_similar(self):
        a = generate_image(CFG, sample_seed=1, frame=0)
        b = generate_image(CFG, sample_seed=1, frame=1)
        c = generate_image(CFG, sample_seed=2, frame=0)
        assert normalized_cross_correlation(a, b) > normalized_cross_correlation(a, c)

    def test_nonnegative_counts(self):
        image = generate_image(CFG, sample_seed=3)
        assert (image >= 0).all()

    def test_config_validation(self):
        with pytest.raises(ApplicationError):
            BeamlineImageConfig(size=4)
        with pytest.raises(ApplicationError):
            BeamlineImageConfig(num_rings=-1)

    def test_write_dataset(self, tmp_path):
        paths = write_image_dataset(str(tmp_path), 4, config=CFG, seed=7)
        assert len(paths) == 4
        assert all(os.path.isfile(p) for p in paths)
        assert np.load(paths[0]).shape == (64, 64)


class TestMetrics:
    @pytest.fixture
    def pair(self):
        a = generate_image(CFG, sample_seed=5, frame=0)
        b = generate_image(CFG, sample_seed=5, frame=1)
        return a, b

    def test_ncc_self_is_one(self, pair):
        a, _ = pair
        assert normalized_cross_correlation(a, a) == pytest.approx(1.0)

    def test_ncc_range(self, pair):
        a, b = pair
        assert -1.0 <= normalized_cross_correlation(a, b) <= 1.0

    def test_ncc_constant_images(self):
        a = np.full((8, 8), 3.0)
        assert normalized_cross_correlation(a, a.copy()) == 1.0
        assert normalized_cross_correlation(a, a + 1) == 0.0

    def test_mse_zero_for_identical(self, pair):
        a, _ = pair
        assert mean_squared_error(a, a) == 0.0

    def test_psnr_infinite_for_identical(self, pair):
        a, _ = pair
        assert math.isinf(psnr(a, a))

    def test_psnr_decreases_with_noise(self, pair):
        a, _ = pair
        rng = np.random.default_rng(0)
        small = a + rng.normal(0, 1, a.shape)
        big = a + rng.normal(0, 50, a.shape)
        assert psnr(a, small) > psnr(a, big)

    def test_histogram_intersection_range(self, pair):
        a, b = pair
        value = histogram_intersection(a, b)
        assert 0.0 <= value <= 1.0
        assert histogram_intersection(a, a) == pytest.approx(1.0)

    def test_histogram_bins_validated(self, pair):
        a, b = pair
        with pytest.raises(ApplicationError):
            histogram_intersection(a, b, bins=1)

    def test_ssim_self_is_one(self, pair):
        a, _ = pair
        assert ssim_global(a, a) == pytest.approx(1.0, abs=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ApplicationError):
            mean_squared_error(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_non_2d_rejected(self):
        with pytest.raises(ApplicationError):
            normalized_cross_correlation(np.zeros(4), np.zeros(4))

    def test_report_has_all_metrics(self, pair):
        report = similarity_report(*pair)
        assert set(report) == {"ncc", "mse", "psnr", "hist_intersection", "ssim"}

    @given(
        arrays(np.float64, (6, 6), elements=st.floats(0, 100)),
        arrays(np.float64, (6, 6), elements=st.floats(0, 100)),
    )
    @settings(max_examples=40)
    def test_ncc_symmetric_property(self, a, b):
        assert normalized_cross_correlation(a, b) == pytest.approx(
            normalized_cross_correlation(b, a), abs=1e-9
        )


class TestPipeline:
    def test_same_sample_judged_similar(self):
        a = generate_image(CFG, sample_seed=9, frame=0)
        b = generate_image(CFG, sample_seed=9, frame=1)
        result = compare_images(a, b)
        assert result.similar

    def test_different_samples_judged_different(self):
        a = generate_image(CFG, sample_seed=9, frame=0)
        b = generate_image(CFG, sample_seed=10, frame=0)
        assert not compare_images(a, b).similar

    def test_file_comparison(self, tmp_path):
        paths = write_image_dataset(str(tmp_path), 2, config=CFG, frames_per_sample=2)
        result = compare_image_files(paths[0], paths[1])
        assert result.similar
        assert result.file_a == os.path.basename(paths[0])

    def test_missing_file_rejected(self, tmp_path):
        paths = write_image_dataset(str(tmp_path), 1, config=CFG)
        with pytest.raises(ApplicationError):
            compare_image_files(paths[0], str(tmp_path / "ghost.npy"))

    def test_result_json_round_trips(self):
        import json

        a = generate_image(CFG, sample_seed=1, frame=0)
        result = compare_images(a, a)
        decoded = json.loads(result.to_json())
        assert decoded["similar"] is True
        assert decoded["ncc"] == pytest.approx(1.0)
