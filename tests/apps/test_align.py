"""Tests for Smith–Waterman with traceback and BLAST-style formatting."""

import pytest

from repro.apps.blast.align import smith_waterman
from repro.apps.blast.fasta import SequenceRecord
from repro.apps.blast.generate import synthetic_database
from repro.apps.blast.report import tabular_report, trace_hit
from repro.apps.blast.scoring import score_pair
from repro.apps.blast.search import BlastDatabase, blast_search
from repro.errors import ApplicationError


class TestSmithWaterman:
    def test_identity_alignment(self):
        seq = "MKVWACDEFGHIKL"
        result = smith_waterman(seq, seq)
        assert result.aligned_query == seq
        assert result.aligned_subject == seq
        assert result.identity_fraction == 1.0
        assert result.score == score_pair(seq, seq)
        assert result.gaps == 0

    def test_local_alignment_trims_junk(self):
        core = "WCWHWMWFWYW"
        query = "AAAA" + core + "GGGG"
        subject = "PPPP" + core + "SSSS"
        result = smith_waterman(query, subject)
        assert core in result.aligned_query
        assert result.query_start >= 3
        assert result.identity_fraction > 0.9

    def test_insertion_recovered_as_gap(self):
        left = "WCWHWMWFW"
        right = "YWHWCWPWW"
        query = left + right
        subject = left + "NN" + right
        result = smith_waterman(query, subject)
        assert "-" in result.aligned_query  # gap opposite the insertion
        assert "-" not in result.aligned_subject
        assert result.gaps == 2
        # Score: full match minus gap open/extend (11 + 1 + 1).
        assert result.score == score_pair(query, query) - 13

    def test_aligned_strings_equal_length(self):
        result = smith_waterman("MKVWACDEF", "MKVWAGHCDEF")
        assert len(result.aligned_query) == len(result.aligned_subject)

    def test_no_similarity_returns_empty(self):
        result = smith_waterman("GGGG", "PPPP")  # G/P scores negative
        assert result.score == 0
        assert result.length == 0

    def test_empty_inputs(self):
        assert smith_waterman("", "MKV").score == 0

    def test_negative_penalties_rejected(self):
        with pytest.raises(ApplicationError):
            smith_waterman("MK", "MK", gap_open=-1)

    def test_coordinates_match_aligned_content(self):
        query = "AAAAWCWHWMWFW"
        subject = "WCWHWMWFWPPPP"
        result = smith_waterman(query, subject)
        q_span = query[result.query_start : result.query_end]
        s_span = subject[result.subject_start : result.subject_end]
        assert q_span == result.aligned_query.replace("-", "")
        assert s_span == result.aligned_subject.replace("-", "")

    def test_midline_marks_identities_and_positives(self):
        result = smith_waterman("MKVW", "MKIW")  # V/I scores +3
        assert result.midline[0] == "M"
        assert result.midline[2] == "+"

    def test_pretty_renders_blocks(self):
        seq = "MKVWACDEFGHIKLMNPQRSTVWY" * 4
        result = smith_waterman(seq, seq)
        text = result.pretty(width=40)
        assert "Score =" in text
        assert "Query      1" in text
        assert text.count("Sbjct") == 3  # 96 residues / 40 per block


class TestReportFormatting:
    @pytest.fixture(scope="class")
    def search_setup(self):
        records = synthetic_database(8, mean_length=120, seed=3)
        database = BlastDatabase(records)
        query = SequenceRecord("q1", "", records[2].residues[10:90])
        hits = blast_search(query, database)
        return query, hits, database

    def test_trace_hit_full_identity_for_exact_fragment(self, search_setup):
        query, hits, database = search_setup
        assert hits
        traced = trace_hit(query, hits[0], database)
        assert traced.identity_fraction == 1.0

    def test_tabular_has_12_fields(self, search_setup):
        query, hits, database = search_setup
        table = tabular_report(query, hits, database)
        rows = [r for r in table.splitlines() if r]
        assert rows
        assert all(len(r.split("\t")) == 12 for r in rows)

    def test_tabular_header_option(self, search_setup):
        query, hits, database = search_setup
        table = tabular_report(query, hits, database, header=True)
        assert table.startswith("#qseqid\t")

    def test_top_hit_row_content(self, search_setup):
        query, hits, database = search_setup
        row = tabular_report(query, hits, database).splitlines()[0].split("\t")
        assert row[0] == "q1"
        assert row[1] == hits[0].subject_id
        assert float(row[2]) == pytest.approx(100.0)  # exact fragment
        assert int(row[4]) == 0  # no mismatches
        assert int(row[5]) == 0  # no gap opens
