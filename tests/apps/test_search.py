"""Unit tests for the BLAST search driver."""

import pytest

from repro.apps.blast.fasta import SequenceRecord
from repro.apps.blast.generate import synthetic_database, synthetic_queries
from repro.apps.blast.search import (
    BlastDatabase,
    BlastParams,
    blast_search,
    blast_search_many,
)
from repro.errors import ApplicationError


@pytest.fixture(scope="module")
def database():
    return BlastDatabase(synthetic_database(15, mean_length=120, seed=2))


class TestDatabase:
    def test_empty_database_rejected(self):
        with pytest.raises(ApplicationError):
            BlastDatabase([])

    def test_residue_count(self, database):
        assert database.total_residues == sum(len(r) for r in database.records)
        assert len(database) == 15


class TestSearch:
    def test_exact_subsequence_is_top_hit(self, database):
        source = database.records[4]
        fragment = source.residues[10:70]
        query = SequenceRecord("frag", "", fragment)
        hits = blast_search(query, database)
        assert hits
        assert hits[0].subject_id == source.seq_id
        assert hits[0].e_value < 1e-10

    def test_hits_sorted_by_evalue(self, database):
        query = SequenceRecord("q", "", database.records[0].residues[:80])
        hits = blast_search(query, database)
        e_values = [h.e_value for h in hits]
        assert e_values == sorted(e_values)

    def test_query_shorter_than_k_no_hits(self, database):
        assert blast_search(SequenceRecord("tiny", "", "MK"), database) == []

    def test_bit_scores_monotone_in_score(self, database):
        query = SequenceRecord("q", "", database.records[1].residues[:90])
        hits = blast_search(query, database)
        for a, b in zip(hits, hits[1:]):
            if a.score > b.score:
                assert a.bit_score > b.bit_score

    def test_max_hits_respected(self, database):
        params = BlastParams(max_hits=2, e_value_cutoff=1e6)
        query = SequenceRecord("q", "", database.records[0].residues[:60])
        hits = blast_search(query, database, params)
        assert len(hits) <= 2

    def test_evalue_cutoff_filters(self, database):
        strict = BlastParams(e_value_cutoff=1e-20)
        loose = BlastParams(e_value_cutoff=10.0)
        query = SequenceRecord("q", "", database.records[2].residues[:70])
        assert len(blast_search(query, database, strict)) <= len(
            blast_search(query, database, loose)
        )

    def test_one_hit_per_subject(self, database):
        query = SequenceRecord("q", "", database.records[3].residues)
        hits = blast_search(query, database)
        subjects = [h.subject_id for h in hits]
        assert len(subjects) == len(set(subjects))

    def test_search_many(self, database):
        queries = [
            SequenceRecord("a", "", database.records[0].residues[:50]),
            SequenceRecord("b", "", database.records[1].residues[:50]),
        ]
        results = blast_search_many(queries, database)
        assert set(results) == {"a", "b"}


class TestGenerators:
    def test_database_deterministic(self):
        a = synthetic_database(5, seed=9)
        b = synthetic_database(5, seed=9)
        assert [r.residues for r in a] == [r.residues for r in b]

    def test_queries_mix_homologs_and_decoys(self):
        db = synthetic_database(10, seed=0)
        queries = synthetic_queries(db, 40, homolog_fraction=0.5, seed=1)
        kinds = {q.description.split()[-1] for q in queries}
        assert kinds == {"homolog", "decoy"}

    def test_homolog_fraction_bounds(self):
        db = synthetic_database(3, seed=0)
        with pytest.raises(ApplicationError):
            synthetic_queries(db, 5, homolog_fraction=1.5)

    def test_invalid_database_size(self):
        with pytest.raises(ApplicationError):
            synthetic_database(0)

    def test_homologs_actually_hit(self):
        db_records = synthetic_database(8, mean_length=150, seed=4)
        database = BlastDatabase(db_records)
        queries = synthetic_queries(db_records, 6, homolog_fraction=1.0, seed=5)
        hit_rates = [
            1 if blast_search(q, database) else 0 for q in queries
        ]
        assert sum(hit_rates) >= len(queries) // 2  # most homologs found
