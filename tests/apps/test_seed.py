"""Unit tests for k-mer indexing and neighbourhood expansion."""

import numpy as np
import pytest

from repro.apps.blast.scoring import encode_sequence, score_pair
from repro.apps.blast.seed import (
    KmerIndex,
    _word_to_code,
    find_seed_hits,
    neighborhood_words,
)
from repro.errors import ApplicationError


class TestKmerIndex:
    def test_k_validation(self):
        with pytest.raises(ApplicationError):
            KmerIndex(k=0)
        with pytest.raises(ApplicationError):
            KmerIndex(k=6)

    def test_positions_recorded(self):
        index = KmerIndex(k=3)
        seq = encode_sequence("MKVMKV")
        index.add_sequence(seq)
        code = _word_to_code(encode_sequence("MKV"), 3)
        assert list(index.lookup(code)) == [(0, 0), (0, 3)]

    def test_sequence_ids_increment(self):
        index = KmerIndex(k=3)
        assert index.add_sequence(encode_sequence("MKVW")) == 0
        assert index.add_sequence(encode_sequence("ACDE")) == 1
        assert index.num_sequences == 2
        assert index.total_residues == 8

    def test_short_sequence_contributes_nothing(self):
        index = KmerIndex(k=3)
        index.add_sequence(encode_sequence("MK"))
        assert len(index) == 0

    def test_unknown_word_empty(self):
        index = KmerIndex(k=3)
        assert index.lookup(123456) == ()


class TestNeighborhood:
    def test_exact_word_always_included_for_high_scoring_kmers(self):
        # WWW scores 33 against itself, far above T=11.
        query = encode_sequence("WWW")
        words = neighborhood_words(query, k=3, threshold=11)
        codes = {code for _off, code in words}
        assert _word_to_code(query, 3) in codes

    def test_all_neighbours_meet_threshold(self):
        query = encode_sequence("MKVW")
        for offset, code in neighborhood_words(query, k=3, threshold=12):
            # Decode the word back to indices and verify the score.
            word = []
            c = code
            for _ in range(3):
                word.append(c % 24)
                c //= 24
            word = np.array(word[::-1], dtype=np.uint8)
            kmer = query[offset : offset + 3]
            assert score_pair(kmer, word) >= 12

    def test_higher_threshold_smaller_neighbourhood(self):
        query = encode_sequence("MKVWAC")
        low = neighborhood_words(query, threshold=10)
        high = neighborhood_words(query, threshold=14)
        assert len(high) <= len(low)

    def test_query_shorter_than_k(self):
        assert neighborhood_words(encode_sequence("MK"), k=3) == []

    def test_offsets_cover_query(self):
        query = encode_sequence("W" * 10)
        offsets = {off for off, _ in neighborhood_words(query, threshold=30)}
        assert offsets == set(range(8))


class TestSeedHits:
    def test_hits_found_for_identical_sequence(self):
        index = KmerIndex(k=3)
        subject = encode_sequence("MKVWACDEFG")
        index.add_sequence(subject)
        hits = find_seed_hits(subject, index, threshold=11)
        # Identity hits on the main diagonal must be present.
        diagonal_hits = [(q, s) for q, _sid, s in hits if q == s]
        assert len(diagonal_hits) >= 1

    def test_no_hits_on_empty_index(self):
        index = KmerIndex(k=3)
        assert find_seed_hits(encode_sequence("MKVW"), index) == []

    def test_hits_reference_correct_sequence(self):
        index = KmerIndex(k=3)
        index.add_sequence(encode_sequence("AAAAAAA"))
        target_id = index.add_sequence(encode_sequence("WWWWWWW"))
        hits = find_seed_hits(encode_sequence("WWW"), index, threshold=15)
        assert hits
        assert all(sid == target_id for _q, sid, _s in hits)
