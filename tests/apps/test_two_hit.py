"""Tests for the two-hit seeding heuristic (gapped-BLAST refinement)."""

import pytest

from repro.apps.blast.fasta import SequenceRecord
from repro.apps.blast.generate import synthetic_database, synthetic_queries
from repro.apps.blast.search import BlastDatabase, BlastParams, blast_search


@pytest.fixture(scope="module")
def database():
    return BlastDatabase(synthetic_database(12, mean_length=150, seed=6))


class TestTwoHit:
    def test_two_hit_prunes_extensions(self, database):
        # A decoy query produces lots of scattered single hits; two-hit
        # mode must attempt far fewer extensions.
        decoy = synthetic_queries([], 1, homolog_fraction=0.0, mean_length=200, seed=8)[0]
        one_hit_stats: dict = {}
        two_hit_stats: dict = {}
        blast_search(decoy, database, BlastParams(two_hit=False), stats=one_hit_stats)
        blast_search(decoy, database, BlastParams(two_hit=True), stats=two_hit_stats)
        assert two_hit_stats["extensions"] < one_hit_stats["extensions"]

    def test_homologs_still_found_with_two_hit(self, database):
        source = database.records[3]
        query = SequenceRecord("hom", "", source.residues[5:95])
        hits = blast_search(query, database, BlastParams(two_hit=True))
        assert hits
        assert hits[0].subject_id == source.seq_id

    def test_stats_counters_present(self, database):
        query = SequenceRecord("q", "", database.records[0].residues[:60])
        stats: dict = {}
        blast_search(query, database, stats=stats)
        assert set(stats) == {"seeds", "extensions", "gapped_passes"}
        assert stats["seeds"] >= stats["extensions"] >= stats["gapped_passes"] >= 0

    def test_two_hit_no_worse_ranking_for_strong_matches(self, database):
        source = database.records[7]
        query = SequenceRecord("strong", "", source.residues)
        one = blast_search(query, database, BlastParams(two_hit=False))
        two = blast_search(query, database, BlastParams(two_hit=True))
        assert one and two
        assert one[0].subject_id == two[0].subject_id

    def test_window_controls_pairing(self, database):
        # A degenerate 1-residue window can never pair hits k apart
        # unless they are exactly k apart; a huge window pairs freely.
        source = database.records[1]
        query = SequenceRecord("w", "", source.residues[:80])
        tight: dict = {}
        loose: dict = {}
        blast_search(
            query, database, BlastParams(two_hit=True, two_hit_window=3), stats=tight
        )
        blast_search(
            query, database, BlastParams(two_hit=True, two_hit_window=1000), stats=loose
        )
        assert tight["extensions"] <= loose["extensions"]
