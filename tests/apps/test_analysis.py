"""Tests for radial-profile analysis against the generator's ground truth."""

import numpy as np
import pytest

from repro.apps.imaging.analysis import (
    RadialProfile,
    find_rings,
    radial_profile,
    ring_similarity,
)
from repro.apps.imaging.generate import BeamlineImageConfig, generate_image
from repro.errors import ApplicationError


def synthetic_ring_image(size=128, radii=(20.0, 45.0), amplitude=100.0, width=2.0):
    """Noise-free frame with known ring radii."""
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    c = (size - 1) / 2.0
    r = np.hypot(xx - c, yy - c)
    image = np.full((size, size), 5.0)
    for r0 in radii:
        image += amplitude * np.exp(-0.5 * ((r - r0) / width) ** 2)
    return image


class TestRadialProfile:
    def test_needs_2d(self):
        with pytest.raises(ApplicationError):
            radial_profile(np.zeros(16))

    def test_flat_image_flat_profile(self):
        profile = radial_profile(np.full((64, 64), 7.0))
        populated = profile.intensity[profile.intensity > 0]
        assert np.allclose(populated, 7.0)

    def test_profile_peaks_at_ring_radii(self):
        image = synthetic_ring_image(radii=(30.0,))
        profile = radial_profile(image)
        peak_radius = profile.radii[int(np.argmax(profile.intensity))]
        assert peak_radius == pytest.approx(30.0, abs=2.0)

    def test_bins_parameter(self):
        profile = radial_profile(np.ones((32, 32)), num_bins=10)
        assert profile.radii.size == 10

    def test_too_few_bins_rejected(self):
        with pytest.raises(ApplicationError):
            radial_profile(np.ones((32, 32)), num_bins=1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ApplicationError):
            RadialProfile(np.zeros(3), np.zeros(4))


class TestFindRings:
    def test_recovers_known_radii(self):
        image = synthetic_ring_image(radii=(20.0, 45.0))
        rings = find_rings(radial_profile(image), min_prominence=0.2)
        assert len(rings) == 2
        assert rings[0] == pytest.approx(20.0, abs=2.0)
        assert rings[1] == pytest.approx(45.0, abs=2.0)

    def test_flat_profile_no_rings(self):
        assert find_rings(radial_profile(np.full((64, 64), 3.0))) == []

    def test_separation_suppresses_twin_peaks(self):
        image = synthetic_ring_image(radii=(30.0, 32.0))
        rings = find_rings(
            radial_profile(image), min_prominence=0.1, min_separation=6.0
        )
        assert len(rings) == 1

    def test_prominence_validation(self):
        profile = radial_profile(np.ones((32, 32)))
        with pytest.raises(ApplicationError):
            find_rings(profile, min_prominence=0.0)

    def test_generator_rings_are_recoverable(self):
        # The synthetic beamline generator's rings must be findable —
        # ground-truth coupling between generator and analysis.
        config = BeamlineImageConfig(size=256, num_peaks=0, shot_noise=False)
        image = generate_image(config, sample_seed=5)
        rings = find_rings(radial_profile(image), min_prominence=0.15)
        assert len(rings) >= config.num_rings // 2  # most rings recovered


class TestRingSimilarity:
    def test_identical_ring_systems(self):
        assert ring_similarity([10.0, 20.0], [10.0, 20.0]) == 1.0

    def test_tolerant_matching(self):
        assert ring_similarity([10.0, 20.0], [12.0, 18.5], tolerance=5.0) == 1.0

    def test_disjoint_systems(self):
        assert ring_similarity([10.0], [50.0], tolerance=5.0) == 0.0

    def test_partial_overlap(self):
        assert ring_similarity([10.0, 30.0], [10.0, 80.0], tolerance=2.0) == 0.5

    def test_empty_cases(self):
        assert ring_similarity([], []) == 1.0
        assert ring_similarity([10.0], []) == 0.0

    def test_each_ring_matched_once(self):
        # One ring in A cannot consume both rings in B.
        assert ring_similarity([10.0, 11.0], [10.5], tolerance=5.0) == 0.5

    def test_same_sample_frames_share_rings(self):
        config = BeamlineImageConfig(size=128, shot_noise=False)
        a = generate_image(config, sample_seed=3, frame=0)
        b = generate_image(config, sample_seed=3, frame=1)
        c = generate_image(config, sample_seed=4, frame=0)
        rings = lambda img: find_rings(radial_profile(img), min_prominence=0.15)
        same = ring_similarity(rings(a), rings(b))
        different = ring_similarity(rings(a), rings(c))
        assert same >= different
