"""Unit tests for seed extension (ungapped X-drop + banded gapped)."""

import pytest

from repro.apps.blast.extend import AlignmentResult, banded_gapped_extend, ungapped_extend
from repro.apps.blast.scoring import encode_sequence, score_pair
from repro.errors import ApplicationError


class TestUngappedExtend:
    def test_perfect_match_extends_fully(self):
        seq = encode_sequence("MKVWACDEFGHIKLMN")
        hsp = ungapped_extend(seq, seq, 5, 5, k=3)
        assert hsp.query_start == 0
        assert hsp.query_end == seq.size
        assert hsp.score == score_pair(seq, seq)

    def test_seed_bounds_validated(self):
        seq = encode_sequence("MKVW")
        with pytest.raises(ApplicationError):
            ungapped_extend(seq, seq, 3, 0, k=3)

    def test_extension_stops_at_mismatch_region(self):
        # Identical core, garbage tails: W-run against A-run.
        query = encode_sequence("AAAA" + "WWWWWW" + "AAAA")
        subject = encode_sequence("PPPP" + "WWWWWW" + "PPPP")
        hsp = ungapped_extend(query, subject, 4, 4, k=3, x_drop=5)
        assert hsp.query_start >= 3
        assert hsp.query_end <= 11
        assert hsp.score >= score_pair("WWW", "WWW")

    def test_result_spans_consistent(self):
        query = encode_sequence("MKVWACDEFG")
        subject = encode_sequence("MKVWACDEFG")
        hsp = ungapped_extend(query, subject, 2, 2, k=3)
        assert hsp.query_span == hsp.subject_span  # ungapped: equal spans
        assert not hsp.gapped

    def test_offset_diagonal(self):
        # Subject has a 2-residue prefix; seed at (0, 2).
        query = encode_sequence("WWWWW")
        subject = encode_sequence("AAWWWWW")
        hsp = ungapped_extend(query, subject, 0, 2, k=3)
        assert hsp.subject_start - hsp.query_start == 2


class TestBandedGappedExtend:
    def test_never_worse_than_ungapped(self):
        query = encode_sequence("MKVWACDEFGHIKL")
        subject = encode_sequence("MKVWACDEFGHIKL")
        hsp = ungapped_extend(query, subject, 4, 4, k=3)
        gapped = banded_gapped_extend(query, subject, hsp)
        assert gapped.score >= hsp.score

    def test_gap_recovers_split_alignment(self):
        # Subject = query with a 2-residue insertion in the middle; an
        # ungapped extension cannot bridge it, the gapped one can.
        left = "WCWHWMWFW"
        right = "YWHWCWPWW"
        query = encode_sequence(left + right)
        subject = encode_sequence(left + "AA" + right)
        hsp = ungapped_extend(query, subject, 0, 0, k=3)
        gapped = banded_gapped_extend(query, subject, hsp, band=6)
        ungapped_best = max(
            score_pair(left, left), score_pair(right, right)
        )
        assert gapped.score > ungapped_best
        assert gapped.gapped

    def test_band_validation(self):
        seq = encode_sequence("MKVW")
        hsp = AlignmentResult(10, 0, 3, 0, 3)
        with pytest.raises(ApplicationError):
            banded_gapped_extend(seq, seq, hsp, band=0)

    def test_score_bounded_by_perfect_self_alignment(self):
        query = encode_sequence("MKVWACDEFGHIKL")
        hsp = ungapped_extend(query, query, 0, 0, k=3)
        gapped = banded_gapped_extend(query, query, hsp)
        assert gapped.score <= score_pair(query, query)

    def test_empty_window_returns_input(self):
        query = encode_sequence("MKV")
        subject = encode_sequence("MKV")
        hsp = AlignmentResult(5, 0, 3, 0, 3)
        result = banded_gapped_extend(query, subject, hsp, window=0)
        assert result.score >= 5
