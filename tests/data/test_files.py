"""Unit tests for the file/dataset model."""


import pytest

from repro.data.files import DataFile, Dataset, FileCatalog, synthetic_dataset
from repro.errors import StorageError


class TestDataFile:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DataFile("x", -1)

    def test_str_includes_size(self):
        assert "7.00 MB" in str(DataFile("a", 7_000_000))

    def test_ordering_by_name(self):
        assert DataFile("a", 5) < DataFile("b", 1)


class TestDataset:
    def test_duplicate_names_rejected(self):
        ds = Dataset("d", [DataFile("a", 1)])
        with pytest.raises(StorageError):
            ds.add(DataFile("a", 2))

    def test_total_size(self):
        ds = Dataset("d", [DataFile("a", 10), DataFile("b", 20)])
        assert ds.total_size == 30

    def test_order_preserved(self):
        ds = Dataset("d", [DataFile("z", 1), DataFile("a", 1)])
        assert [f.name for f in ds] == ["z", "a"]

    def test_sorted_by_name(self):
        ds = Dataset("d", [DataFile("z", 1), DataFile("a", 1)])
        assert [f.name for f in ds.sorted_by_name()] == ["a", "z"]

    def test_get_and_contains(self):
        ds = Dataset("d", [DataFile("a", 1)])
        assert "a" in ds
        assert ds.get("a").size == 1
        with pytest.raises(StorageError):
            ds.get("missing")

    def test_indexing(self):
        ds = Dataset("d", [DataFile("a", 1), DataFile("b", 2)])
        assert ds[1].name == "b"
        assert len(ds) == 2

    def test_from_directory(self, tmp_path):
        (tmp_path / "b.txt").write_text("bb")
        (tmp_path / "a.txt").write_text("a")
        (tmp_path / "sub").mkdir()
        ds = Dataset.from_directory(str(tmp_path))
        assert [f.name for f in ds] == ["a.txt", "b.txt"]  # sorted
        assert ds.get("b.txt").size == 2
        assert ds.get("a.txt").path == str(tmp_path / "a.txt")

    def test_from_directory_with_pattern(self, tmp_path):
        (tmp_path / "x.npy").write_text("1")
        (tmp_path / "y.txt").write_text("2")
        ds = Dataset.from_directory(str(tmp_path), pattern=lambda n: n.endswith(".npy"))
        assert [f.name for f in ds] == ["x.npy"]

    def test_from_missing_directory(self):
        with pytest.raises(StorageError):
            Dataset.from_directory("/nonexistent/nowhere")


class TestSyntheticDataset:
    def test_count_and_size(self):
        ds = synthetic_dataset("d", 10, "7 MB")
        assert len(ds) == 10
        assert all(f.size == 7_000_000 for f in ds)

    def test_names_sorted_and_unique(self):
        ds = synthetic_dataset("d", 100, 10)
        names = [f.name for f in ds]
        assert names == sorted(names)
        assert len(set(names)) == 100

    def test_size_cv_varies_sizes(self):
        ds = synthetic_dataset("d", 200, "1 MB", size_cv=0.5, seed=1)
        sizes = [f.size for f in ds]
        assert len(set(sizes)) > 100
        mean = sum(sizes) / len(sizes)
        assert 0.8e6 < mean < 1.25e6  # roughly the requested mean

    def test_deterministic_for_seed(self):
        a = synthetic_dataset("d", 5, "1 MB", size_cv=0.5, seed=3)
        b = synthetic_dataset("d", 5, "1 MB", size_cv=0.5, seed=3)
        assert [f.size for f in a] == [f.size for f in b]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            synthetic_dataset("d", -1, 10)

    def test_zero_count_ok(self):
        assert len(synthetic_dataset("d", 0, 10)) == 0


class TestFileCatalog:
    def test_replica_tracking(self):
        cat = FileCatalog()
        cat.add_replica("f", "n1")
        cat.add_replica("f", "n2")
        assert cat.holders("f") == frozenset({"n1", "n2"})
        assert cat.replica_count("f") == 2
        assert cat.has_replica("f", "n1")
        assert not cat.has_replica("f", "n3")

    def test_drop_node(self):
        cat = FileCatalog()
        cat.add_replica("a", "n1")
        cat.add_replica("b", "n1")
        cat.add_replica("b", "n2")
        dropped = cat.drop_node("n1")
        assert dropped == 2
        assert cat.holders("a") == frozenset()
        assert cat.holders("b") == frozenset({"n2"})

    def test_files_on_node(self):
        cat = FileCatalog()
        cat.add_replica("a", "n1")
        cat.add_replica("b", "n2")
        assert cat.files_on("n1") == frozenset({"a"})

    def test_unknown_file_empty(self):
        assert FileCatalog().holders("ghost") == frozenset()
