"""Property-based tests: partition-generator invariants.

For every built-in scheme: group counts match the closed forms, no
group is empty, groups only contain dataset files, and coverage
properties hold (every file appears in the schemes that promise it).
"""

from hypothesis import given, settings, strategies as st

from repro.data.files import DataFile, Dataset
from repro.data.partition import (
    PartitionScheme,
    expected_group_count,
    generate_groups,
)


@st.composite
def datasets(draw, min_files=0, max_files=30):
    n = draw(st.integers(min_files, max_files))
    return Dataset(
        "prop",
        [DataFile(f"f{i:04d}", draw(st.integers(0, 10**9))) for i in range(n)],
    )


@given(datasets())
@settings(max_examples=60)
def test_single_covers_every_file_exactly_once(ds):
    groups = generate_groups(ds, PartitionScheme.SINGLE)
    names = [g.files[0].name for g in groups]
    assert names == [f.name for f in ds]
    assert len(groups) == expected_group_count(PartitionScheme.SINGLE, len(ds))


@given(datasets(min_files=1))
@settings(max_examples=60)
def test_one_to_all_count_and_pivot(ds):
    groups = generate_groups(ds, PartitionScheme.ONE_TO_ALL)
    assert len(groups) == expected_group_count(PartitionScheme.ONE_TO_ALL, len(ds))
    pivot = ds[0]
    non_pivot_names = set()
    for group in groups:
        assert len(group.files) == 2
        assert group.files[0] is pivot
        non_pivot_names.add(group.files[1].name)
    assert non_pivot_names == {f.name for f in ds} - {pivot.name}


@given(datasets())
@settings(max_examples=60)
def test_pairwise_adjacent_disjoint_cover(ds):
    groups = generate_groups(ds, PartitionScheme.PAIRWISE_ADJACENT, allow_odd=True)
    seen: set[str] = set()
    for group in groups:
        assert len(group.files) == 2
        for f in group.files:
            assert f.name not in seen  # disjointness
            seen.add(f.name)
    expected = len(ds) - (len(ds) % 2)
    assert len(seen) == expected


@given(datasets(max_files=15))
@settings(max_examples=40)
def test_all_to_all_exact_pair_set(ds):
    groups = generate_groups(ds, PartitionScheme.ALL_TO_ALL)
    assert len(groups) == len(ds) * (len(ds) - 1) // 2
    pairs = {frozenset((a.name, b.name)) for a, b in (g.files for g in groups)}
    assert len(pairs) == len(groups)  # all distinct unordered pairs


@given(datasets(min_files=1), st.integers(1, 8))
@settings(max_examples=60)
def test_chunk_schemes_partition_the_dataset(ds, chunks):
    for scheme in (PartitionScheme.ROUND_ROBIN_CHUNKS, PartitionScheme.SIZE_BALANCED_CHUNKS):
        groups = generate_groups(ds, scheme, chunks=chunks)
        names = sorted(n for g in groups for n in g.file_names)
        assert names == sorted(f.name for f in ds)  # exact cover
        assert len(groups) == min(chunks, len(ds))


@given(datasets(min_files=2), st.integers(2, 6))
@settings(max_examples=60)
def test_size_balanced_respects_list_scheduling_bound(ds, chunks):
    """Greedy LPT obeys the list-scheduling guarantee:
    max load <= average load + largest item. (It is NOT pointwise
    better than round-robin — hypothesis found counterexamples — only
    4/3-competitive with the optimum.)"""
    sb = generate_groups(ds, PartitionScheme.SIZE_BALANCED_CHUNKS, chunks=chunks)
    total = ds.total_size
    max_item = max(f.size for f in ds)
    max_load = max(g.total_size for g in sb)
    assert max_load <= total / min(chunks, len(ds)) + max_item + 1e-9
    # And it is at least as good as the trivial lower bounds allow.
    assert max_load >= max(total / chunks, max_item) - 1e-9 or max_load == 0


@given(datasets())
@settings(max_examples=60)
def test_group_indices_are_sequential(ds):
    for scheme in (PartitionScheme.SINGLE, PartitionScheme.PAIRWISE_ADJACENT):
        groups = generate_groups(ds, scheme, allow_odd=True)
        assert [g.index for g in groups] == list(range(len(groups)))
