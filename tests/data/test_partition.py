"""Unit tests for the partition generator (§II-E groupings)."""

import pytest

from repro.data.files import DataFile, Dataset, synthetic_dataset
from repro.data.partition import (
    PartitionGenerator,
    PartitionScheme,
    expected_group_count,
    generate_groups,
    register_scheme,
)
from repro.errors import PartitionError


@pytest.fixture
def dataset():
    return synthetic_dataset("d", 6, 100)


class TestSingle:
    def test_one_file_per_group(self, dataset):
        groups = generate_groups(dataset, PartitionScheme.SINGLE)
        assert len(groups) == 6
        assert all(len(g.files) == 1 for g in groups)

    def test_order_matches_dataset(self, dataset):
        groups = generate_groups(dataset, PartitionScheme.SINGLE)
        assert [g.files[0].name for g in groups] == [f.name for f in dataset]

    def test_empty_dataset(self):
        assert generate_groups(Dataset("e"), PartitionScheme.SINGLE) == []


class TestOneToAll:
    def test_pivot_paired_with_all_others(self, dataset):
        groups = generate_groups(dataset, PartitionScheme.ONE_TO_ALL)
        assert len(groups) == 5
        pivot = dataset[0]
        for group in groups:
            assert group.files[0] is pivot
            assert group.files[1] is not pivot

    def test_explicit_pivot(self, dataset):
        pivot_name = dataset[3].name
        groups = generate_groups(dataset, PartitionScheme.ONE_TO_ALL, pivot=pivot_name)
        assert all(g.files[0].name == pivot_name for g in groups)

    def test_unknown_pivot_raises(self, dataset):
        with pytest.raises(PartitionError):
            generate_groups(dataset, PartitionScheme.ONE_TO_ALL, pivot="ghost")

    def test_single_file_dataset_yields_nothing(self):
        ds = Dataset("one", [DataFile("a", 1)])
        assert generate_groups(ds, PartitionScheme.ONE_TO_ALL) == []


class TestPairwiseAdjacent:
    def test_adjacent_pairs_in_order(self, dataset):
        groups = generate_groups(dataset, PartitionScheme.PAIRWISE_ADJACENT)
        assert len(groups) == 3
        names = [f.name for f in dataset]
        for i, group in enumerate(groups):
            assert group.file_names == (names[2 * i], names[2 * i + 1])

    def test_odd_count_rejected_by_default(self):
        ds = synthetic_dataset("odd", 5, 10)
        with pytest.raises(PartitionError):
            generate_groups(ds, PartitionScheme.PAIRWISE_ADJACENT)

    def test_odd_count_allowed_drops_last(self):
        ds = synthetic_dataset("odd", 5, 10)
        groups = generate_groups(ds, PartitionScheme.PAIRWISE_ADJACENT, allow_odd=True)
        assert len(groups) == 2


class TestAllToAll:
    def test_all_unordered_pairs(self, dataset):
        groups = generate_groups(dataset, PartitionScheme.ALL_TO_ALL)
        assert len(groups) == 15  # C(6, 2)
        pairs = {frozenset(g.file_names) for g in groups}
        assert len(pairs) == 15  # no duplicates/reverses

    def test_no_self_pairs(self, dataset):
        for group in generate_groups(dataset, PartitionScheme.ALL_TO_ALL):
            assert group.files[0] is not group.files[1]


class TestChunkSchemes:
    def test_round_robin_coverage(self, dataset):
        groups = generate_groups(dataset, PartitionScheme.ROUND_ROBIN_CHUNKS, chunks=2)
        assert len(groups) == 2
        all_names = sorted(n for g in groups for n in g.file_names)
        assert all_names == sorted(f.name for f in dataset)

    def test_round_robin_requires_chunks(self, dataset):
        with pytest.raises(PartitionError):
            generate_groups(dataset, PartitionScheme.ROUND_ROBIN_CHUNKS)

    def test_size_balanced_minimizes_spread(self):
        files = [DataFile(f"f{i}", size) for i, size in enumerate([100, 90, 50, 40, 30, 10])]
        ds = Dataset("skew", files)
        groups = generate_groups(ds, PartitionScheme.SIZE_BALANCED_CHUNKS, chunks=2)
        loads = sorted(g.total_size for g in groups)
        # LPT greedy: 100|90, 50->90, 40->100, 30->140(tie, first), 10->150.
        assert loads == [150, 170]
        # Within the 4/3-OPT guarantee of LPT (OPT = 160).
        assert max(loads) <= 160 * 4 / 3

    def test_more_chunks_than_files(self):
        ds = synthetic_dataset("tiny", 2, 10)
        groups = generate_groups(ds, PartitionScheme.ROUND_ROBIN_CHUNKS, chunks=5)
        assert len(groups) == 2  # empty chunks dropped


class TestExpectedGroupCount:
    @pytest.mark.parametrize(
        "scheme,n,expected",
        [
            (PartitionScheme.SINGLE, 7, 7),
            (PartitionScheme.ONE_TO_ALL, 7, 6),
            (PartitionScheme.ONE_TO_ALL, 0, 0),
            (PartitionScheme.PAIRWISE_ADJACENT, 8, 4),
            (PartitionScheme.ALL_TO_ALL, 6, 15),
            (PartitionScheme.ALL_TO_ALL, 1, 0),
        ],
    )
    def test_closed_forms(self, scheme, n, expected):
        assert expected_group_count(scheme, n) == expected

    def test_chunk_schemes_with_options(self):
        assert expected_group_count(PartitionScheme.ROUND_ROBIN_CHUNKS, 10, chunks=3) == 3
        assert expected_group_count(PartitionScheme.SIZE_BALANCED_CHUNKS, 2, chunks=5) == 2


class TestRegistry:
    def test_unknown_scheme_raises(self, dataset):
        with pytest.raises(PartitionError):
            PartitionGenerator(scheme="nope").generate(dataset)

    def test_custom_scheme_registration(self, dataset):
        def reversed_singles(files, _opts):
            for f in reversed(files):
                yield (f,)

        register_scheme("reversed_singles_test", reversed_singles, overwrite=True)
        groups = generate_groups(dataset, "reversed_singles_test")
        assert [g.files[0].name for g in groups] == [f.name for f in reversed(dataset.files)]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(PartitionError):
            register_scheme("single", lambda f, o: [])

    def test_empty_group_from_custom_scheme_rejected(self, dataset):
        register_scheme("empty_group_test", lambda files, o: [()], overwrite=True)
        with pytest.raises(PartitionError):
            generate_groups(dataset, "empty_group_test")

    def test_task_group_metadata(self, dataset):
        groups = generate_groups(dataset, PartitionScheme.PAIRWISE_ADJACENT)
        assert [g.index for g in groups] == [0, 1, 2]
        assert groups[0].total_size == 200
