"""Unit tests for placement policies (Fig 7 machinery)."""

import pytest

from repro.data.files import FileCatalog, synthetic_dataset
from repro.data.partition import PartitionScheme, generate_groups
from repro.data.placement import PlacementPolicy, plan_placement
from repro.errors import ConfigurationError


@pytest.fixture
def groups():
    return generate_groups(synthetic_dataset("d", 8, 1000), PartitionScheme.PAIRWISE_ADJACENT)


class TestDataToCompute:
    def test_assigns_to_compute_nodes(self, groups):
        plan = plan_placement(
            groups,
            PlacementPolicy.DATA_TO_COMPUTE,
            compute_nodes=["c0", "c1"],
            data_nodes=["d0"],
        )
        assert {p.node_id for p in plan.placements} == {"c0", "c1"}

    def test_all_files_transferred_without_catalog(self, groups):
        plan = plan_placement(
            groups,
            PlacementPolicy.DATA_TO_COMPUTE,
            compute_nodes=["c0"],
            data_nodes=["d0"],
        )
        total = sum(g.total_size for g in groups)
        assert plan.total_transfer_bytes == total

    def test_catalog_replicas_skip_transfer(self, groups):
        catalog = FileCatalog()
        first = groups[0]
        for f in first.files:
            catalog.add_replica(f.name, "c0")
        plan = plan_placement(
            groups,
            PlacementPolicy.DATA_TO_COMPUTE,
            compute_nodes=["c0"],
            data_nodes=["d0"],
            catalog=catalog,
        )
        assert plan.placements[0].transfers == ()
        assert plan.placements[1].transfer_bytes == groups[1].total_size

    def test_round_robin_balance(self, groups):
        plan = plan_placement(
            groups,
            PlacementPolicy.DATA_TO_COMPUTE,
            compute_nodes=["c0", "c1"],
            data_nodes=[],
        )
        counts = {n: len(plan.tasks_on(n)) for n in ("c0", "c1")}
        assert counts == {"c0": 2, "c1": 2}


class TestComputeToData:
    def test_no_wide_transfers_when_data_resident(self, groups):
        catalog = FileCatalog()
        for group in groups:
            for f in group.files:
                catalog.add_replica(f.name, "d0")
        plan = plan_placement(
            groups,
            PlacementPolicy.COMPUTE_TO_DATA,
            compute_nodes=["c0"],
            data_nodes=["d0", "d1"],
            catalog=catalog,
        )
        assert plan.total_transfer_bytes == 0

    def test_prefers_node_holding_most_bytes(self, groups):
        catalog = FileCatalog()
        target = groups[2]
        for f in target.files:
            catalog.add_replica(f.name, "d1")
        plan = plan_placement(
            groups,
            PlacementPolicy.COMPUTE_TO_DATA,
            compute_nodes=[],
            data_nodes=["d0", "d1"],
            catalog=catalog,
        )
        assert plan.placements[2].node_id == "d1"

    def test_empty_pool_rejected(self, groups):
        with pytest.raises(ConfigurationError):
            plan_placement(
                groups,
                PlacementPolicy.COMPUTE_TO_DATA,
                compute_nodes=["c0"],
                data_nodes=[],
            )
