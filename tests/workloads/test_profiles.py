"""Unit tests for the calibrated workload profiles."""

import pytest

from repro.data.partition import PartitionScheme
from repro.util.units import MB
from repro.workloads.profiles import (
    PAPER_CLUSTER,
    als_profile,
    blast_profile,
    sequential_cluster,
)


class TestPaperCluster:
    def test_matches_section_iv_a(self):
        assert PAPER_CLUSTER.num_workers == 4
        assert PAPER_CLUSTER.instance_type.cores == 4
        assert PAPER_CLUSTER.link_bps == 100e6

    def test_sequential_cluster_single_worker(self):
        assert sequential_cluster().num_workers == 1


class TestAlsProfile:
    def test_full_scale_matches_paper(self):
        profile = als_profile(1.0)
        assert len(profile.dataset) == 1250
        assert profile.grouping is PartitionScheme.PAIRWISE_ADJACENT
        assert profile.num_tasks == 625

    def test_scaling_preserves_file_size(self):
        full = als_profile(1.0)
        small = als_profile(0.1)
        assert len(small.dataset) == 126  # rounded to even
        assert small.dataset[0].size == full.dataset[0].size

    def test_even_count_enforced(self):
        profile = als_profile(0.013)  # 16.25 -> rounds to 16
        assert len(profile.dataset) % 2 == 0

    def test_sequential_cost_calibration(self):
        # 625 tasks x ~2.014 s should reconstruct ~1258.8 s of §IV.
        from repro.data.partition import TaskGroup

        profile = als_profile(1.0)
        groups = profile.num_tasks
        per_task = profile.compute_model.cost(TaskGroup(0, profile.dataset.files[:2]))
        disk_read = (
            profile.dataset[0].size * 2 * 8 / profile.cluster.instance_type.disk_read_bps
        )
        assert groups * (per_task + disk_read) == pytest.approx(1258.8, rel=0.01)

    def test_command_is_two_input(self):
        assert als_profile(0.1).command.arity == 2

    def test_invalid_scale(self):
        with pytest.raises(Exception):
            als_profile(0.0)


class TestBlastProfile:
    def test_full_scale_matches_paper(self):
        profile = blast_profile(1.0)
        assert len(profile.dataset) == 750  # 7500 sequences / 10 per file
        assert profile.grouping is PartitionScheme.SINGLE
        assert profile.common_files[0].size == 300 * MB

    def test_database_scales_down(self):
        small = blast_profile(0.1)
        assert small.common_files[0].size == 30 * MB

    def test_database_floor(self):
        tiny = blast_profile(0.01)
        assert tiny.common_files[0].size == 20 * MB

    def test_sequential_total_near_61200(self):
        from repro.data.partition import generate_groups

        profile = blast_profile(1.0)
        groups = generate_groups(profile.dataset, profile.grouping)
        total = sum(profile.compute_model.cost(g) for g in groups)
        assert total == pytest.approx(61200, rel=0.02)

    def test_task_costs_deterministic(self):
        a = blast_profile(0.1)
        b = blast_profile(0.1)
        from repro.data.partition import generate_groups

        groups = generate_groups(a.dataset, a.grouping)
        assert [a.compute_model.cost(g) for g in groups] == [
            b.compute_model.cost(g) for g in groups
        ]

    def test_task_costs_variable(self):
        from repro.data.partition import generate_groups

        profile = blast_profile(0.1)
        groups = generate_groups(profile.dataset, profile.grouping)
        costs = {profile.compute_model.cost(g) for g in groups}
        assert len(costs) == len(groups)
