"""Property-based tests: trace save/load is the identity."""

from hypothesis import given, settings, strategies as st

from repro.data.files import DataFile, Dataset
from repro.data.partition import PartitionScheme, expected_group_count
from repro.workloads.trace import TraceComputeModel, TraceWorkload, load_trace, save_trace


@st.composite
def trace_workloads(draw):
    n = draw(st.integers(1, 20))
    grouping = draw(
        st.sampled_from([PartitionScheme.SINGLE, PartitionScheme.ONE_TO_ALL])
    )
    files = [
        DataFile(f"f{i:03d}", draw(st.integers(0, 10**9))) for i in range(n)
    ]
    n_tasks = expected_group_count(grouping, n)
    costs = tuple(
        draw(st.floats(0, 1e4, allow_nan=False, allow_infinity=False))
        for _ in range(n_tasks)
    )
    common = draw(
        st.lists(
            st.integers(1, 10**9).map(lambda s: DataFile(f"common{s}", s)),
            max_size=2,
            unique_by=lambda f: f.name,
        )
    )
    return TraceWorkload(
        name=draw(st.text(alphabet="abcdefg-", min_size=1, max_size=12)),
        dataset=Dataset("prop", files),
        grouping=grouping,
        grouping_options={},
        compute_model=TraceComputeModel(costs),
        common_files=tuple(common),
    )


@given(trace_workloads())
@settings(max_examples=50)
def test_trace_round_trip_identity(tmp_path_factory, workload):
    path = str(tmp_path_factory.mktemp("traces") / "t.json")
    save_trace(workload, path)
    loaded = load_trace(path)
    assert loaded.name == workload.name
    assert loaded.grouping == workload.grouping
    assert loaded.compute_model.costs == workload.compute_model.costs
    assert [(f.name, f.size) for f in loaded.dataset] == [
        (f.name, f.size) for f in workload.dataset
    ]
    assert loaded.common_files == workload.common_files
