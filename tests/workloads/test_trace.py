"""Tests for trace-driven workloads."""

import json

import pytest

from repro.core.strategies import StrategyKind
from repro.data.files import DataFile, Dataset
from repro.data.partition import PartitionScheme, TaskGroup
from repro.errors import ConfigurationError
from repro.workloads.profiles import als_profile
from repro.workloads.trace import (
    TraceComputeModel,
    TraceWorkload,
    load_trace,
    run_trace,
    save_trace,
    trace_from_profile,
)


def small_trace():
    files = [DataFile(f"f{i}", 1000 * (i + 1)) for i in range(6)]
    return TraceWorkload(
        name="small",
        dataset=Dataset("small", files),
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
        grouping_options={},
        compute_model=TraceComputeModel((1.0, 2.0, 3.0)),
    )


class TestTraceComputeModel:
    def test_costs_by_index(self):
        model = TraceComputeModel((1.5, 2.5))
        assert model.cost(TaskGroup(1, (DataFile("a", 1),))) == 2.5

    def test_missing_cost_rejected(self):
        model = TraceComputeModel((1.5,))
        with pytest.raises(ConfigurationError):
            model.cost(TaskGroup(5, (DataFile("a", 1),)))


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        trace = small_trace()
        path = str(tmp_path / "trace.json")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.grouping == trace.grouping
        assert loaded.compute_model.costs == trace.compute_model.costs
        assert [f.size for f in loaded.dataset] == [f.size for f in trace.dataset]

    def test_common_files_preserved(self, tmp_path):
        trace = TraceWorkload(
            name="db",
            dataset=Dataset("d", [DataFile("q", 10)]),
            grouping=PartitionScheme.SINGLE,
            grouping_options={},
            compute_model=TraceComputeModel((1.0,)),
            common_files=(DataFile("nr", 1000),),
        )
        path = str(tmp_path / "t.json")
        save_trace(trace, path)
        assert load_trace(path).common_files[0].size == 1000

    def test_trace_is_editable_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        save_trace(small_trace(), path)
        payload = json.load(open(path))
        assert payload["version"] == 1
        assert len(payload["task_costs"]) == 3


class TestValidation:
    def test_cost_count_must_match_grouping(self, tmp_path):
        path = str(tmp_path / "bad.json")
        save_trace(small_trace(), path)
        payload = json.load(open(path))
        payload["task_costs"] = [1.0]  # wrong count
        json.dump(payload, open(path, "w"))
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_negative_costs_rejected(self, tmp_path):
        path = str(tmp_path / "neg.json")
        save_trace(small_trace(), path)
        payload = json.load(open(path))
        payload["task_costs"][0] = -1.0
        json.dump(payload, open(path, "w"))
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = str(tmp_path / "v.json")
        save_trace(small_trace(), path)
        payload = json.load(open(path))
        payload["version"] = 99
        json.dump(payload, open(path, "w"))
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_garbage_json_rejected(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError):
            load_trace(str(path))


class TestProfilePinning:
    def test_profile_trace_reproduces_exactly(self, tmp_path):
        profile = als_profile(0.02)
        trace = trace_from_profile(profile)
        path = str(tmp_path / "als.json")
        save_trace(trace, path)
        loaded = load_trace(path)
        a = run_trace(loaded, StrategyKind.REAL_TIME)
        b = run_trace(loaded, StrategyKind.REAL_TIME)
        assert a.makespan == b.makespan  # bit-for-bit rerun
        assert a.all_tasks_ok

    def test_trace_matches_profile_run(self):
        from repro.workloads import run_profile

        profile = als_profile(0.02)
        trace = trace_from_profile(profile)
        direct = run_profile(profile, StrategyKind.PRE_PARTITIONED_REMOTE)
        traced = run_trace(trace, StrategyKind.PRE_PARTITIONED_REMOTE)
        assert traced.makespan == pytest.approx(direct.makespan, rel=1e-9)
