"""Admission control: admit / park / reject and parked promotion."""

from repro.service.admission import AdmissionController, TenantQuota, Verdict
from repro.service.core import ControlPlaneService
from repro.service.jobs import JobSpec, JobState
from repro.telemetry.metrics import MetricsRegistry


def spec(tenant="t", name="j", sizes=(100, 100), **kw):
    return JobSpec.from_sizes(tenant, name, list(sizes), **kw)


class TestController:
    def test_admits_under_capacity(self):
        ctl = AdmissionController(max_running_jobs=2)
        d = ctl.decide(spec(), running_jobs=1, parked_jobs=0, tenant_running=0, tenant_parked=0)
        assert d.verdict is Verdict.ADMIT

    def test_parks_when_service_saturated(self):
        ctl = AdmissionController(max_running_jobs=2)
        d = ctl.decide(spec(), running_jobs=2, parked_jobs=0, tenant_running=0, tenant_parked=0)
        assert d.verdict is Verdict.PARK
        assert "max running" in d.reason

    def test_parks_when_tenant_at_job_quota(self):
        ctl = AdmissionController(
            max_running_jobs=100, default_quota=TenantQuota(max_running_jobs=1)
        )
        d = ctl.decide(spec(), running_jobs=3, parked_jobs=0, tenant_running=1, tenant_parked=0)
        assert d.verdict is Verdict.PARK
        assert "tenant" in d.reason

    def test_rejects_when_backlog_full(self):
        ctl = AdmissionController(max_running_jobs=1, max_parked_jobs=2)
        d = ctl.decide(spec(), running_jobs=1, parked_jobs=2, tenant_running=0, tenant_parked=0)
        assert d.verdict is Verdict.REJECT

    def test_rejects_when_tenant_backlog_full(self):
        ctl = AdmissionController(
            max_running_jobs=1,
            max_parked_jobs=100,
            default_quota=TenantQuota(max_parked_jobs=1),
        )
        d = ctl.decide(spec(), running_jobs=1, parked_jobs=3, tenant_running=1, tenant_parked=1)
        assert d.verdict is Verdict.REJECT

    def test_rejects_task_that_can_never_fit_byte_quota(self):
        ctl = AdmissionController(
            default_quota=TenantQuota(max_inflight_bytes=50)
        )
        d = ctl.decide(
            spec(sizes=(10, 100)), running_jobs=0, parked_jobs=0,
            tenant_running=0, tenant_parked=0,
        )
        assert d.verdict is Verdict.REJECT
        assert "byte quota" in d.reason

    def test_verdict_counters(self):
        metrics = MetricsRegistry()
        ctl = AdmissionController(max_running_jobs=1, max_parked_jobs=1, metrics=metrics)
        ctl.decide(spec(), running_jobs=0, parked_jobs=0, tenant_running=0, tenant_parked=0)
        ctl.decide(spec(), running_jobs=1, parked_jobs=0, tenant_running=1, tenant_parked=0)
        ctl.decide(spec(), running_jobs=1, parked_jobs=1, tenant_running=1, tenant_parked=1)
        assert metrics.counter("service.admission.admitted").value == 1
        assert metrics.counter("service.admission.parked").value == 1
        assert metrics.counter("service.admission.rejected").value == 1


class TestServiceAdmissionFlow:
    def make_service(self, **kw):
        clock = {"now": 0.0}
        svc = ControlPlaneService(
            ["w:0", "w:1"], clock=lambda: clock["now"], **kw
        )
        return svc, clock

    def test_parked_job_promotes_when_capacity_frees(self):
        svc, _clock = self.make_service(max_running_jobs=1)
        first = svc.submit(spec(name="first"))
        second = svc.submit(spec(name="second"))
        assert first["verdict"] == "admit"
        assert second["verdict"] == "park"
        assert svc.job(second["job_id"]).state is JobState.PARKED
        # Drain the first job; its completion must promote the second.
        while True:
            leases = svc.lease_free_workers()
            if not leases:
                break
            for lease in leases:
                svc.complete(lease)
        assert svc.job(first["job_id"]).state is JobState.DONE
        assert svc.job(second["job_id"]).state is JobState.DONE

    def test_rejected_submission_stores_nothing(self):
        svc, _clock = self.make_service(max_running_jobs=1, max_parked_jobs=0)
        svc.submit(spec(name="first"))
        ticket = svc.submit(spec(name="second"))
        assert ticket["verdict"] == "reject"
        assert ticket["job_id"] is None
        assert len(svc.list_jobs()) == 1

    def test_tenant_quota_does_not_block_other_tenants(self):
        svc, _clock = self.make_service(
            max_running_jobs=10,
            default_quota=TenantQuota(max_running_jobs=1),
        )
        a1 = svc.submit(spec(tenant="a", name="a1"))
        a2 = svc.submit(spec(tenant="a", name="a2"))
        b1 = svc.submit(spec(tenant="b", name="b1"))
        assert a1["verdict"] == "admit"
        assert a2["verdict"] == "park"
        assert b1["verdict"] == "admit"

    def test_empty_job_completes_immediately(self):
        svc, _clock = self.make_service()
        ticket = svc.submit(JobSpec(tenant="t", name="empty", groups=()))
        assert ticket["verdict"] == "admit"
        assert svc.job(ticket["job_id"]).state is JobState.DONE
