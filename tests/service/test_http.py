"""HTTP/JSON front end: the tenant submit/status/cancel workflow.

No pytest-asyncio in the image — each test drives its own loop with
``asyncio.run``.
"""

import asyncio
import json

import pytest

from repro.service.aio import AsyncServiceRuntime
from repro.service.http import ServiceHttpServer, spec_from_json
from repro.telemetry.metrics import MetricsRegistry


class TestSpecFromJson:
    def test_accepts_sizes_and_objects(self):
        spec = spec_from_json(
            {"tenant": "t", "name": "j", "tasks": [10, {"size": 20}]}
        )
        assert spec.tenant == "t"
        assert [g.total_size for g in spec.groups] == [10, 20]

    def test_rejects_bad_payloads(self):
        bad = [
            {},
            {"tenant": "", "name": "j", "tasks": [1]},
            {"tenant": "t", "name": "j", "tasks": []},
            {"tenant": "t", "name": "j", "tasks": ["x"]},
            {"tenant": "t", "name": "j", "tasks": [1], "kind": "magic"},
            {"tenant": "t", "name": "j", "tasks": [1], "cost": -1},
        ]
        for body in bad:
            with pytest.raises(ValueError):
                spec_from_json(body)


async def request(port, method, path, body=None, headers=()):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    extra = "".join(f"{k}: {v}\r\n" for k, v in headers)
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n{extra}Content-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status_line, _, rest = raw.partition(b"\r\n")
    status = int(status_line.split(b" ")[1])
    _headers, _, body_bytes = rest.partition(b"\r\n\r\n")
    return status, json.loads(body_bytes)


def serve(scenario, server_kw=None, **runtime_kw):
    """Start a server on an ephemeral port, run the scenario, stop."""

    async def main():
        runtime = AsyncServiceRuntime(num_workers=2, **runtime_kw)
        server = ServiceHttpServer(runtime, **(server_kw or {}))
        port = await server.start()
        try:
            return await scenario(port, runtime)
        finally:
            await server.close()
            await runtime.drain()

    return asyncio.run(main())


class TestEndpoints:
    def test_submit_status_cancel_list_workflow(self):
        async def scenario(port, runtime):
            status, ticket = await request(
                port, "POST", "/jobs",
                {"tenant": "acme", "name": "etl", "tasks": [64, 64]},
            )
            assert status == 202
            assert ticket["verdict"] == "admit"
            job_id = ticket["job_id"]

            status, info = await request(port, "GET", f"/jobs/{job_id}")
            assert status == 200
            assert info["tenant"] == "acme"
            assert info["state"] in ("running", "done")

            status, listing = await request(port, "GET", "/jobs")
            assert status == 200
            assert [j["job_id"] for j in listing["jobs"]] == [job_id]

            status, cancelled = await request(
                port, "POST", f"/jobs/{job_id}/cancel"
            )
            assert status == 200
            await runtime.drain()
            status, info = await request(port, "GET", f"/jobs/{job_id}")
            assert info["state"] in ("done", "cancelled")

        serve(scenario)

    def test_validation_and_unknown_job_errors(self):
        async def scenario(port, _runtime):
            status, body = await request(
                port, "POST", "/jobs", {"tenant": "t", "name": "j", "tasks": []}
            )
            assert status == 400
            assert "tasks" in body["error"]
            status, _body = await request(port, "GET", "/jobs/999")
            assert status == 404
            status, _body = await request(port, "POST", "/jobs/999/cancel")
            assert status == 404
            status, _body = await request(port, "DELETE", "/jobs")
            assert status == 405

        serve(scenario)

    def test_reject_maps_to_429(self):
        async def scenario(port, _runtime):
            tickets = []
            for i in range(3):
                status, ticket = await request(
                    port, "POST", "/jobs",
                    {"tenant": "t", "name": f"j{i}", "tasks": [1024] * 4},
                )
                tickets.append((status, ticket["verdict"]))
            assert tickets[0] == (202, "admit")
            assert tickets[1] == (202, "park")
            assert tickets[2] == (429, "reject")

        serve(
            scenario,
            max_running_jobs=1,
            max_parked_jobs=1,
            duration_fn=lambda lease, spec: 0.2,
        )

    def test_jobs_complete_over_http_runtime(self):
        async def scenario(port, runtime):
            _status, ticket = await request(
                port, "POST", "/jobs",
                {"tenant": "t", "name": "quick", "tasks": [10, 10, 10]},
            )
            await runtime.drain()
            status, info = await request(port, "GET", f"/jobs/{ticket['job_id']}")
            assert status == 200
            assert info["state"] == "done"
            assert info["summary"]["completed"] == 3

        serve(scenario, duration_fn=lambda lease, spec: 0.001)



class TestBearerAuth:
    def test_missing_or_wrong_token_is_401_and_counted(self):
        reg = MetricsRegistry()

        async def scenario(port, _runtime):
            status, body = await request(port, "GET", "/jobs")
            assert status == 401
            assert "bearer" in body["error"]
            status, _ = await request(
                port, "GET", "/jobs",
                headers=[("Authorization", "Bearer wrong")],
            )
            assert status == 401
            status, _ = await request(
                port, "GET", "/jobs",
                headers=[("Authorization", "Basic hunter2")],
            )
            assert status == 401

        serve(scenario, server_kw={"auth_token": "s3cret", "metrics": reg})
        assert reg.counter("service.http.unauthorized").value == 3

    def test_valid_token_passes_every_route(self):
        auth = [("Authorization", "Bearer s3cret")]

        async def scenario(port, runtime):
            status, ticket = await request(
                port, "POST", "/jobs",
                {"tenant": "acme", "name": "etl", "tasks": [10]},
                headers=auth,
            )
            assert status == 202
            await runtime.drain()
            status, info = await request(
                port, "GET", f"/jobs/{ticket['job_id']}", headers=auth
            )
            assert status == 200 and info["state"] == "done"

        serve(
            scenario,
            server_kw={"auth_token": "s3cret"},
            duration_fn=lambda lease, spec: 0.001,
        )

    def test_no_token_configured_means_open(self):
        async def scenario(port, _runtime):
            status, _ = await request(port, "GET", "/jobs")
            assert status == 200

        serve(scenario)


class TestRequestHardening:
    def test_too_many_header_lines_is_431(self):
        reg = MetricsRegistry()

        async def scenario(port, _runtime):
            flood = [(f"X-Pad-{i}", "x") for i in range(20)]
            status, body = await request(port, "GET", "/jobs", headers=flood)
            assert status == 431
            assert "header" in body["error"]

        serve(scenario, server_kw={"max_header_lines": 8, "metrics": reg})
        assert reg.counter("service.http.overflows").value == 1

    def test_oversized_header_line_is_431(self):
        async def scenario(port, _runtime):
            # Over the per-line cap but under the stream limit (2x),
            # so the server can still frame a 431 response; a line
            # breaking the stream limit itself just drops the
            # connection as unframed garbage.
            status, _ = await request(
                port, "GET", "/jobs", headers=[("X-Big", "v" * 1500)]
            )
            assert status == 431

        serve(scenario, server_kw={"max_line_bytes": 1024})

    def test_slow_client_times_out_with_408(self):
        reg = MetricsRegistry()

        async def scenario(port, _runtime):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /jobs HTTP/1.1\r\n")  # ...and then stall
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"408" in raw.partition(b"\r\n")[0]

        serve(scenario, server_kw={"read_timeout": 0.2, "metrics": reg})
        assert reg.counter("service.http.timeouts").value == 1

    def test_negative_content_length_is_400(self):
        async def scenario(port, _runtime):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"GET /jobs HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"400" in raw.partition(b"\r\n")[0]

        serve(scenario)


class TestRuntimeFairness:
    def test_two_tenants_share_the_pool(self):
        async def scenario(port, runtime):
            for tenant in ("a", "b"):
                await request(
                    port, "POST", "/jobs",
                    {"tenant": tenant, "name": "load", "tasks": [10] * 6},
                )
            await runtime.drain()
            _status, listing = await request(port, "GET", "/jobs")
            assert all(j["state"] == "done" for j in listing["jobs"])
            assert runtime.service.fair.usage("a") > 0
            assert runtime.service.fair.usage("b") > 0

        serve(scenario, duration_fn=lambda lease, spec: 0.002)
