"""HTTP/JSON front end: the tenant submit/status/cancel workflow.

No pytest-asyncio in the image — each test drives its own loop with
``asyncio.run``.
"""

import asyncio
import json

import pytest

from repro.service.aio import AsyncServiceRuntime
from repro.service.http import ServiceHttpServer, spec_from_json


class TestSpecFromJson:
    def test_accepts_sizes_and_objects(self):
        spec = spec_from_json(
            {"tenant": "t", "name": "j", "tasks": [10, {"size": 20}]}
        )
        assert spec.tenant == "t"
        assert [g.total_size for g in spec.groups] == [10, 20]

    def test_rejects_bad_payloads(self):
        bad = [
            {},
            {"tenant": "", "name": "j", "tasks": [1]},
            {"tenant": "t", "name": "j", "tasks": []},
            {"tenant": "t", "name": "j", "tasks": ["x"]},
            {"tenant": "t", "name": "j", "tasks": [1], "kind": "magic"},
            {"tenant": "t", "name": "j", "tasks": [1], "cost": -1},
        ]
        for body in bad:
            with pytest.raises(ValueError):
                spec_from_json(body)


async def request(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\nContent-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status_line, _, rest = raw.partition(b"\r\n")
    status = int(status_line.split(b" ")[1])
    _headers, _, body_bytes = rest.partition(b"\r\n\r\n")
    return status, json.loads(body_bytes)


def serve(scenario, **runtime_kw):
    """Start a server on an ephemeral port, run the scenario, stop."""

    async def main():
        runtime = AsyncServiceRuntime(num_workers=2, **runtime_kw)
        server = ServiceHttpServer(runtime)
        port = await server.start()
        try:
            return await scenario(port, runtime)
        finally:
            await server.close()
            await runtime.drain()

    return asyncio.run(main())


class TestEndpoints:
    def test_submit_status_cancel_list_workflow(self):
        async def scenario(port, runtime):
            status, ticket = await request(
                port, "POST", "/jobs",
                {"tenant": "acme", "name": "etl", "tasks": [64, 64]},
            )
            assert status == 202
            assert ticket["verdict"] == "admit"
            job_id = ticket["job_id"]

            status, info = await request(port, "GET", f"/jobs/{job_id}")
            assert status == 200
            assert info["tenant"] == "acme"
            assert info["state"] in ("running", "done")

            status, listing = await request(port, "GET", "/jobs")
            assert status == 200
            assert [j["job_id"] for j in listing["jobs"]] == [job_id]

            status, cancelled = await request(
                port, "POST", f"/jobs/{job_id}/cancel"
            )
            assert status == 200
            await runtime.drain()
            status, info = await request(port, "GET", f"/jobs/{job_id}")
            assert info["state"] in ("done", "cancelled")

        serve(scenario)

    def test_validation_and_unknown_job_errors(self):
        async def scenario(port, _runtime):
            status, body = await request(
                port, "POST", "/jobs", {"tenant": "t", "name": "j", "tasks": []}
            )
            assert status == 400
            assert "tasks" in body["error"]
            status, _body = await request(port, "GET", "/jobs/999")
            assert status == 404
            status, _body = await request(port, "POST", "/jobs/999/cancel")
            assert status == 404
            status, _body = await request(port, "DELETE", "/jobs")
            assert status == 405

        serve(scenario)

    def test_reject_maps_to_429(self):
        async def scenario(port, _runtime):
            tickets = []
            for i in range(3):
                status, ticket = await request(
                    port, "POST", "/jobs",
                    {"tenant": "t", "name": f"j{i}", "tasks": [1024] * 4},
                )
                tickets.append((status, ticket["verdict"]))
            assert tickets[0] == (202, "admit")
            assert tickets[1] == (202, "park")
            assert tickets[2] == (429, "reject")

        serve(
            scenario,
            max_running_jobs=1,
            max_parked_jobs=1,
            duration_fn=lambda lease, spec: 0.2,
        )

    def test_jobs_complete_over_http_runtime(self):
        async def scenario(port, runtime):
            _status, ticket = await request(
                port, "POST", "/jobs",
                {"tenant": "t", "name": "quick", "tasks": [10, 10, 10]},
            )
            await runtime.drain()
            status, info = await request(port, "GET", f"/jobs/{ticket['job_id']}")
            assert status == 200
            assert info["state"] == "done"
            assert info["summary"]["completed"] == 3

        serve(scenario, duration_fn=lambda lease, spec: 0.001)



class TestRuntimeFairness:
    def test_two_tenants_share_the_pool(self):
        async def scenario(port, runtime):
            for tenant in ("a", "b"):
                await request(
                    port, "POST", "/jobs",
                    {"tenant": tenant, "name": "load", "tasks": [10] * 6},
                )
            await runtime.drain()
            _status, listing = await request(port, "GET", "/jobs")
            assert all(j["state"] == "done" for j in listing["jobs"])
            assert runtime.service.fair.usage("a") > 0
            assert runtime.service.fair.usage("b") > 0

        serve(scenario, duration_fn=lambda lease, spec: 0.002)
