"""Control-plane core: leases, quotas, cancel, crash isolation,
per-job metric namespacing."""

from repro.service.admission import TenantQuota
from repro.service.core import ControlPlaneService
from repro.service.jobs import JobSpec, JobState
from repro.telemetry.metrics import MetricsRegistry


def spec(tenant="t", name="j", sizes=(100, 100), **kw):
    return JobSpec.from_sizes(tenant, name, list(sizes), **kw)


def make_service(workers=2, **kw):
    clock = {"now": 0.0}
    svc = ControlPlaneService(
        [f"w:{i}" for i in range(workers)], clock=lambda: clock["now"], **kw
    )
    return svc, clock


def drain(svc, clock, step=1.0):
    """Lease and complete everything until the service is idle."""
    for _ in range(10_000):
        leases = svc.lease_free_workers()
        if not leases:
            if svc.idle:
                return
            clock["now"] += step
            continue
        for lease in leases:
            clock["now"] += step
            svc.complete(lease)
    raise AssertionError("service did not drain")


class TestLeaseCycle:
    def test_lease_complete_roundtrip(self):
        svc, clock = make_service()
        ticket = svc.submit(spec(sizes=(10,)))
        lease = svc.lease("w:0")
        assert lease is not None
        assert lease.job_id == ticket["job_id"]
        assert svc.pool.free_workers() == ("w:1",)
        clock["now"] = 2.0
        assert svc.complete(lease)
        assert svc.job(ticket["job_id"]).state is JobState.DONE
        assert svc.fair.usage("t") == 2.0
        assert svc.pool.free_workers() == ("w:0", "w:1")

    def test_lease_returns_none_when_nothing_runnable(self):
        svc, _clock = make_service()
        assert svc.lease("w:0") is None

    def test_max_concurrent_tasks_quota_gates_leasing(self):
        svc, _clock = make_service(
            workers=4, default_quota=TenantQuota(max_concurrent_tasks=2)
        )
        svc.submit(spec(sizes=(10,) * 8))
        leases = svc.lease_free_workers()
        assert len(leases) == 2  # quota, not pool size, is the binding limit
        assert svc.lease("w:3") is None

    def test_byte_quota_gates_leasing(self):
        svc, _clock = make_service(
            workers=4, default_quota=TenantQuota(max_inflight_bytes=150)
        )
        svc.submit(spec(sizes=(100, 100, 100)))
        leases = svc.lease_free_workers()
        assert len(leases) == 1  # a second 100-byte lease would exceed 150
        svc.complete(leases[0])
        assert len(svc.lease_free_workers()) == 1

    def test_quota_binds_per_tenant_not_globally(self):
        svc, _clock = make_service(
            workers=4, default_quota=TenantQuota(max_concurrent_tasks=1)
        )
        svc.submit(spec(tenant="a", name="a1", sizes=(10,) * 4))
        svc.submit(spec(tenant="b", name="b1", sizes=(10,) * 4))
        leases = svc.lease_free_workers()
        assert {lease.tenant for lease in leases} == {"a", "b"}
        assert len(leases) == 2

    def test_stale_complete_is_ignored(self):
        metrics = MetricsRegistry()
        svc, _clock = make_service(metrics=metrics)
        svc.submit(spec(sizes=(10,)))
        lease = svc.lease("w:0")
        svc.worker_crashed("w:0")
        assert not svc.complete(lease)  # report raced the crash sweep
        assert metrics.counter("service.leases.stale_reports").value == 1


class TestCancel:
    def test_cancel_releases_leases_and_frees_capacity(self):
        svc, clock = make_service(workers=2, max_running_jobs=1)
        first = svc.submit(spec(name="first", sizes=(10, 10, 10, 10)))
        second = svc.submit(spec(name="second", sizes=(10,)))
        leases = svc.lease_free_workers()
        assert len(leases) == 2
        assert svc.cancel(first["job_id"])
        job = svc.job(first["job_id"])
        assert job.state is JobState.CANCELLED
        # Cancellation freed the running slot: the parked job starts.
        assert svc.job(second["job_id"]).state is JobState.RUNNING
        # Outstanding leases drain without touching the dead scheduler,
        # but the worker-seconds are still charged.
        clock["now"] = 3.0
        for lease in leases:
            assert svc.complete(lease)
        assert not job.leases
        assert svc.pool.free_workers() == ("w:0", "w:1")
        assert svc.fair.usage("t") == 6.0
        assert job.scheduler.summary()["completed"] == 0

    def test_cancel_parked_job(self):
        svc, _clock = make_service(max_running_jobs=1)
        svc.submit(spec(name="first"))
        parked = svc.submit(spec(name="second"))
        assert svc.cancel(parked["job_id"])
        assert svc.job(parked["job_id"]).state is JobState.CANCELLED

    def test_cancel_is_idempotent_and_safe_on_done(self):
        svc, clock = make_service()
        ticket = svc.submit(spec(sizes=(10,)))
        drain(svc, clock)
        assert not svc.cancel(ticket["job_id"])
        assert not svc.cancel("999")


class TestCrashIsolation:
    def test_crash_requeues_into_owning_job_only(self):
        svc, _clock = make_service(workers=2)
        a = svc.submit(spec(tenant="a", name="a1", sizes=(10,) * 4))
        b = svc.submit(spec(tenant="b", name="b1", sizes=(10,) * 4))
        # Deterministic fair-share: w:0 serves a, w:1 serves b.
        leases = svc.lease_free_workers()
        owner = {lease.worker_id: lease.job_id for lease in leases}
        crashed_worker = "w:0"
        owning_job = owner[crashed_worker]
        other_job = b["job_id"] if owning_job == a["job_id"] else a["job_id"]
        before = svc.job(other_job).scheduler.summary()
        report = svc.worker_crashed(crashed_worker)
        assert report["owning_job"] == owning_job
        assert report["requeued_tasks"], "the leased task must requeue"
        # The other job's accounting is untouched by the crash.
        after = svc.job(other_job).scheduler.summary()
        assert after == before
        assert not svc.job(other_job).scheduler.lost_tasks

    def test_replacement_id_is_fresh_and_leasable(self):
        svc, clock = make_service(workers=1)
        svc.submit(spec(sizes=(10, 10)))
        svc.lease("w:0")
        report = svc.worker_crashed("w:0")
        assert report["replacement"] == "w:0:r1"
        assert "w:0:r1" in svc.pool.free_workers()
        drain(svc, clock)
        assert svc.list_jobs()[0]["state"] == "done"

    def test_error_isolated_worker_still_serves_other_tenants(self):
        svc, _clock = make_service(workers=1, isolate_after=1)
        a = svc.submit(spec(tenant="a", name="a1", sizes=(10, 10)))
        svc.submit(spec(tenant="b", name="b1", sizes=(10, 10)))
        lease = svc.lease("w:0")
        assert lease.tenant == "a"
        svc.complete(lease, ok=False, error="boom")
        assert svc.job(a["job_id"]).scheduler.faults.is_isolated("w:0")
        # The worker is dead *to tenant a's job* but not to tenant b's.
        lease2 = svc.lease("w:0")
        assert lease2 is not None
        assert lease2.tenant == "b"


class TestMetricNamespacing:
    def test_per_job_gauges_do_not_collide(self):
        metrics = MetricsRegistry()
        svc, _clock = make_service(metrics=metrics)
        a = svc.submit(spec(tenant="a", name="a1", sizes=(10, 10, 10)))
        b = svc.submit(spec(tenant="b", name="b1", sizes=(10,)))
        depth_a = metrics.gauge(f"job.{a['job_id']}.queue.depth").value
        depth_b = metrics.gauge(f"job.{b['job_id']}.queue.depth").value
        assert (depth_a, depth_b) == (3, 1)
        lease = svc.lease("w:0")
        owner = lease.job_id
        expected = 2 if owner == a["job_id"] else 0
        assert metrics.gauge(f"job.{owner}.queue.depth").value == expected

    def test_service_level_gauges(self):
        metrics = MetricsRegistry()
        svc, clock = make_service(metrics=metrics, max_running_jobs=1)
        svc.submit(spec(name="first"))
        svc.submit(spec(name="second"))
        assert metrics.gauge("service.jobs.running").value == 1
        assert metrics.gauge("service.jobs.parked").value == 1
        drain(svc, clock)
        assert metrics.gauge("service.jobs.running").value == 0
        assert metrics.counter("service.jobs.completed").value == 2
