"""Weighted fair-share: unit picks and delivered-share ratios."""

import pytest

from repro.service.fairshare import FairShareScheduler
from repro.service.jobs import JobSpec
from repro.service.sim import ServiceSimulation


class TestPick:
    def test_least_normalized_usage_wins(self):
        fair = FairShareScheduler({"a": 1.0, "b": 1.0})
        fair.charge("a", 10.0)
        assert fair.pick([("a", "1"), ("b", "2")]) == ("b", "2")

    def test_weight_scales_usage(self):
        fair = FairShareScheduler({"a": 2.0, "b": 1.0})
        fair.charge("a", 10.0)
        fair.charge("b", 6.0)
        # a: 10/2 = 5 < b: 6/1 = 6 — the heavier tenant still wins.
        assert fair.pick([("a", "1"), ("b", "2")]) == ("a", "1")

    def test_tie_breaks_deterministically(self):
        fair = FairShareScheduler()
        assert fair.pick([("b", "2"), ("a", "9"), ("a", "3")]) == ("a", "3")

    def test_empty_candidates(self):
        assert FairShareScheduler().pick([]) is None

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            FairShareScheduler({"a": 0.0})
        with pytest.raises(ValueError):
            FairShareScheduler().charge("a", -1.0)


def contended_usage(sim, result):
    """Fair-share usage snapshot while every tenant was still
    backlogged: the trace entry just before the first job finished."""
    first_finish = min(
        info["makespan"] for info in result.per_job.values()
    )
    snapshot = None
    for when, usage in sim.usage_trace:
        if when >= first_finish:
            break
        snapshot = usage
    assert snapshot is not None
    return snapshot


class TestDeliveredShares:
    """The two-job compute-vs-transfer A/B shape from the issue."""

    def ab_specs(self):
        # Tenant a: many cheap compute tasks. Tenant b: fewer large
        # transfer tasks (1 MiB ≈ 1 virtual second each). Both are
        # backlogged long enough to observe steady-state shares.
        return [
            JobSpec.from_sizes("a", "compute", [1024] * 60, kind="compute", cost=1.0),
            JobSpec.from_sizes(
                "b", "transfer", [1024 * 1024] * 60, kind="transfer", cost=1.0
            ),
        ]

    def run_ab(self, weights):
        sim = ServiceSimulation(
            self.ab_specs(),
            num_workers=4,
            seed=11,
            weights=weights,
            trace_usage=True,
        )
        result = sim.run()
        assert all(info["state"] == "done" for info in result.per_job.values())
        return contended_usage(sim, result)

    def test_equal_weights_split_worker_seconds_evenly(self):
        usage = self.run_ab({"a": 1.0, "b": 1.0})
        ratio = usage["a"] / usage["b"]
        # Compute tasks are short and transfer tasks long, yet the
        # delivered worker-seconds converge to the weight ratio.
        assert 0.7 <= ratio <= 1.4

    def test_weighted_tenant_gets_proportionally_more(self):
        usage = self.run_ab({"a": 3.0, "b": 1.0})
        ratio = usage["a"] / usage["b"]
        assert 2.2 <= ratio <= 3.9

    def test_share_ratio_flips_with_the_weights(self):
        usage = self.run_ab({"a": 1.0, "b": 3.0})
        ratio = usage["b"] / usage["a"]
        assert 1.8 <= ratio <= 3.9
