"""Kill-the-master chaos: the PR's acceptance harness.

A 120-tenant load on the simulated plane, the control plane killed by
script at least twice mid-run and recovered from its write-ahead
journal.  The contract: per-job *task outcomes* byte-identical to an
uninterrupted same-seed run, stale-epoch reports observed and fenced,
no task double-completed, none lost to the crashes.
"""

import pytest

from repro.service.jobs import JobState
from repro.service.sim import run_service_load
from repro.telemetry.metrics import MetricsRegistry

TENANTS = 120
WORKERS = 12
SEED = 2026
KILLS = [4.0, 11.0]


@pytest.fixture(scope="module")
def uninterrupted():
    return run_service_load(TENANTS, seed=SEED, num_workers=WORKERS)


@pytest.fixture(scope="module")
def chaos():
    reg = MetricsRegistry()
    result = run_service_load(
        TENANTS,
        seed=SEED,
        num_workers=WORKERS,
        master_kill_script=KILLS,
        metrics=reg,
    )
    return result, reg


class TestKillTheMaster:
    def test_survived_the_scripted_kills(self, chaos):
        result, reg = chaos
        assert result.recoveries == len(KILLS) >= 2
        assert reg.counter("service.recoveries").value == len(KILLS)
        assert reg.gauge("service.epoch").value == len(KILLS) + 1

    def test_fencing_was_exercised(self, chaos):
        _result, reg = chaos
        assert reg.counter("service.fenced_reports").value > 0

    def test_every_job_still_resolves(self, chaos, uninterrupted):
        result, _reg = chaos
        assert len(result.per_job) == len(uninterrupted.per_job) == TENANTS
        assert all(
            info["state"] == JobState.DONE.value
            for info in result.per_job.values()
        )

    def test_outcomes_byte_identical_to_uninterrupted_run(
        self, chaos, uninterrupted
    ):
        result, _reg = chaos
        assert result.outcome_digest == uninterrupted.outcome_digest
        for job_id, info in result.per_job.items():
            assert info["outcome"] == uninterrupted.per_job[job_id]["outcome"]

    def test_no_double_completion_and_no_lost_tasks(self, chaos):
        result, _reg = chaos
        for info in result.per_job.values():
            summary = info["summary"]
            assert summary["completed"] == summary["total"]
            assert summary["lost"] == 0
            assert summary["failed"] == 0

    def test_kill_run_itself_is_deterministic(self, chaos):
        result, _reg = chaos
        again = run_service_load(
            TENANTS,
            seed=SEED,
            num_workers=WORKERS,
            master_kill_script=KILLS,
        )
        assert again.digest == result.digest
        assert again.outcome_digest == result.outcome_digest

    def test_chaos_composes_with_worker_crashes(self, uninterrupted):
        """Master kills and worker crashes in the same run: outcomes
        must still match the same-seed run with the same *worker*
        crashes but no master kills (worker crashes consume attempts,
        so they are part of the workload, not the chaos)."""
        crash_script = [(6.0, "sim:002"), (9.0, "sim:007")]
        baseline = run_service_load(
            TENANTS,
            seed=SEED,
            num_workers=WORKERS,
            crash_script=crash_script,
        )
        chaotic = run_service_load(
            TENANTS,
            seed=SEED,
            num_workers=WORKERS,
            crash_script=crash_script,
            master_kill_script=KILLS,
        )
        assert chaotic.recoveries == len(KILLS)
        assert chaotic.outcome_digest == baseline.outcome_digest

    def test_compaction_does_not_change_outcomes(self, chaos, uninterrupted):
        result, _reg = chaos
        compacted = run_service_load(
            TENANTS,
            seed=SEED,
            num_workers=WORKERS,
            master_kill_script=KILLS,
            snapshot_every=64,
        )
        assert compacted.outcome_digest == uninterrupted.outcome_digest
        assert compacted.digest == result.digest
