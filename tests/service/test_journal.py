"""Journal codec, damage handling, writer, and stores.

The corruption tests are the satellite contract: a truncated tail or a
bit-flipped CRC must stop decoding cleanly at the last valid record —
reported and counted, never an exception out of the reader.
"""

import pytest

from repro.errors import JournalError
from repro.service.journal import (
    HEADER,
    LEASE,
    OPEN,
    SNAPSHOT,
    SUBMIT,
    JournalWriter,
    MemoryJournalStore,
    decode_records,
    encode_record,
    read_journal,
)
from repro.service.journalfs import FileJournalStore
from repro.telemetry.metrics import MetricsRegistry


def _journal_bytes(*payloads):
    return HEADER + b"".join(encode_record(p) for p in payloads)


class TestCodec:
    def test_round_trip(self):
        data = _journal_bytes(
            {"k": OPEN, "t": 0.0, "epoch": 1, "workers": ["w0"]},
            {"k": LEASE, "t": 1.5, "worker": "w0", "job": "1", "task": 0, "attempt": 1},
        )
        records, damage, valid = decode_records(data)
        assert damage is None
        assert valid == len(data)
        assert [r["k"] for r in records] == [OPEN, LEASE]
        assert records[1]["t"] == 1.5

    def test_unknown_kind_refused_at_encode(self):
        with pytest.raises(JournalError):
            encode_record({"k": "mystery", "t": 0.0})

    def test_bad_magic_raises(self):
        with pytest.raises(JournalError):
            decode_records(b"NOPE" + b"\x01\x00")

    def test_bad_version_raises(self):
        with pytest.raises(JournalError):
            decode_records(b"FRJL" + b"\xff\x00")

    def test_truncated_tail_stops_cleanly(self):
        data = _journal_bytes(
            {"k": OPEN, "t": 0.0, "epoch": 1, "workers": []},
            {"k": SUBMIT, "t": 1.0, "spec": {}, "job": "1", "verdict": "admit"},
        )
        for cut in (1, 5, len(data) // 2):
            records, damage, valid = decode_records(data[:-cut])
            assert damage is not None
            assert damage.reason in ("truncated frame", "truncated record")
            assert valid <= len(data) - cut
            # Everything before the damage still decodes.
            assert all(r["k"] in (OPEN, SUBMIT) for r in records)

    def test_bit_flip_stops_at_crc(self):
        data = bytearray(
            _journal_bytes(
                {"k": OPEN, "t": 0.0, "epoch": 1, "workers": []},
                {"k": SUBMIT, "t": 1.0, "spec": {}, "job": "1", "verdict": "admit"},
            )
        )
        data[-3] ^= 0x40  # flip one bit inside the last record's body
        records, damage, valid = decode_records(bytes(data))
        assert damage is not None
        assert damage.reason in ("crc mismatch", "unparsable body")
        assert [r["k"] for r in records] == [OPEN]
        # The valid prefix is exactly the bytes up to the damaged frame.
        clean, no_damage, _ = decode_records(bytes(data)[:valid])
        assert no_damage is None
        assert len(clean) == 1

    def test_read_journal_uses_latest_snapshot(self):
        data = _journal_bytes(
            {"k": OPEN, "t": 0.0, "epoch": 1, "workers": []},
            {"k": SNAPSHOT, "t": 2.0, "epoch": 1, "state": {"v": 1, "marker": "a"}},
            {"k": SNAPSHOT, "t": 4.0, "epoch": 2, "state": {"v": 1, "marker": "b"}},
            {"k": OPEN, "t": 5.0, "epoch": 3, "workers": []},
        )
        image = read_journal(data)
        assert image.snapshot["marker"] == "b"
        assert [r["k"] for r in image.records] == [OPEN]
        assert image.epoch == 3


class TestWriter:
    def test_lag_and_compaction_due(self):
        store = MemoryJournalStore()
        reg = MetricsRegistry()
        writer = JournalWriter(store, snapshot_every=2, metrics=reg)
        assert not writer.compaction_due
        writer.append(OPEN, 0.0, epoch=1, workers=[])
        writer.append(LEASE, 1.0, worker="w", job="1", task=0, attempt=1)
        assert writer.lag_records == 2
        assert writer.compaction_due
        assert reg.gauge("service.journal.lag_records").value == 2
        writer.compact({"v": 1}, epoch=1, t=1.0)
        assert writer.lag_records == 0
        assert not writer.compaction_due
        image = read_journal(store.read())
        assert image.snapshot == {"v": 1}
        assert image.records == []
        assert reg.counter("service.journal.snapshots").value == 1

    def test_attach_to_damaged_store_refused(self):
        store = MemoryJournalStore()
        writer = JournalWriter(store)
        writer.append(OPEN, 0.0, epoch=1, workers=[])
        store.replace(store.read()[:-2])
        with pytest.raises(JournalError):
            JournalWriter(store)

    def test_reattach_resumes_lag(self):
        store = MemoryJournalStore()
        writer = JournalWriter(store, snapshot_every=10)
        writer.append(OPEN, 0.0, epoch=1, workers=[])
        writer.append(LEASE, 1.0, worker="w", job="1", task=0, attempt=1)
        again = JournalWriter(store, snapshot_every=10)
        assert again.lag_records == 2


class TestFileStore:
    def test_append_read_replace(self, tmp_path):
        path = tmp_path / "svc.journal"
        store = FileJournalStore(path)
        assert store.read() == b""
        writer = JournalWriter(store)
        writer.append(OPEN, 0.0, epoch=1, workers=["w0"])
        assert store.read().startswith(HEADER)
        records, damage, _ = decode_records(store.read())
        assert damage is None and len(records) == 1
        writer.compact({"v": 1}, epoch=1, t=0.0)
        image = read_journal(store.read())
        assert image.snapshot == {"v": 1}
        assert store.size == len(store.read())

    def test_replace_is_atomic_via_rename(self, tmp_path):
        path = tmp_path / "svc.journal"
        store = FileJournalStore(path, sync=False)
        store.append(b"abc")
        store.replace(b"xyz")
        assert path.read_bytes() == b"xyz"
        assert not list(tmp_path.glob("*.tmp*"))
