"""Acceptance load: hundreds of synthetic tenants, deterministically.

These are the issue's acceptance criteria verbatim: ≥100 tenants
admitted on the simulated engine under weighted fair-share, the same
seed replays to byte-identical per-job outcome digests, and a shared
worker dying mid-run leaks no tasks across jobs.
"""

from repro.service.sim import (
    ServiceSimulation,
    run_service_load,
    synthetic_tenants,
)
from repro.telemetry.metrics import MetricsRegistry

TENANTS = 120


class TestSyntheticLoad:
    def test_all_tenants_admitted_and_completed(self):
        result = run_service_load(TENANTS, seed=0)
        assert result.admitted + result.parked == TENANTS
        assert result.rejected == 0
        assert len(result.per_job) == TENANTS
        assert all(
            info["state"] == "done" for info in result.per_job.values()
        )
        # Every task ran exactly once per job.
        for info in result.per_job.values():
            assert info["summary"]["lost"] == 0
            assert info["summary"]["completed"] == info["summary"]["total"]

    def test_same_seed_is_byte_identical(self):
        first = run_service_load(TENANTS, seed=7)
        second = run_service_load(TENANTS, seed=7)
        assert first.digest == second.digest
        assert first.per_job == second.per_job
        assert first.makespan == second.makespan

    def test_different_seed_diverges(self):
        assert (
            run_service_load(60, seed=1).digest
            != run_service_load(60, seed=2).digest
        )

    def test_weighted_load_still_deterministic(self):
        weights = {f"tenant-{i:03d}": 1.0 + (i % 3) for i in range(TENANTS)}
        a = run_service_load(TENANTS, seed=3, weights=weights)
        b = run_service_load(TENANTS, seed=3, weights=weights)
        assert a.digest == b.digest
        assert all(info["state"] == "done" for info in a.per_job.values())

    def test_task_failures_retry_and_complete(self):
        specs = synthetic_tenants(20, seed=5)
        fail = frozenset({("1", 0), ("4", 1), ("9", 0)})
        metrics = MetricsRegistry()
        sim = ServiceSimulation(
            specs, num_workers=6, seed=5, fail_tasks=fail, metrics=metrics
        )
        result = sim.run()
        assert all(info["state"] == "done" for info in result.per_job.values())
        retried = sum(
            metrics.counter(f"job.{job_id}.scheduler.retried").value
            for job_id, _ in fail
        )
        assert retried == len(fail)


class TestCrashLoad:
    CRASHES = ((0.5, "sim:000"), (1.5, "sim:003"), (3.0, "sim:000:r1"))

    def run_with_crashes(self, seed):
        specs = synthetic_tenants(TENANTS, seed=seed)
        sim = ServiceSimulation(
            specs,
            num_workers=8,
            seed=seed,
            crash_script=self.CRASHES,
        )
        return sim.run()

    def test_crashes_leak_no_tasks_across_jobs(self):
        result = self.run_with_crashes(seed=13)
        assert all(
            info["state"] == "done" for info in result.per_job.values()
        )
        for report in result.crash_reports:
            # A crash either interrupted one owning job (whose task
            # requeued into that job) or hit an idle worker.
            if report["owning_job"] is not None:
                assert report["requeued_tasks"]
            else:
                assert report["requeued_tasks"] == []
        # No job lost work: requeued tasks landed back in their owner.
        for info in result.per_job.values():
            assert info["summary"]["lost"] == 0
            assert info["summary"]["completed"] == info["summary"]["total"]

    def test_replacements_join_with_minted_ids(self):
        result = self.run_with_crashes(seed=13)
        replacements = {r["replacement"] for r in result.crash_reports}
        assert "sim:000:r1" in replacements or "sim:003:r1" in replacements
        for rid in replacements:
            base, _, gen = rid.rpartition(":r")
            assert base and gen.isdigit()

    def test_crash_runs_replay_byte_identically(self):
        assert (
            self.run_with_crashes(seed=13).digest
            == self.run_with_crashes(seed=13).digest
        )
