"""Journal recovery: replay equivalence, fencing, corruption, epochs.

The service under test is driven directly (no sim harness) so each
test controls exactly which events hit the journal before the "kill".
"""

import pytest

from repro.errors import JournalError
from repro.service.core import ControlPlaneService
from repro.service.jobs import JobSpec, JobState
from repro.service.journal import JournalWriter, MemoryJournalStore, read_journal
from repro.telemetry.metrics import MetricsRegistry


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def live_service(store, clock, *, snapshot_every=None, metrics=None, **kw):
    journal = JournalWriter(store, snapshot_every=snapshot_every, metrics=metrics)
    return ControlPlaneService(
        ["w0", "w1", "w2"], clock=clock, metrics=metrics, journal=journal, **kw
    )


def drive_some_load(svc, clock):
    """Submissions, leases, completions, a cancel, and a worker crash —
    one of every journaled event kind except fencing."""
    t1 = svc.submit(JobSpec.from_sizes("acme", "etl", [100, 200, 300]))
    t2 = svc.submit(JobSpec.from_sizes("beta", "ml", [400, 500]))
    t3 = svc.submit(JobSpec.from_sizes("beta", "doomed", [50]))
    clock.now = 1.0
    svc.lease_free_workers()
    clock.now = 2.0
    for worker in ("w0", "w1", "w2"):
        lease = svc.pool.lease_of(worker)
        if lease is not None:
            svc.complete(lease)
        clock.now += 0.5
    svc.cancel(t3["job_id"])
    svc.lease_free_workers()
    clock.now = 5.0
    svc.worker_crashed("w1")
    svc.lease_free_workers()
    return t1["job_id"], t2["job_id"], t3["job_id"]


def observable_state(svc):
    """Everything a client could see, minus the epoch-dependent bits."""
    state = svc.capture_state()
    state.pop("epoch")
    for job in state["jobs"]:
        for lease in job["leases"]:
            lease.pop("epoch")
    return state


class TestReplayEquivalence:
    def test_recovered_state_matches_the_dead_incarnation(self):
        clock = Clock()
        store = MemoryJournalStore()
        svc = live_service(store, clock)
        drive_some_load(svc, clock)

        recovered = ControlPlaneService.recover(store, clock=clock)
        assert observable_state(recovered) == observable_state(svc)
        assert recovered.epoch == svc.epoch + 1
        assert recovered.last_recovery.snapshot_used is False
        assert recovered.last_recovery.damage is None

    def test_snapshot_plus_tail_equals_pure_replay(self):
        clock_a, clock_b = Clock(), Clock()
        store_a, store_b = MemoryJournalStore(), MemoryJournalStore()
        # Aggressive compaction on A, never on B: same call sequence.
        svc_a = live_service(store_a, clock_a, snapshot_every=4)
        svc_b = live_service(store_b, clock_b)
        drive_some_load(svc_a, clock_a)
        drive_some_load(svc_b, clock_b)
        assert read_journal(store_a.read()).snapshot is not None
        assert read_journal(store_b.read()).snapshot is None

        rec_a = ControlPlaneService.recover(store_a, clock=clock_a)
        rec_b = ControlPlaneService.recover(store_b, clock=clock_b)
        assert rec_a.last_recovery.snapshot_used is True
        assert observable_state(rec_a) == observable_state(rec_b)

    def test_recover_replays_metrics_into_fresh_registry(self):
        clock = Clock()
        store = MemoryJournalStore()
        svc = live_service(store, clock)
        drive_some_load(svc, clock)
        reg = MetricsRegistry()
        ControlPlaneService.recover(store, clock=clock, metrics=reg)
        assert reg.counter("service.jobs.submitted").value == 3
        assert reg.counter("service.recoveries").value == 1
        assert reg.gauge("service.epoch").value == 2


class TestFencing:
    def test_stale_epoch_report_is_fenced_and_requeued(self):
        clock = Clock()
        store = MemoryJournalStore()
        reg = MetricsRegistry()
        svc = live_service(store, clock, metrics=reg)
        ticket = svc.submit(JobSpec.from_sizes("acme", "etl", [100, 200, 300]))
        old_leases = svc.lease_free_workers()
        assert len(old_leases) == 3

        rec = ControlPlaneService.recover(store, clock=clock, metrics=reg)
        job = rec.job(ticket["job_id"])
        before = dict(job.leases)
        assert len(before) == 3  # rebuilt live twins of the old leases

        clock.now = 2.0
        report = old_leases[0]
        assert rec.complete(report) is False
        assert reg.counter("service.fenced_reports").value == 1
        # The twin was released: worker free again, task back in queue.
        assert report.worker_id in rec.pool.free_workers()
        assert (report.worker_id, report.task_id) not in job.leases
        # Re-lease runs the same attempt — the master failed, not the task.
        release = rec.lease(report.worker_id)
        assert release.task_id == report.task_id
        assert release.attempt == report.attempt
        assert release.epoch == rec.epoch

    def test_fenced_report_without_live_twin_is_just_dropped(self):
        clock = Clock()
        store = MemoryJournalStore()
        reg = MetricsRegistry()
        svc = live_service(store, clock, metrics=reg)
        svc.submit(JobSpec.from_sizes("acme", "etl", [100]))
        (old_lease,) = svc.lease_free_workers()

        rec = ControlPlaneService.recover(store, clock=clock, metrics=reg)
        clock.now = 1.0
        rec.worker_crashed(old_lease.worker_id)  # twin gone with the worker
        free_before = rec.pool.free_workers()
        assert rec.complete(old_lease) is False
        assert reg.counter("service.fenced_reports").value == 1
        assert rec.pool.free_workers() == free_before

    def test_job_finishes_after_fenced_rerun(self):
        clock = Clock()
        store = MemoryJournalStore()
        svc = live_service(store, clock)
        ticket = svc.submit(JobSpec.from_sizes("acme", "etl", [100]))
        (old_lease,) = svc.lease_free_workers()

        rec = ControlPlaneService.recover(store, clock=clock)
        clock.now = 2.0
        rec.complete(old_lease)  # fenced; task requeued
        (new_lease,) = rec.lease_free_workers()
        clock.now = 3.0
        assert rec.complete(new_lease) is True
        job = rec.job(ticket["job_id"])
        assert job.state is JobState.DONE
        assert sorted(job.scheduler.completed) == [0]
        assert len(job.completions) == 1  # no double completion


class TestEpochs:
    def test_epoch_monotonic_over_repeated_recoveries(self):
        clock = Clock()
        store = MemoryJournalStore()
        svc = live_service(store, clock)
        svc.submit(JobSpec.from_sizes("acme", "etl", [100]))
        assert svc.epoch == 1
        first = ControlPlaneService.recover(store, clock=clock)
        assert first.epoch == 2
        second = ControlPlaneService.recover(store, clock=clock)
        assert second.epoch == 3
        # New leases always carry the current epoch.
        (lease,) = second.lease_free_workers()
        assert lease.epoch == 3


class TestCorruptionRecovery:
    def _journal_with_load(self, clock):
        store = MemoryJournalStore()
        svc = live_service(store, clock)
        drive_some_load(svc, clock)
        return store

    def test_truncated_tail_recovers_to_last_valid_record(self):
        clock = Clock()
        store = self._journal_with_load(clock)
        intact = len(read_journal(store.read()).records)
        store.replace(store.read()[:-7])  # torn final write
        reg = MetricsRegistry()
        rec = ControlPlaneService.recover(store, clock=clock, metrics=reg)
        assert rec.last_recovery.damage is not None
        assert reg.counter("service.journal.records_dropped").value == 1
        # The store was truncated back to the valid prefix: a second
        # recovery sees a clean journal (one record shorter, plus the
        # open record the first recovery appended).
        again = ControlPlaneService.recover(store, clock=clock)
        assert again.last_recovery.damage is None
        assert len(read_journal(store.read()).records) <= intact + 2

    def test_bit_flip_recovers_cleanly(self):
        clock = Clock()
        store = self._journal_with_load(clock)
        data = bytearray(store.read())
        data[len(data) // 2] ^= 0x10
        store.replace(bytes(data))
        reg = MetricsRegistry()
        rec = ControlPlaneService.recover(store, clock=clock, metrics=reg)
        assert rec.last_recovery.damage is not None
        assert reg.counter("service.journal.records_dropped").value == 1
        assert rec.epoch >= 2  # a working service came back regardless

    def test_empty_journal_is_unrecoverable(self):
        with pytest.raises(JournalError):
            ControlPlaneService.recover(MemoryJournalStore(), clock=Clock())


class TestAsyncRuntimeRecovery:
    def test_kill_and_recover_the_asyncio_runtime(self):
        import asyncio

        from repro.service.aio import AsyncServiceRuntime

        store = MemoryJournalStore()

        async def main():
            runtime = AsyncServiceRuntime(
                num_workers=2,
                duration_fn=lambda lease, spec: 0.002,
                journal_store=store,
            )
            ticket = runtime.submit(
                JobSpec.from_sizes("acme", "etl", [10, 10, 10, 10])
            )
            # "Kill": abandon the runtime mid-flight, tasks and all.
            for task in list(runtime._tasks):
                task.cancel()
            revived = AsyncServiceRuntime.recovered(
                store, duration_fn=lambda lease, spec: 0.002
            )
            assert revived.service.epoch == 2
            job = revived.service.job(ticket["job_id"])
            assert job is not None and job.spec.name == "etl"
            # Fence whatever the dead incarnation had leased, then
            # let the recovered incarnation finish the job for real.
            for lease in list(job.leases.values()):
                assert revived.service.complete(lease) is False  # fenced
            revived._pump()
            await revived.drain()
            assert revived.service.job(ticket["job_id"]).state is JobState.DONE

        asyncio.run(main())
