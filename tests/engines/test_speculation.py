"""Tests for speculative execution (backup tasks, extension)."""


from repro.cloud.cluster import ClusterSpec
from repro.cloud.instance import C1_XLARGE, M1_SMALL
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind, strategy_for
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme, generate_groups
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.transfer.base import TransferProtocol


class _Raw(TransferProtocol):
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1


def make_scheduler(n_files=4, workers=("w0", "w1")):
    groups = generate_groups(synthetic_dataset("d", n_files, 10), PartitionScheme.SINGLE)
    sched = MasterScheduler(groups, strategy_for(StrategyKind.REAL_TIME))
    for w in workers:
        sched.register_worker(w)
    sched.partition_among()
    return sched


class TestSchedulerSpeculation:
    def test_duplicates_in_flight_task(self):
        sched = make_scheduler(n_files=1)
        original = sched.next_for("w0")
        copy = sched.speculate_for("w1")
        assert copy is not None
        assert copy.task_id == original.task_id
        assert copy.worker_id == "w1"

    def test_no_speculation_when_nothing_in_flight(self):
        sched = make_scheduler(n_files=1)
        assert sched.speculate_for("w1") is None

    def test_never_duplicates_own_task(self):
        sched = make_scheduler(n_files=1)
        sched.next_for("w0")
        assert sched.speculate_for("w0") is None

    def test_at_most_one_backup(self):
        sched = make_scheduler(n_files=1, workers=("w0", "w1", "w2"))
        sched.next_for("w0")
        assert sched.speculate_for("w1") is not None
        assert sched.speculate_for("w2") is None

    def test_first_completion_wins(self):
        sched = make_scheduler(n_files=1)
        sched.next_for("w0")
        sched.speculate_for("w1")
        sched.report_success("w1", 0)  # the backup wins
        sched.report_success("w0", 0)  # original's report discarded
        assert sched.completed[0].worker_id == "w1"
        assert sched.summary()["completed"] == 1
        assert sched.done

    def test_loser_error_is_harmless(self):
        sched = make_scheduler(n_files=1)
        sched.next_for("w0")
        sched.speculate_for("w1")
        sched.report_success("w0", 0)
        retried = sched.report_error("w1", 0, "late failure")
        assert not retried
        assert sched.summary()["completed"] == 1
        assert not sched.failed_tasks

    def test_copy_failure_defers_to_running_original(self):
        sched = make_scheduler(n_files=1)
        sched.next_for("w0")
        sched.speculate_for("w1")
        assert not sched.report_error("w1", 0, "backup died")
        assert not sched.failed_tasks  # the original is still running
        sched.report_success("w0", 0)
        assert sched.done

    def test_worker_loss_with_surviving_copy(self):
        sched = make_scheduler(n_files=1)
        sched.next_for("w0")
        sched.speculate_for("w1")
        sched.worker_lost("w0")
        assert sched.lost_tasks == []  # copy still running
        sched.report_success("w1", 0)
        assert sched.done
        assert sched.summary()["completed"] == 1

    def test_isolated_worker_cannot_speculate(self):
        sched = make_scheduler(n_files=1, workers=("w0", "w1"))
        sched.next_for("w0")
        sched.faults.record_loss("w1")
        assert sched.speculate_for("w1") is None


class TestEngineSpeculation:
    def _run(self, speculative):
        # Heterogeneous cluster: the slow node strands the tail task
        # unless a fast node backs it up.
        spec = ClusterSpec(
            num_workers=2, worker_instance_types=(C1_XLARGE, M1_SMALL)
        )
        engine = SimulatedEngine(
            spec,
            SimulationOptions(protocol=_Raw(), speculative=speculative),
        )
        return engine.run(
            synthetic_dataset("s", 20, "1 KB", seed=1),
            compute_model=FixedComputeModel(8.0),
            strategy=StrategyKind.REAL_TIME,
        )

    def test_speculation_beats_stragglers(self):
        plain = self._run(False)
        spec = self._run(True)
        assert spec.makespan < plain.makespan

    def test_all_unique_tasks_complete(self):
        outcome = self._run(True)
        assert outcome.tasks_completed == outcome.tasks_total
        ok_ids = {r.task_id for r in outcome.task_records if r.ok}
        assert ok_ids == set(range(20))

    def test_no_speculation_under_static_strategy(self):
        spec = ClusterSpec(num_workers=2)
        engine = SimulatedEngine(
            spec, SimulationOptions(protocol=_Raw(), speculative=True)
        )
        outcome = engine.run(
            synthetic_dataset("s", 8, "1 KB", seed=2),
            compute_model=FixedComputeModel(1.0),
            strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
        )
        assert outcome.all_tasks_ok
        # No duplicate records under static assignment.
        assert len(outcome.task_records) == 8
