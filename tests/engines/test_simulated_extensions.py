"""Tests for the opt-in engine extensions: prefetch, LPT chunking,
master outage/recovery, output snapshots on scale-down."""

import pytest

from repro.cloud.cluster import ClusterSpec
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel, StochasticComputeModel
from repro.engines.simulated import ElasticAction, SimulatedEngine, SimulationOptions

SPEC = ClusterSpec(num_workers=4)


def dataset(n=60, size="6 MB"):
    return synthetic_dataset("ext", n, size, seed=1)


class TestPrefetch:
    def _run(self, prefetch_depth):
        options = SimulationOptions(prefetch_depth=prefetch_depth)
        return SimulatedEngine(SPEC, options).run(
            dataset(),
            compute_model=FixedComputeModel(2.0),
            strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
        )

    def test_prefetch_completes_everything(self):
        outcome = self._run(1)
        assert outcome.all_tasks_ok

    def test_prefetch_improves_overlap(self):
        base = self._run(0)
        pre = self._run(1)
        assert pre.makespan < base.makespan

    def test_prefetch_ignored_for_staged_strategies(self):
        options = SimulationOptions(prefetch_depth=1)
        outcome = SimulatedEngine(SPEC, options).run(
            dataset(),
            compute_model=FixedComputeModel(2.0),
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
        )
        assert outcome.all_tasks_ok

    def test_prefetch_with_worker_failure(self):
        from repro.cloud.failures import FailureSchedule

        options = SimulationOptions(prefetch_depth=1)
        outcome = SimulatedEngine(SPEC, options).run(
            dataset(n=40, size="1 KB"),
            compute_model=FixedComputeModel(3.0),
            strategy=StrategyKind.REAL_TIME,
            failure_schedule=FailureSchedule.of((4.0, "worker1")),
        )
        # Accounting stays consistent even with an in-flight prefetch
        # on the dying node.
        assert outcome.tasks_completed + outcome.tasks_lost == outcome.tasks_total
        assert outcome.tasks_lost >= 1

    def test_prefetch_task_records_complete(self):
        outcome = self._run(1)
        assert sorted(r.task_id for r in outcome.task_records) == list(range(30))


class TestChunkingDisciplines:
    def _run(self, chunking, model=None):
        return SimulatedEngine(SPEC).run(
            dataset(),
            compute_model=model or StochasticComputeModel(5.0, cv=0.8, seed=3),
            strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
            static_chunking=chunking,
        )

    def test_lpt_cost_beats_contiguous_on_skew(self):
        contiguous = self._run("contiguous")
        lpt = self._run("lpt_cost")
        assert lpt.all_tasks_ok
        assert lpt.makespan <= contiguous.makespan

    def test_lpt_size_completes(self):
        outcome = self._run("lpt_size")
        assert outcome.all_tasks_ok

    def test_unknown_chunking_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            self._run("zigzag")

    def test_real_time_still_beats_oracle_static_under_uncertainty(self):
        # Even cost-oracle LPT can't dodge the pull discipline's
        # adaptivity... but with a *perfect* oracle and deterministic
        # costs it should at least come close. We assert the weaker,
        # correct property: real-time <= contiguous static.
        rt = SimulatedEngine(SPEC).run(
            dataset(n=60, size="1 KB"),
            compute_model=StochasticComputeModel(5.0, cv=0.8, seed=3),
            strategy=StrategyKind.REAL_TIME,
        )
        static = SimulatedEngine(SPEC).run(
            dataset(n=60, size="1 KB"),
            compute_model=StochasticComputeModel(5.0, cv=0.8, seed=3),
            strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
        )
        assert rt.makespan <= static.makespan * 1.05


class TestMasterOutage:
    def _run(self, **kwargs):
        return SimulatedEngine(SPEC).run(
            dataset(),
            compute_model=FixedComputeModel(2.0),
            strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
            **kwargs,
        )

    def test_recovered_outage_completes_with_delay(self):
        base = self._run()
        outage = self._run(master_failure_at=10.0, master_recovery_time=30.0)
        assert outage.all_tasks_ok
        assert outage.makespan > base.makespan
        assert outage.extra["master_failed"]
        assert outage.extra["master_recovered"]

    def test_permanent_loss_terminates_early(self):
        outcome = self._run(master_failure_at=10.0)
        assert outcome.extra["master_failed"]
        assert not outcome.extra["master_recovered"]
        assert outcome.tasks_completed < outcome.tasks_total
        # The run ends at the failure instant, not at a timeout.
        assert outcome.makespan == pytest.approx(10.0, abs=0.5)

    def test_local_data_unaffected_by_outage_before_it(self):
        # With pre-partitioned-local data the master is only needed for
        # control; an outage after partitioning barely matters.
        outcome = SimulatedEngine(SPEC).run(
            dataset(n=40, size="1 KB"),
            compute_model=FixedComputeModel(2.0),
            strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
            master_failure_at=1.0,
            master_recovery_time=5.0,
        )
        assert outcome.all_tasks_ok


class TestOutputSnapshots:
    def _run(self, snapshot, remove_at=25.0):
        return SimulatedEngine(SPEC).run(
            dataset(),
            compute_model=FixedComputeModel(2.0),
            strategy=StrategyKind.REAL_TIME,
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
            output_bytes_per_task=1_000_000,
            elasticity=[
                ElasticAction(
                    time=remove_at, action="remove", node_id="worker2", snapshot=snapshot
                )
            ],
        )

    def test_snapshot_captures_outputs(self):
        outcome = self._run(snapshot=True)
        assert outcome.extra["outputs_snapshotted_bytes"] > 0
        assert outcome.extra["snapshot_time"] > 0
        kinds = [e.kind for e in outcome.controller_events]
        assert "OUTPUTS_SNAPSHOTTED" in kinds

    def test_no_snapshot_loses_outputs(self):
        outcome = self._run(snapshot=False)
        assert outcome.extra["outputs_snapshotted_bytes"] == 0

    def test_outputs_do_not_break_completion(self):
        outcome = SimulatedEngine(SPEC).run(
            dataset(n=20, size="1 KB"),
            compute_model=FixedComputeModel(0.5),
            strategy=StrategyKind.REAL_TIME,
            output_bytes_per_task=500_000,
        )
        assert outcome.all_tasks_ok
