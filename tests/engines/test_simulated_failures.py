"""Failure semantics on the simulated engine (§V-A Robust)."""


from repro.cloud.cluster import ClusterSpec
from repro.cloud.failures import FailureSchedule
from repro.core.fault import RetryPolicy
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.transfer.base import TransferProtocol


class _Raw(TransferProtocol):
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1


def run_with_failure(
    fail_at=3.0,
    victim="worker1",
    strategy=StrategyKind.REAL_TIME,
    retry_policy=None,
    n_files=32,
    cost=2.0,
    workers=2,
):
    spec = ClusterSpec(num_workers=workers)
    engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
    ds = synthetic_dataset("d", n_files, "1 KB")
    return engine.run(
        ds,
        compute_model=FixedComputeModel(cost),
        strategy=strategy,
        grouping=PartitionScheme.SINGLE,
        failure_schedule=FailureSchedule.of((fail_at, victim)),
        retry_policy=retry_policy,
    )


class TestPaperFaithful:
    def test_real_time_isolates_and_loses_in_flight(self):
        outcome = run_with_failure()
        # The failed node's in-flight tasks (up to 4 clones) are lost,
        # everything else completes on the survivor.
        assert 0 < outcome.tasks_lost <= 4
        assert outcome.tasks_completed == outcome.tasks_total - outcome.tasks_lost
        assert outcome.extra["failures"]  # reported to the controller

    def test_static_mode_loses_whole_chunk_remainder(self):
        outcome = run_with_failure(strategy=StrategyKind.PRE_PARTITIONED_REMOTE)
        # Half the tasks were reserved for the dead worker; those not
        # yet done are lost.
        assert outcome.tasks_lost >= 1
        assert outcome.tasks_completed + outcome.tasks_lost == outcome.tasks_total

    def test_failure_records_in_controller_events(self):
        outcome = run_with_failure()
        kinds = [e.kind for e in outcome.controller_events]
        assert "WORKER_FAILED" in kinds

    def test_failed_tasks_have_records(self):
        outcome = run_with_failure()
        aborted = [r for r in outcome.task_records if not r.ok]
        assert len(aborted) >= 1
        assert all("vm failure" in r.error for r in aborted)


class TestRetryExtension:
    def test_real_time_retry_completes_everything(self):
        outcome = run_with_failure(retry_policy=RetryPolicy.resilient())
        assert outcome.tasks_lost == 0
        assert outcome.tasks_completed == outcome.tasks_total

    def test_static_retry_rebalances_chunk(self):
        outcome = run_with_failure(
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            retry_policy=RetryPolicy.resilient(),
        )
        assert outcome.tasks_lost == 0
        assert outcome.tasks_completed == outcome.tasks_total

    def test_retried_tasks_show_multiple_attempts(self):
        outcome = run_with_failure(retry_policy=RetryPolicy.resilient())
        assert any(r.attempt > 1 for r in outcome.task_records if r.ok)


class TestWholeClusterLoss:
    def test_all_workers_dead_terminates_with_losses(self):
        spec = ClusterSpec(num_workers=2)
        engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
        ds = synthetic_dataset("d", 12, "1 KB")
        outcome = engine.run(
            ds,
            compute_model=FixedComputeModel(5.0),
            strategy=StrategyKind.REAL_TIME,
            failure_schedule=FailureSchedule.of((3.0, "worker1"), (4.0, "worker2")),
        )
        # Nobody survives long enough to finish a 5 s task.
        assert outcome.tasks_completed == 0
        # In-flight tasks are recorded lost; never-assigned queue
        # entries are simply unprocessed (neither completed nor lost).
        assert outcome.tasks_lost >= 1
        assert outcome.tasks_completed + outcome.tasks_lost <= outcome.tasks_total

    def test_random_failures_with_mttf(self):
        spec = ClusterSpec(num_workers=4)
        engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw(), seed=5))
        ds = synthetic_dataset("d", 20, "1 KB")
        outcome = engine.run(
            ds,
            compute_model=FixedComputeModel(1.0),
            strategy=StrategyKind.REAL_TIME,
            failure_mttf=20.0,
            retry_policy=RetryPolicy.resilient(max_attempts=10),
        )
        # Either everything completed before the cluster died, or the
        # accounting still balances (unassigned queue entries are
        # neither completed nor lost).
        assert outcome.tasks_completed + outcome.tasks_lost <= outcome.tasks_total
