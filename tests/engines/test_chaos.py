"""End-to-end chaos paths: silent death, link faults, transfer faults.

These exercise the closed failure loop — injection (cloud layer) →
detection (heartbeats / failed transfers) → recovery (requeue, retry,
isolation, elasticity) — on the simulated engine.
"""

import pytest

from repro.cloud.cluster import ClusterSpec
from repro.cloud.failures import FailureSchedule, LinkFaultSchedule
from repro.core.fault import RetryPolicy
from repro.core.monitoring import HeartbeatConfig
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.errors import ConfigurationError
from repro.transfer.base import TransferProtocol
from repro.transfer.retry import TransferRetryPolicy


class _Raw(TransferProtocol):
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1


def run_chaos(
    *,
    n_files=24,
    file_size="1 KB",
    cost=1.0,
    workers=2,
    strategy=StrategyKind.REAL_TIME,
    retry_policy=None,
    options=None,
    **run_kw,
):
    spec = ClusterSpec(num_workers=workers)
    engine = SimulatedEngine(spec, options or SimulationOptions(protocol=_Raw()))
    ds = synthetic_dataset("d", n_files, file_size)
    return engine.run(
        ds,
        compute_model=FixedComputeModel(cost),
        strategy=strategy,
        grouping=PartitionScheme.SINGLE,
        retry_policy=retry_policy,
        **run_kw,
    )


def heartbeat_options(**kw):
    return SimulationOptions(
        protocol=_Raw(),
        heartbeat_interval=1.0,
        heartbeat_config=HeartbeatConfig(suspect_after=2.0, dead_after=5.0),
        **kw,
    )


class TestSilentFailure:
    def test_silent_death_without_heartbeats_is_rejected(self):
        with pytest.raises(ConfigurationError):
            run_chaos(
                failure_schedule=FailureSchedule.of((3.0, "worker1", "silent")),
            )

    def test_heartbeat_sweep_declares_silent_node_dead(self):
        outcome = run_chaos(
            cost=2.0,
            options=heartbeat_options(),
            failure_schedule=FailureSchedule.of((3.0, "worker1", "silent")),
        )
        assert outcome.extra["nodes_declared_dead"] == ["worker1"]
        kinds = [e.kind for e in outcome.controller_events]
        assert "NODE_DECLARED_DEAD" in kinds
        assert "WORKER_FAILED" in kinds
        # Paper-faithful retry: the dead node's in-flight tasks are lost,
        # but the run still terminates (no hang on a silent worker).
        assert outcome.tasks_lost >= 1
        assert outcome.tasks_completed + outcome.tasks_lost == outcome.tasks_total

    def test_silent_death_with_retry_loses_nothing(self):
        outcome = run_chaos(
            cost=2.0,
            options=heartbeat_options(),
            failure_schedule=FailureSchedule.of((3.0, "worker1", "silent")),
            retry_policy=RetryPolicy.resilient(),
        )
        assert outcome.tasks_lost == 0
        assert outcome.tasks_completed == outcome.tasks_total
        assert outcome.extra["nodes_declared_dead"] == ["worker1"]

    def test_crash_failure_needs_no_heartbeat(self):
        # Connection-reported (non-silent) deaths keep working with the
        # liveness layer off — regression guard for the default path.
        outcome = run_chaos(
            cost=2.0,
            failure_schedule=FailureSchedule.of((3.0, "worker1")),
            retry_policy=RetryPolicy.resilient(),
        )
        assert outcome.tasks_completed == outcome.tasks_total
        assert outcome.extra["nodes_declared_dead"] == []

    def test_crash_not_double_declared_by_sweep(self):
        # A crashed node stops beating too; the sweep must not re-declare
        # a death the broken connection already reported.
        outcome = run_chaos(
            cost=2.0,
            options=heartbeat_options(),
            failure_schedule=FailureSchedule.of((3.0, "worker1")),
            retry_policy=RetryPolicy.resilient(),
        )
        assert outcome.extra["nodes_declared_dead"] == []
        kinds = [e.kind for e in outcome.controller_events]
        assert "WORKER_FAILED" in kinds
        assert "NODE_DECLARED_DEAD" not in kinds
        assert outcome.tasks_completed == outcome.tasks_total

    def test_detection_latency_bounded_by_config(self):
        outcome = run_chaos(
            cost=2.0,
            options=heartbeat_options(),
            failure_schedule=FailureSchedule.of((3.0, "worker1", "silent")),
            retry_policy=RetryPolicy.resilient(),
        )
        declared = [
            e for e in outcome.controller_events if e.kind == "NODE_DECLARED_DEAD"
        ]
        assert len(declared) == 1
        # Death at 3.0, last beat in [2, 3], dead after 5 s of silence,
        # sweep every 1 s: declared within (7, 9] plus sweep phase.
        assert 7.0 < declared[0].time <= 9.1


class TestTransferFaults:
    def test_resilient_retry_completes_everything(self):
        outcome = run_chaos(
            file_size="1 MB",
            options=SimulationOptions(
                protocol=_Raw(),
                transfer_retry=TransferRetryPolicy.resilient(),
                seed=3,
            ),
            transfer_fault_rate=0.2,
        )
        assert outcome.tasks_completed == outcome.tasks_total
        assert outcome.extra["transfer_failures"] == 0
        # Retries actually happened: more attempts than transfers.
        counters = outcome.extra["metrics"]["counters"]
        assert counters["transfer.retries"] > 0
        assert counters["transfer.faults"] > 0

    def test_paper_faithful_faults_degrade_to_task_errors(self):
        outcome = run_chaos(
            file_size="1 MB",
            options=SimulationOptions(protocol=_Raw(), seed=3),
            transfer_fault_rate=0.4,
        )
        # Single-attempt transfers: some fail, tasks error out, the
        # erroring workers are isolated — but nothing crashes and the
        # books still balance.
        assert outcome.extra["transfer_failures"] > 0
        assert outcome.tasks_failed + outcome.tasks_lost >= 1
        resolved = (
            outcome.tasks_completed + outcome.tasks_failed + outcome.tasks_lost
        )
        assert resolved <= outcome.tasks_total
        failed = [r for r in outcome.task_records if not r.ok]
        assert any("fetch failed" in r.error for r in failed)

    def test_deterministic_under_chaos(self):
        outcomes = []
        for _ in range(2):
            outcome = run_chaos(
                file_size="1 MB",
                options=SimulationOptions(
                    protocol=_Raw(),
                    transfer_retry=TransferRetryPolicy.resilient(),
                    seed=7,
                ),
                transfer_fault_rate=0.3,
            )
            outcomes.append(
                (
                    outcome.makespan,
                    outcome.tasks_completed,
                    outcome.extra["transfer_attempts"],
                )
            )
        assert outcomes[0] == outcomes[1]


class TestLinkFaults:
    def test_blackout_window_slows_the_run(self):
        kw = dict(file_size="4 MB", n_files=8, cost=0.1)
        clean = run_chaos(**kw)
        faulted = run_chaos(
            **kw,
            link_fault_schedule=LinkFaultSchedule.of(
                (0.5, "worker1.down", 20.0, 0.0),
                (0.5, "worker2.down", 20.0, 0.0),
            ),
        )
        assert faulted.extra["link_faults"] == 2
        assert faulted.makespan > clean.makespan
        # Flows resume after the window: the run still completes fully.
        assert faulted.tasks_completed == faulted.tasks_total

    def test_random_link_faults_deterministic(self):
        kw = dict(file_size="2 MB", n_files=12, cost=1.0)
        runs = []
        for _ in range(2):
            outcome = run_chaos(
                **kw,
                options=SimulationOptions(protocol=_Raw(), seed=5),
                link_fault_mtbf=1.0,
                link_fault_outage=1.0,
            )
            runs.append((outcome.makespan, outcome.extra["link_faults"]))
        assert runs[0] == runs[1]
        assert runs[0][1] >= 1


class TestIsolationElasticity:
    def test_node_isolation_notifies_elasticity_manager(self):
        outcome = run_chaos(
            cost=2.0,
            failure_schedule=FailureSchedule.of((3.0, "worker1")),
            retry_policy=RetryPolicy.resilient(),
        )
        counters = outcome.extra["metrics"]["counters"]
        assert counters["elasticity.removed"] == 1


class TestInjectedWorkerDeath:
    """Task-keyed crash/hang hooks — the simulated twins of the real
    engines' ``crash_worker_on_task`` / ``hang_worker_on_task``."""

    def test_injected_crash_retried_on_survivor(self):
        outcome = run_chaos(
            n_files=6,
            cost=2.0,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"worker1:0": 1},
            multicore=False,
        )
        assert outcome.tasks_completed == outcome.tasks_total
        kinds = [e.kind for e in outcome.controller_events]
        assert "WORKER_FAILED" in kinds
        assert "NODE_DECLARED_DEAD" not in kinds  # connection-reported

    def test_injected_crash_without_retry_loses_tasks(self):
        outcome = run_chaos(
            n_files=6,
            cost=2.0,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            crash_worker_on_task={"worker1:0": 1},
            multicore=False,
        )
        assert outcome.tasks_lost >= 1
        assert outcome.tasks_completed + outcome.tasks_lost == outcome.tasks_total

    def test_injected_hang_detected_by_sweep(self):
        outcome = run_chaos(
            n_files=6,
            cost=2.0,
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            options=heartbeat_options(),
            retry_policy=RetryPolicy.resilient(),
            hang_worker_on_task={"worker1:0": 1},
            multicore=False,
        )
        assert outcome.tasks_completed == outcome.tasks_total
        assert outcome.extra["nodes_declared_dead"] == ["worker1"]
        assert "NODE_DECLARED_DEAD" in [e.kind for e in outcome.controller_events]

    def test_injected_hang_without_heartbeats_rejected(self):
        with pytest.raises(ConfigurationError):
            run_chaos(
                n_files=6,
                hang_worker_on_task={"worker1:0": 1},
                multicore=False,
            )

    def test_any_task_sentinel_fires_on_first_draw(self):
        from repro.runtime.faults import ANY_TASK

        outcome = run_chaos(
            n_files=6,
            cost=2.0,
            retry_policy=RetryPolicy.resilient(),
            crash_worker_on_task={"worker1:0": ANY_TASK},
            multicore=False,
        )
        assert outcome.tasks_completed == outcome.tasks_total
        assert "WORKER_FAILED" in [e.kind for e in outcome.controller_events]
