"""Heterogeneous-cluster semantics (§III-A's motivation for real-time)."""

import pytest

from repro.cloud.cluster import ClusterSpec, Provisioner
from repro.cloud.instance import C1_XLARGE, M1_SMALL, InstanceType
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine
from repro.errors import ProvisioningError
from repro.sim import Environment


class TestInstanceSpeed:
    def test_core_speed_validation(self):
        with pytest.raises(ProvisioningError):
            InstanceType("bad", 1, 1, 1, 1, 1, 1, core_speed=0)

    def test_m1_small_is_half_speed(self):
        assert M1_SMALL.core_speed == 0.5
        assert C1_XLARGE.core_speed == 1.0


class TestHeterogeneousProvisioning:
    def test_worker_types_cycle(self):
        spec = ClusterSpec(
            num_workers=4, worker_instance_types=(C1_XLARGE, M1_SMALL)
        )
        cluster = Provisioner(Environment()).provision_now(spec)
        types = [vm.itype.name for vm in cluster.worker_vms]
        assert types == ["c1.xlarge", "m1.small", "c1.xlarge", "m1.small"]

    def test_empty_tuple_uses_default(self):
        cluster = Provisioner(Environment()).provision_now(ClusterSpec(num_workers=2))
        assert all(vm.itype is C1_XLARGE for vm in cluster.worker_vms)


class TestHeterogeneousExecution:
    def _run(self, strategy, spec):
        dataset = synthetic_dataset("h", 48, "1 KB", seed=1)
        return SimulatedEngine(spec).run(
            dataset,
            compute_model=FixedComputeModel(4.0),
            strategy=strategy,
        )

    def test_slow_cores_stretch_tasks(self):
        fast = self._run(
            StrategyKind.PRE_PARTITIONED_LOCAL,
            ClusterSpec(num_workers=1, instance_type=C1_XLARGE),
        )
        slow_type = InstanceType(
            "slowbox", 4, 4_000_000_000, 40_000_000_000,
            8e8, 6.4e8, 1e8, core_speed=0.5,
        )
        slow = self._run(
            StrategyKind.PRE_PARTITIONED_LOCAL,
            ClusterSpec(num_workers=1, instance_type=slow_type),
        )
        assert slow.makespan == pytest.approx(fast.makespan * 2.0, rel=0.05)

    def test_real_time_wins_on_mixed_hardware(self):
        spec = ClusterSpec(
            num_workers=4, worker_instance_types=(C1_XLARGE, M1_SMALL)
        )
        static = self._run(StrategyKind.PRE_PARTITIONED_LOCAL, spec)
        real_time = self._run(StrategyKind.REAL_TIME, spec)
        assert real_time.makespan < static.makespan

    def test_static_competitive_on_uniform_hardware(self):
        # The paper's own caveat: pre-partitioning "works best if every
        # computation is more or less identical" — on uniform hardware
        # with fixed costs real-time's pull RTTs make it no faster.
        spec = ClusterSpec(num_workers=4)
        static = self._run(StrategyKind.PRE_PARTITIONED_LOCAL, spec)
        real_time = self._run(StrategyKind.REAL_TIME, spec)
        assert static.makespan <= real_time.makespan * 1.02

    def test_slow_nodes_complete_fewer_tasks_under_real_time(self):
        spec = ClusterSpec(
            num_workers=2, worker_instance_types=(C1_XLARGE, M1_SMALL)
        )
        outcome = self._run(StrategyKind.REAL_TIME, spec)
        per_node: dict[str, int] = {}
        for record in outcome.task_records:
            per_node[record.node_id] = per_node.get(record.node_id, 0) + 1
        # worker1 = c1.xlarge (4 fast cores), worker2 = m1.small (1 slow
        # core): the fast node must do the lion's share.
        assert per_node["worker1"] > per_node["worker2"] * 3
