"""Observability on the simulated engine: deterministic merged traces,
sampled gauges, and SLO probes over simulated time."""

from repro.cloud.cluster import ClusterSpec
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.telemetry import (
    SloProbe,
    Telemetry,
    dump_chrome_trace,
    dump_metrics_json,
)
from repro.transfer.base import TransferProtocol


class _Raw(TransferProtocol):
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1


def run_traced(*, seed=7, slo_probes=(), sample_interval=0.0, **kwargs):
    tel = Telemetry(record=True)
    engine = SimulatedEngine(
        ClusterSpec(num_workers=2),
        SimulationOptions(
            protocol=_Raw(),
            heartbeat_interval=1.0,
            slo_probes=tuple(slo_probes),
            sample_interval=sample_interval,
            seed=seed,
        ),
    )
    dataset = synthetic_dataset("obs", 6, "1 MB")
    outcome = engine.run(
        dataset,
        compute_model=FixedComputeModel(3.0),
        strategy=StrategyKind.REAL_TIME,
        telemetry=tel,
        **kwargs,
    )
    return outcome, tel


class TestDeterministicTraces:
    def test_same_seed_byte_identical_trace_and_metrics(self):
        _, tel_a = run_traced(seed=11)
        _, tel_b = run_traced(seed=11)
        assert dump_chrome_trace(tel_a) == dump_chrome_trace(tel_b)
        assert dump_metrics_json(tel_a.metrics) == dump_metrics_json(tel_b.metrics)

    def test_slo_breach_values_are_deterministic(self):
        probes = [SloProbe("lat", "task.latency_seconds.p99", "<", 1e-6)]
        out_a, _ = run_traced(seed=3, slo_probes=probes)
        out_b, _ = run_traced(seed=3, slo_probes=probes)
        assert out_a.extra["slo_breaches"] == out_b.extra["slo_breaches"]
        assert out_a.extra["slo_breaches"]


class TestSampledSignals:
    def test_queue_depth_sampled_on_sim_clock(self):
        import pytest

        _, tel = run_traced(sample_interval=0.5)
        times = [e.time for e in tel.events if e.key == "queue.depth"]
        assert times
        # Fixed sim-time cadence: consecutive samples sit exactly one
        # interval apart — no wall-clock jitter can leak in.
        for earlier, later in zip(times, times[1:]):
            assert later - earlier == pytest.approx(0.5)

    def test_latency_histograms_populated(self):
        _, tel = run_traced()
        lat = tel.metrics.histogram("task.latency_seconds")
        wait = tel.metrics.histogram("queue.wait_seconds")
        assert lat.count == 6
        assert wait.count == 6
        assert lat.quantile(0.99) >= lat.quantile(0.50) > 0


class TestSimSlo:
    def test_edge_triggered_breach_in_outcome_extra(self):
        probes = [
            SloProbe("lat", "task.latency_seconds.p99", "<", 1e-6),
            SloProbe("done", "run.completion_rate", ">=", 0.0),
        ]
        outcome, tel = run_traced(slo_probes=probes)
        breached = {b[0] for b in outcome.extra["slo_breaches"]}
        assert breached == {"lat"}
        assert sum(1 for e in tel.events if e.key == "slo.breach") == 1

    def test_probes_without_recording_hub(self):
        # No ``telemetry=`` hub: probes still evaluate against the
        # engine's private metrics registry. The completion-rate gauge
        # sits below target until the run finishes, then recovers —
        # the mid-run breach stays on the record.
        engine = SimulatedEngine(
            ClusterSpec(num_workers=2),
            SimulationOptions(
                protocol=_Raw(),
                slo_probes=(SloProbe("done", "run.completion_rate", ">=", 0.99),),
                sample_interval=0.25,
                seed=1,
            ),
        )
        outcome = engine.run(
            synthetic_dataset("obs", 6, "1 MB"),
            compute_model=FixedComputeModel(5.0),
        )
        assert [b[0] for b in outcome.extra["slo_breaches"]] == ["done"]
