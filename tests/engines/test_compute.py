"""Unit tests for compute-cost models."""

import pytest

from repro.data.files import DataFile
from repro.data.partition import TaskGroup
from repro.engines.compute import (
    FixedComputeModel,
    PerByteComputeModel,
    StochasticComputeModel,
)


def group(index=0, sizes=(1000, 2000)):
    files = tuple(DataFile(f"f{i}", s) for i, s in enumerate(sizes))
    return TaskGroup(index=index, files=files)


class TestFixed:
    def test_constant_cost(self):
        model = FixedComputeModel(2.5)
        assert model.cost(group(0)) == 2.5
        assert model.cost(group(7)) == 2.5


class TestPerByte:
    def test_scales_with_bytes(self):
        model = PerByteComputeModel(seconds_per_byte=1e-6, startup_seconds=0.5)
        assert model.cost(group(sizes=(1000, 2000))) == pytest.approx(0.5 + 0.003)

    def test_zero_byte_group(self):
        model = PerByteComputeModel(seconds_per_byte=1e-6, startup_seconds=0.25)
        assert model.cost(group(sizes=(0,))) == pytest.approx(0.25)


class TestStochastic:
    def test_deterministic_per_task_index(self):
        model = StochasticComputeModel(mean_seconds=10.0, cv=0.5, seed=3)
        assert model.cost(group(4)) == model.cost(group(4))

    def test_different_tasks_differ(self):
        model = StochasticComputeModel(mean_seconds=10.0, cv=0.5, seed=3)
        costs = {model.cost(group(i)) for i in range(20)}
        assert len(costs) == 20

    def test_seed_isolation(self):
        a = StochasticComputeModel(10.0, 0.5, seed=1).cost(group(0))
        b = StochasticComputeModel(10.0, 0.5, seed=2).cost(group(0))
        assert a != b

    def test_mean_approximately_respected(self):
        model = StochasticComputeModel(mean_seconds=10.0, cv=0.4, seed=0)
        costs = [model.cost(group(i)) for i in range(3000)]
        assert sum(costs) / len(costs) == pytest.approx(10.0, rel=0.05)

    def test_cv_approximately_respected(self):
        import numpy as np

        model = StochasticComputeModel(mean_seconds=10.0, cv=0.4, seed=0)
        costs = np.array([model.cost(group(i)) for i in range(3000)])
        assert costs.std() / costs.mean() == pytest.approx(0.4, rel=0.1)

    def test_zero_cv_is_constant(self):
        model = StochasticComputeModel(mean_seconds=7.0, cv=0.0)
        assert model.cost(group(0)) == 7.0

    def test_costs_positive(self):
        model = StochasticComputeModel(mean_seconds=5.0, cv=1.5, seed=0)
        assert all(model.cost(group(i)) > 0 for i in range(200))
