"""Integration tests: FRIEDA on the simulated cloud."""

import pytest

from repro.cloud.cluster import ClusterSpec
from repro.core.strategies import StrategyKind
from repro.data.files import DataFile, synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.errors import StorageError
from repro.transfer.base import TransferProtocol
from repro.util.units import GB, MB


class _Raw(TransferProtocol):
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1


def run(
    n_files=8,
    file_size="1 MB",
    strategy=StrategyKind.REAL_TIME,
    grouping=PartitionScheme.SINGLE,
    workers=2,
    cost=1.0,
    **kwargs,
):
    spec = ClusterSpec(num_workers=workers)
    engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
    ds = synthetic_dataset("d", n_files, file_size)
    return engine.run(
        ds,
        compute_model=FixedComputeModel(cost),
        strategy=strategy,
        grouping=grouping,
        **kwargs,
    )


class TestBasicRuns:
    @pytest.mark.parametrize("strategy", list(StrategyKind))
    def test_all_strategies_complete(self, strategy):
        outcome = run(strategy=strategy)
        assert outcome.tasks_completed == outcome.tasks_total == 8
        assert outcome.makespan > 0

    def test_grouping_controls_task_count(self):
        outcome = run(grouping=PartitionScheme.PAIRWISE_ADJACENT)
        assert outcome.tasks_total == 4

    def test_task_records_cover_all_tasks(self):
        outcome = run()
        assert sorted(r.task_id for r in outcome.task_records) == list(range(8))
        assert all(r.ok for r in outcome.task_records)

    def test_local_strategy_transfers_nothing(self):
        outcome = run(strategy=StrategyKind.PRE_PARTITIONED_LOCAL)
        assert outcome.bytes_transferred == 0
        assert outcome.transfer_time == 0.0

    def test_remote_strategy_transfers_every_byte(self):
        outcome = run(strategy=StrategyKind.PRE_PARTITIONED_REMOTE, n_files=6)
        assert outcome.bytes_transferred == pytest.approx(6 * MB)

    def test_common_data_replicates_to_every_node(self):
        outcome = run(strategy=StrategyKind.COMMON_DATA, n_files=4, workers=2)
        assert outcome.bytes_transferred == pytest.approx(2 * 4 * MB)

    def test_common_files_staged_under_real_time(self):
        spec = ClusterSpec(num_workers=2)
        engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
        ds = synthetic_dataset("d", 4, "1 KB")
        outcome = engine.run(
            ds,
            compute_model=FixedComputeModel(0.5),
            strategy=StrategyKind.REAL_TIME,
            common_files=[DataFile("db", 10 * MB)],
        )
        # 2 nodes x 10 MB database + 4 KB of lazy query files.
        assert outcome.bytes_transferred == pytest.approx(20 * MB + 4_000, rel=1e-3)

    def test_cost_report_attached(self):
        outcome = run()
        assert outcome.cost is not None
        assert outcome.cost.vm_cost > 0


class TestTimingSemantics:
    def test_sequential_phases_for_pre_remote(self):
        outcome = run(
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            n_files=8,
            file_size="10 MB",
            cost=1.0,
        )
        # Phases are sequential: makespan >= staging + parallel exec.
        assert outcome.extra["staging_time"] > 0
        assert outcome.makespan >= outcome.extra["staging_time"]
        assert outcome.makespan == pytest.approx(
            outcome.extra["staging_time"] + outcome.execution_time, rel=0.2
        )

    def test_real_time_overlaps_transfer_and_compute(self):
        kwargs = dict(n_files=16, file_size="10 MB", cost=2.0, workers=4)
        pre = run(strategy=StrategyKind.PRE_PARTITIONED_REMOTE, **kwargs)
        rt = run(strategy=StrategyKind.REAL_TIME, **kwargs)
        assert rt.makespan < pre.makespan

    def test_multicore_uses_all_cores(self):
        single = run(workers=1, multicore=False, n_files=8, cost=4.0,
                     strategy=StrategyKind.PRE_PARTITIONED_LOCAL)
        multi = run(workers=1, multicore=True, n_files=8, cost=4.0,
                    strategy=StrategyKind.PRE_PARTITIONED_LOCAL)
        # c1.xlarge has 4 cores -> ~4x speedup.
        assert single.makespan / multi.makespan == pytest.approx(4.0, rel=0.1)

    def test_sequential_baseline_sums_costs(self):
        outcome = run(workers=1, multicore=False, n_files=10, cost=3.0,
                      strategy=StrategyKind.PRE_PARTITIONED_LOCAL)
        # 10 tasks x (3s compute + small disk read).
        assert outcome.makespan == pytest.approx(30.0, rel=0.05)

    def test_transfer_bound_by_master_uplink(self):
        outcome = run(
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            n_files=10,
            file_size="10 MB",
            workers=4,
            cost=0.1,
        )
        # 100 MB through a 100 Mbit/s uplink takes at least 8 s.
        assert outcome.extra["staging_time"] >= 8.0 * 0.99

    def test_disk_io_can_be_disabled(self):
        spec = ClusterSpec(num_workers=1)
        opts = SimulationOptions(protocol=_Raw(), include_disk_io=False, control_rtt=0.0)
        ds = synthetic_dataset("d", 4, "100 MB")
        outcome = SimulatedEngine(spec, opts).run(
            ds,
            compute_model=FixedComputeModel(1.0),
            strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
            multicore=False,
        )
        assert outcome.makespan == pytest.approx(4.0, rel=1e-6)


class TestWorkerBookkeeping:
    def test_worker_busy_accounts_for_compute(self):
        outcome = run(workers=2, n_files=8, cost=1.0,
                      strategy=StrategyKind.PRE_PARTITIONED_LOCAL)
        assert sum(outcome.worker_busy.values()) == pytest.approx(
            8 * 1.0, rel=0.1
        )

    def test_clone_ids_per_core(self):
        outcome = run(workers=1)
        # 4 cores -> clones worker1:0..3.
        assert set(outcome.worker_busy) == {f"worker1:{i}" for i in range(4)}

    def test_controller_events_present(self):
        outcome = run()
        kinds = [e.kind for e in outcome.controller_events]
        assert "PARTITION_GENERATED" in kinds
        assert "FORK_REMOTE_WORKERS" in kinds


class TestCapacityEnforcement:
    def test_dataset_too_big_for_local_disk_raises(self):
        spec = ClusterSpec(num_workers=1)
        engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
        ds = synthetic_dataset("huge", 3, 20 * GB)  # 60 GB > 40 GB disk
        with pytest.raises(StorageError):
            engine.run(
                ds,
                compute_model=FixedComputeModel(1.0),
                strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
            )
