"""Property-based tests for the simulated engine.

For random small workloads across all strategies and cluster shapes:

- every task completes exactly once (no failures configured),
- worker busy time equals the sum of task costs (work conservation),
- bytes transferred match the strategy's contract,
- makespan is bounded below by critical-path arguments.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.cloud.cluster import ClusterSpec
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.engines.compute import FixedComputeModel, StochasticComputeModel
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.transfer.base import TransferProtocol


class _Raw(TransferProtocol):
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1


RUN_CONFIGS = st.fixed_dictionaries(
    {
        "n_files": st.integers(1, 24),
        "workers": st.integers(1, 4),
        "strategy": st.sampled_from(list(StrategyKind)),
        "cost": st.floats(0.1, 5.0),
        "multicore": st.booleans(),
        "prefetch": st.integers(0, 1),
    }
)


@given(RUN_CONFIGS)
@settings(max_examples=60, deadline=None)
def test_every_task_completes_exactly_once(config):
    engine = SimulatedEngine(
        ClusterSpec(num_workers=config["workers"]),
        SimulationOptions(protocol=_Raw(), prefetch_depth=config["prefetch"]),
    )
    dataset = synthetic_dataset("p", config["n_files"], "100 KB", seed=1)
    outcome = engine.run(
        dataset,
        compute_model=FixedComputeModel(config["cost"]),
        strategy=config["strategy"],
        multicore=config["multicore"],
    )
    assert outcome.tasks_completed == outcome.tasks_total == config["n_files"]
    completed_ids = sorted(r.task_id for r in outcome.task_records if r.ok)
    assert completed_ids == list(range(config["n_files"]))


@given(RUN_CONFIGS)
@settings(max_examples=40, deadline=None)
def test_busy_time_conserves_work(config):
    engine = SimulatedEngine(
        ClusterSpec(num_workers=config["workers"]),
        SimulationOptions(protocol=_Raw(), include_disk_io=False,
                          prefetch_depth=config["prefetch"]),
    )
    dataset = synthetic_dataset("p", config["n_files"], "1 KB", seed=2)
    outcome = engine.run(
        dataset,
        compute_model=FixedComputeModel(config["cost"]),
        strategy=config["strategy"],
        multicore=config["multicore"],
    )
    total_work = config["n_files"] * config["cost"]
    assert sum(outcome.worker_busy.values()) >= total_work * 0.999
    # Makespan can never beat perfect parallelism over available clones.
    clones = config["workers"] * (4 if config["multicore"] else 1)
    assert outcome.makespan >= total_work / clones * 0.999


@given(
    st.integers(1, 16),
    st.integers(1, 3),
    st.sampled_from(
        [StrategyKind.PRE_PARTITIONED_REMOTE, StrategyKind.REAL_TIME]
    ),
)
@settings(max_examples=40, deadline=None)
def test_remote_strategies_move_each_byte_once(n_files, workers, strategy):
    engine = SimulatedEngine(
        ClusterSpec(num_workers=workers), SimulationOptions(protocol=_Raw())
    )
    dataset = synthetic_dataset("b", n_files, "2 MB", seed=3)
    outcome = engine.run(
        dataset,
        compute_model=FixedComputeModel(0.5),
        strategy=strategy,
    )
    # Each input file crosses the network to exactly one worker.
    assert outcome.bytes_transferred == dataset.total_size


@given(st.integers(2, 20), st.floats(0.2, 1.0))
@settings(max_examples=30, deadline=None)
def test_strategies_agree_on_task_costs(n_files, cv):
    """Pre and real-time see identical per-task costs (deterministic
    cost streams), so their total busy time matches."""
    model = StochasticComputeModel(3.0, cv=cv, seed=7)
    outcomes = []
    for strategy in (StrategyKind.PRE_PARTITIONED_LOCAL, StrategyKind.REAL_TIME):
        engine = SimulatedEngine(
            ClusterSpec(num_workers=2),
            SimulationOptions(protocol=_Raw(), include_disk_io=False),
        )
        outcomes.append(
            engine.run(
                synthetic_dataset("c", n_files, "1 KB", seed=4),
                compute_model=model,
                strategy=strategy,
            )
        )
    busy = [sum(o.worker_busy.values()) for o in outcomes]
    assert math.isclose(busy[0], busy[1], rel_tol=1e-9)
