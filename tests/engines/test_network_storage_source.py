"""Tests for the network-storage data source (§III-A networked disks)."""

import pytest

from repro.cloud.cluster import ClusterSpec
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.errors import ConfigurationError
from repro.transfer.base import TransferProtocol
from repro.util.units import GB, Mbit


class _Raw(TransferProtocol):
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1


def spec_with_storage(server_bps=400 * Mbit):
    return ClusterSpec(
        num_workers=4,
        network_storage_bytes=1000 * GB,
        network_storage_bps=400 * Mbit,
        network_storage_server_bps=server_bps,
    )


def run(spec, data_source, **kwargs):
    engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
    return engine.run(
        synthetic_dataset("ns", 40, "5 MB", seed=1),
        compute_model=FixedComputeModel(1.0),
        strategy=StrategyKind.REAL_TIME,
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
        data_source=data_source,
        **kwargs,
    )


class TestNetworkStorageSource:
    def test_requires_storage_tier(self):
        with pytest.raises(ConfigurationError):
            run(ClusterSpec(num_workers=2), "network_storage")

    def test_invalid_source_name_rejected(self):
        with pytest.raises(ConfigurationError):
            run(spec_with_storage(), "s3")

    def test_completes_from_network_storage(self):
        outcome = run(spec_with_storage(), "network_storage")
        assert outcome.all_tasks_ok
        assert outcome.bytes_transferred == pytest.approx(40 * 5_000_000)

    def test_files_placed_on_shared_tier(self):
        spec = spec_with_storage()
        engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
        ds = synthetic_dataset("ns", 6, "1 MB", seed=2)
        # Capture the cluster state via the outcome's cost path: rerun
        # with a tiny workload and inspect storage through a fresh run.
        outcome = engine.run(
            ds,
            compute_model=FixedComputeModel(0.1),
            strategy=StrategyKind.PRE_PARTITIONED_REMOTE,
            data_source="network_storage",
        )
        assert outcome.all_tasks_ok

    def test_server_uplink_becomes_the_bottleneck(self):
        # With a slow storage server, pulling from network storage is
        # slower than pulling from the master (whose uplink is 100 Mbit).
        slow_storage = run(spec_with_storage(server_bps=25 * Mbit), "network_storage")
        from_master = run(spec_with_storage(), "master")
        assert slow_storage.makespan > from_master.makespan

    def test_fast_storage_beats_master_uplink(self):
        # A 400 Mbit storage server out-serves the master's 100 Mbit NIC
        # when four workers pull concurrently.
        fast_storage = run(spec_with_storage(server_bps=400 * Mbit), "network_storage")
        from_master = run(spec_with_storage(), "master")
        assert fast_storage.makespan < from_master.makespan

    def test_storage_tier_capacity_enforced(self):
        spec = ClusterSpec(
            num_workers=1,
            network_storage_bytes=3_000_000,  # 3 MB tier
        )
        engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            engine.run(
                synthetic_dataset("big", 4, "2 MB", seed=3),
                compute_model=FixedComputeModel(0.1),
                strategy=StrategyKind.REAL_TIME,
                data_source="network_storage",
            )
