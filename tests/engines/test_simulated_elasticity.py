"""Elasticity on the simulated engine (§V-A Elastic)."""


from repro.cloud.cluster import ClusterSpec
from repro.cloud.instance import M1_SMALL
from repro.core.strategies import StrategyKind
from repro.data.files import DataFile, synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import ElasticAction, SimulatedEngine, SimulationOptions
from repro.transfer.base import TransferProtocol


class _Raw(TransferProtocol):
    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1


def run(elasticity=(), workers=2, n_files=32, cost=4.0, **kwargs):
    spec = ClusterSpec(num_workers=workers)
    engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
    ds = synthetic_dataset("d", n_files, "1 KB")
    return engine.run(
        ds,
        compute_model=FixedComputeModel(cost),
        strategy=StrategyKind.REAL_TIME,
        grouping=PartitionScheme.SINGLE,
        elasticity=elasticity,
        **kwargs,
    )


class TestScaleOut:
    def test_added_worker_shortens_makespan(self):
        base = run()
        elastic = run(elasticity=[ElasticAction(time=1.0, action="add")])
        assert elastic.makespan < base.makespan

    def test_added_worker_processes_tasks(self):
        outcome = run(elasticity=[ElasticAction(time=1.0, action="add")])
        late_nodes = {r.node_id for r in outcome.task_records} - {"worker1", "worker2"}
        assert late_nodes  # the elastic node did real work

    def test_addition_goes_through_controller(self):
        outcome = run(elasticity=[ElasticAction(time=1.0, action="add")])
        kinds = [e.kind for e in outcome.controller_events]
        assert "WORKER_ADDED" in kinds

    def test_heterogeneous_addition(self):
        outcome = run(
            elasticity=[ElasticAction(time=1.0, action="add", instance_type=M1_SMALL)]
        )
        assert outcome.tasks_completed == outcome.tasks_total

    def test_boot_delay_respected(self):
        fast = run(elasticity=[ElasticAction(time=1.0, action="add", boot_delay=0.0)])
        slow = run(elasticity=[ElasticAction(time=1.0, action="add", boot_delay=60.0)])
        assert fast.makespan <= slow.makespan

    def test_elastic_node_receives_common_data_first(self):
        spec = ClusterSpec(num_workers=1)
        engine = SimulatedEngine(spec, SimulationOptions(protocol=_Raw()))
        ds = synthetic_dataset("d", 16, "1 KB")
        outcome = engine.run(
            ds,
            compute_model=FixedComputeModel(3.0),
            strategy=StrategyKind.REAL_TIME,
            common_files=[DataFile("db", 10_000_000)],
            elasticity=[ElasticAction(time=1.0, action="add")],
        )
        assert outcome.tasks_completed == outcome.tasks_total
        # DB staged twice: once to the original node, once to the
        # elastic one.
        assert outcome.bytes_transferred >= 2 * 10_000_000

    def test_late_addition_after_completion_is_noop(self):
        outcome = run(
            n_files=2,
            cost=0.1,
            elasticity=[ElasticAction(time=10_000.0, action="add")],
        )
        assert outcome.tasks_completed == 2


class TestScaleIn:
    def test_removed_worker_stops_processing(self):
        outcome = run(
            workers=3,
            elasticity=[ElasticAction(time=5.0, action="remove", node_id="worker2")],
        )
        kinds = [e.kind for e in outcome.controller_events]
        assert "WORKER_REMOVED" in kinds
        late = [
            r for r in outcome.task_records if r.node_id == "worker2" and r.start > 6.0 and r.ok
        ]
        assert late == []

    def test_removal_may_lose_in_flight_tasks(self):
        outcome = run(
            workers=2,
            elasticity=[ElasticAction(time=5.0, action="remove", node_id="worker1")],
        )
        assert outcome.tasks_completed + outcome.tasks_lost == outcome.tasks_total
