"""Tests for the Hadoop-like transparent-locality baseline."""

import pytest

from repro.baselines.hadooplike import BlockPlacement, HadoopLikeEngine, scatter_blocks
from repro.cloud.cluster import ClusterSpec
from repro.data.files import DataFile, Dataset, synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.errors import ConfigurationError

SPEC = ClusterSpec(num_workers=4)


class TestScatter:
    def test_replication_respected(self):
        ds = synthetic_dataset("s", 20, 1000, seed=1)
        placement = scatter_blocks(ds, ["n0", "n1", "n2"], replication=2, seed=5)
        for f in ds:
            holders = placement.nodes_for(f.name)
            assert len(holders) == 2
            assert len(set(holders)) == 2

    def test_replication_capped_at_nodes(self):
        ds = synthetic_dataset("s", 4, 10, seed=1)
        placement = scatter_blocks(ds, ["n0", "n1"], replication=5)
        assert all(len(placement.nodes_for(f.name)) == 2 for f in ds)

    def test_deterministic_for_seed(self):
        ds = synthetic_dataset("s", 10, 10, seed=1)
        a = scatter_blocks(ds, ["n0", "n1", "n2"], seed=7)
        b = scatter_blocks(ds, ["n0", "n1", "n2"], seed=7)
        assert a.holders == b.holders

    def test_validation(self):
        ds = synthetic_dataset("s", 2, 10)
        with pytest.raises(ConfigurationError):
            scatter_blocks(ds, [], replication=1)
        with pytest.raises(ConfigurationError):
            scatter_blocks(ds, ["n0"], replication=0)

    def test_add_replica(self):
        placement = BlockPlacement(holders={"f": ("n0",)})
        placement.add_replica("f", "n1")
        placement.add_replica("f", "n1")  # idempotent
        assert placement.nodes_for("f") == ("n0", "n1")

    def test_local_bytes(self):
        from repro.data.partition import TaskGroup

        placement = BlockPlacement(holders={"a": ("n0",), "b": ("n1",)})
        group = TaskGroup(0, (DataFile("a", 10), DataFile("b", 20)))
        assert placement.local_bytes(group, "n0") == 10
        assert placement.local_bytes(group, "n1") == 20


class TestExecution:
    def test_all_tasks_complete(self):
        ds = synthetic_dataset("h", 24, "1 MB", seed=2)
        outcome = HadoopLikeEngine(SPEC, replication=2).run(
            ds, compute_model=FixedComputeModel(1.0)
        )
        assert outcome.tasks_completed == outcome.tasks_total == 24
        assert 0.0 <= outcome.extra["locality_rate"] <= 1.0

    def test_full_replication_means_full_locality(self):
        ds = synthetic_dataset("h", 12, "1 MB", seed=3)
        outcome = HadoopLikeEngine(SPEC, replication=4).run(
            ds, compute_model=FixedComputeModel(0.5)
        )
        assert outcome.extra["locality_rate"] == 1.0
        assert outcome.bytes_transferred == 0.0

    def test_single_replica_causes_remote_reads(self):
        ds = synthetic_dataset("h", 24, "4 MB", seed=4)
        outcome = HadoopLikeEngine(SPEC, replication=1, seed=4).run(
            ds, compute_model=FixedComputeModel(0.2)
        )
        assert outcome.bytes_transferred > 0

    def test_pairwise_locality_below_single(self):
        ds = synthetic_dataset("h", 40, "2 MB", seed=5)
        single = HadoopLikeEngine(SPEC, replication=2, seed=5).run(
            ds, compute_model=FixedComputeModel(0.5), grouping=PartitionScheme.SINGLE
        )
        pairwise = HadoopLikeEngine(SPEC, replication=2, seed=5).run(
            ds,
            compute_model=FixedComputeModel(0.5),
            grouping=PartitionScheme.PAIRWISE_ADJACENT,
        )
        # Needing two co-located files is strictly harder.
        assert pairwise.extra["locality_rate"] <= single.extra["locality_rate"]

    def test_caching_reduces_repeat_streams(self):
        # More tasks than clones, so each clone runs several and its
        # second pivot pull can hit the cache.
        pivot = DataFile("aadb", 20_000_000)
        queries = synthetic_dataset("q", 48, "10 KB", seed=6)
        ds = Dataset("common", [pivot, *queries.files])
        # Compute heavy enough that non-holder clones run several tasks
        # (otherwise the pivot holders drain the queue and every remote
        # clone pulls exactly once, cache or not).
        no_cache = HadoopLikeEngine(SPEC, replication=1, seed=6).run(
            ds, compute_model=FixedComputeModel(5.0), grouping=PartitionScheme.ONE_TO_ALL
        )
        cached = HadoopLikeEngine(
            SPEC, replication=1, seed=6, cache_remote_reads=True
        ).run(
            ds, compute_model=FixedComputeModel(5.0), grouping=PartitionScheme.ONE_TO_ALL
        )
        assert cached.bytes_transferred < no_cache.bytes_transferred
        assert cached.makespan <= no_cache.makespan

    def test_empty_workload(self):
        ds = Dataset("empty")
        outcome = HadoopLikeEngine(SPEC).run(
            ds, compute_model=FixedComputeModel(1.0)
        )
        assert outcome.tasks_total == 0


class TestBaselineExperiment:
    @pytest.fixture(scope="class")
    def cells(self):
        from repro.experiments.baseline_exp import run_baselines

        return run_baselines(0.05)

    def test_shapes_hold(self, cells):
        from repro.experiments.baseline_exp import shapes_hold

        assert shapes_hold(cells)

    def test_frieda_moves_fewer_common_bytes(self, cells):
        hadoop = next(
            c for c in cells if c.workload == "common-data" and c.engine == "hadoop-like"
        )
        frieda = next(
            c for c in cells if c.workload == "common-data" and c.engine == "frieda"
        )
        assert frieda.outcome.bytes_transferred < hadoop.outcome.bytes_transferred

    def test_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["baselines", "--scale", "0.05"]) == 0
        assert "transparent locality" in capsys.readouterr().out
