"""Unit tests for the billing model."""

import pytest

from repro.cloud.billing import BillingModel, PriceSheet
from repro.cloud.cluster import ClusterSpec, Provisioner
from repro.cloud.storage import StorageTier
from repro.sim import Environment
from repro.util.units import GB


def run_cluster_for(seconds, workers=2):
    env = Environment()
    cluster = Provisioner(env).provision_now(ClusterSpec(num_workers=workers))

    def wait(env):
        yield env.timeout(seconds)
        for vm in cluster.vms.values():
            vm.terminate()

    env.process(wait(env))
    env.run()
    return cluster


class TestVmBilling:
    def test_partial_hours_round_up(self):
        cluster = run_cluster_for(10)  # 10 seconds -> 1 billed hour each
        report = BillingModel().report(cluster)
        hourly = cluster.master_vm.itype.hourly_price
        assert report.vm_cost == pytest.approx(3 * hourly)  # master + 2 workers

    def test_two_hours_billed_for_90_minutes(self):
        cluster = run_cluster_for(90 * 60, workers=0)
        report = BillingModel().report(cluster)
        assert report.vm_cost == pytest.approx(2 * cluster.master_vm.itype.hourly_price)


class TestEgressAndStorage:
    def test_wan_egress_priced_per_gb(self):
        cluster = run_cluster_for(1)
        billing = BillingModel(PriceSheet(wan_egress_per_gb=0.10))
        billing.record_wan_bytes(5 * GB)
        report = billing.report(cluster)
        assert report.egress_cost == pytest.approx(0.50)

    def test_storage_byte_seconds(self):
        cluster = run_cluster_for(1)
        billing = BillingModel()
        month = 30 * 24 * 3600.0
        billing.record_storage(StorageTier.NETWORK, 1 * GB, month)
        report = billing.report(cluster)
        assert report.storage_cost == pytest.approx(0.125)

    def test_local_storage_free(self):
        cluster = run_cluster_for(1)
        billing = BillingModel()
        billing.record_storage(StorageTier.LOCAL, 100 * GB, 3600.0)
        assert billing.report(cluster).storage_cost == 0.0

    def test_requests_priced(self):
        cluster = run_cluster_for(1)
        billing = BillingModel()
        billing.record_request(1000)
        assert billing.report(cluster).request_cost == pytest.approx(0.01)

    def test_total_sums_line_items(self):
        cluster = run_cluster_for(1)
        billing = BillingModel()
        billing.record_wan_bytes(1 * GB)
        report = billing.report(cluster)
        assert report.total == pytest.approx(
            report.vm_cost + report.egress_cost + report.storage_cost + report.request_cost
        )
