"""Tests for the incremental max-min planner.

Two halves:

1. Solver edge cases — capped flows, multi-bottleneck paths, and the
   component-decomposition property the incremental planner relies on.
2. Equivalence — ``FlowNetwork(incremental=True)`` must produce exactly
   the same per-flow completion times (bitwise float equality, not
   approximate) as a from-scratch replan on every wake. Any divergence,
   however small, means the incremental planner changed simulation
   results rather than just speed.
"""

import random

from repro.cloud.network import Flow, FlowNetwork, Link, max_min_rates
from repro.sim import Environment
from repro.sim.kernel import Event
from repro.util.units import MB, Mbit


def _flow(env, i, path, max_rate=None):
    return Flow(i, path, 1 * MB, Event(env), max_rate, 0.0, "")


class TestSolverEdgeCases:
    def test_all_flows_capped_below_fair_share(self):
        """Caps bind before the bottleneck: everyone gets exactly their cap."""
        env = Environment()
        link = Link("l", 100.0)
        flows = [_flow(env, i, [link], max_rate=10.0 - i) for i in range(4)]
        rates = max_min_rates(flows)
        # Fair share would be 25; every cap is below it.
        assert [rates[f] for f in flows] == [10.0, 9.0, 8.0, 7.0]

    def test_flow_crossing_two_bottlenecks(self):
        """A two-hop flow is held to its *tighter* bottleneck, and the
        capacity it cannot use on the wider link goes to the others."""
        env = Environment()
        narrow = Link("narrow", 10.0)
        wide = Link("wide", 30.0)
        crossing = _flow(env, 0, [narrow, wide])
        on_narrow = _flow(env, 1, [narrow])
        wide_a = _flow(env, 2, [wide])
        wide_b = _flow(env, 3, [wide])
        rates = max_min_rates([crossing, on_narrow, wide_a, wide_b])
        # narrow: 10/2 = 5 each. wide then has 30 - 5 = 25 for two flows.
        assert rates[crossing] == 5.0
        assert rates[on_narrow] == 5.0
        assert rates[wide_a] == 12.5
        assert rates[wide_b] == 12.5

    def test_disjoint_components_planned_independently(self):
        """Solving the union equals solving each link-component alone —
        bitwise, which is what makes incremental replanning exact."""
        env = Environment()
        left = Link("left", 7.3)
        right = Link("right", 11.9)
        group_a = [_flow(env, i, [left], max_rate=None if i else 1.7) for i in range(3)]
        group_b = [_flow(env, 10 + i, [right]) for i in range(5)]
        union = max_min_rates(group_a + group_b)
        alone_a = max_min_rates(group_a)
        alone_b = max_min_rates(group_b)
        for flow in group_a:
            assert union[flow] == alone_a[flow]
        for flow in group_b:
            assert union[flow] == alone_b[flow]


def _end_times(build, expected_flows):
    """Run ``build`` under both planner modes; return both end-time maps."""
    ends = {}
    for mode in (True, False):
        env = Environment()
        net = FlowNetwork(env, incremental=mode)
        flows = build(env, net)
        env.run()
        assert net.completed_flows == expected_flows
        ends[mode] = {f.tag: f.end_time for f in flows}
        assert all(t is not None for t in ends[mode].values())
    return ends


class TestIncrementalEquivalence:
    """incremental=True vs incremental=False: identical completion times."""

    def test_clustered_racks_churn(self):
        """Disjoint rack components with batched same-instant arrivals."""

        def build(env, net):
            racks = 8
            for r in range(racks):
                net.add_link(f"up{r}", 100 * Mbit)
                for w in range(2):
                    net.add_link(f"r{r}w{w}", 100 * Mbit)
            flows = []

            def one(env, i):
                yield env.timeout((i // racks) * 0.01)
                r = i % racks
                flows.append(
                    net.start_flow([f"up{r}", f"r{r}w{i % 2}"], 1 * MB, tag=f"f{i}")
                )

            for i in range(160):
                env.process(one(env, i))
            return flows

        ends = _end_times(build, 160)
        assert ends[True] == ends[False]  # exact, not approximate

    def test_shared_bottleneck_with_caps_and_latency(self):
        """Single shared uplink, per-flow caps, and startup latency."""

        def build(env, net):
            net.add_link("up", 100 * Mbit, latency_s=0.002)
            for i in range(6):
                net.add_link(f"d{i}", 40 * Mbit)
            flows = []

            def one(env, i):
                yield env.timeout(i * 0.003)
                flows.append(
                    net.start_flow(
                        ["up", f"d{i % 6}"],
                        (i % 5 + 1) * MB,
                        max_rate=(20 * Mbit) if i % 3 == 0 else None,
                        tag=f"f{i}",
                    )
                )

            for i in range(60):
                env.process(one(env, i))
            return flows

        ends = _end_times(build, 60)
        assert ends[True] == ends[False]

    def test_random_topology_seeded(self):
        """Randomized paths/sizes/arrivals (fixed seed) — still bitwise equal."""

        def build(env, net):
            rng = random.Random(0xF21EDA)
            names = [f"l{i}" for i in range(10)]
            for name in names:
                net.add_link(name, rng.choice([50, 100, 200]) * Mbit)
            flows = []

            def one(env, delay, path, nbytes, tag):
                yield env.timeout(delay)
                flows.append(net.start_flow(path, nbytes, tag=tag))

            for i in range(120):
                path = rng.sample(names, rng.randint(1, 3))
                env.process(
                    one(
                        env,
                        rng.randint(0, 40) * 0.005,
                        path,
                        rng.randint(1, 4) * MB,
                        f"f{i}",
                    )
                )
            return flows

        ends = _end_times(build, 120)
        assert ends[True] == ends[False]


class TestCoalescing:
    def test_same_timestamp_arrivals_replan_once(self):
        """A batch of same-instant arrivals triggers ONE planning pass,
        not one per flow."""
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("up", 100 * Mbit)

        def one(env):
            yield env.timeout(1.0)  # all 32 wake at the same instant
            yield net.transfer(["up"], 1 * MB)

        for _ in range(32):
            env.process(one(env))
        env.run()
        assert net.completed_flows == 32
        # One replan for the arrival batch, one for the (simultaneous)
        # retirement batch. Certainly not one per flow.
        assert net.replans <= 4

    def test_staggered_arrivals_replan_per_instant(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("up", 100 * Mbit)

        def one(env, i):
            yield env.timeout(i * 1.0)
            yield net.transfer(["up"], 1 * MB)

        for i in range(5):
            env.process(one(env, i))
        env.run()
        assert net.completed_flows == 5
        # Distinct timestamps can't coalesce: at least one plan per arrival.
        assert net.replans >= 5
