"""Scalar/NumPy max-min solver equivalence: bit-for-bit, not almost.

The batched solver in ``repro.cloud.maxmin`` promises that its
pure-Python and NumPy paths run identical IEEE-754 operations per
freeze round, so allocations must match *bytewise* — any ulp of
divergence would fork the event schedule downstream (flow end times
feed the kernel heap) and break cross-machine replay.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud import maxmin
from repro.cloud.network import Flow, Link
from repro.sim import Environment

pytestmark = pytest.mark.skipif(
    maxmin._np is None, reason="NumPy unavailable; single-path build"
)


@st.composite
def flow_sets(draw):
    """Random topologies spanning both sides of the dispatch threshold."""
    n_links = draw(st.integers(1, 12))
    links = [
        Link(f"l{i}", draw(st.floats(0.5, 2000.0)))
        for i in range(n_links)
    ]
    n_flows = draw(st.integers(1, 96))
    env = Environment()
    flows = []
    for i in range(n_flows):
        path_size = draw(st.integers(1, n_links))
        indices = draw(
            st.lists(
                st.integers(0, n_links - 1),
                min_size=path_size,
                max_size=path_size,
                unique=True,
            )
        )
        max_rate = draw(st.one_of(st.none(), st.floats(0.25, 1000.0)))
        flows.append(
            Flow(i, [links[j] for j in indices], 1.0, env.event(), max_rate, 0.0, "")
        )
    return flows


def _packed(rates: list[float]) -> bytes:
    return struct.pack(f"<{len(rates)}d", *rates)


@given(flow_sets())
@settings(max_examples=150, deadline=None)
def test_scalar_and_numpy_paths_bitwise_identical(flows):
    py = maxmin._solve_py(flows)
    np_ = maxmin._solve_np(flows)
    assert _packed(py) == _packed(np_)


@given(flow_sets())
@settings(max_examples=50, deadline=None)
def test_force_env_var_selects_each_path(flows):
    # solve_rates under each FORCE value reproduces the direct calls.
    old = maxmin.FORCE
    try:
        maxmin.FORCE = "python"
        forced_py = maxmin.solve_rates(flows)
        maxmin.FORCE = "numpy"
        forced_np = maxmin.solve_rates(flows)
    finally:
        maxmin.FORCE = old
    assert _packed(forced_py) == _packed(forced_np)
    assert _packed(forced_py) == _packed(maxmin._solve_py(flows))


def test_end_to_end_schedule_digest_solver_independent(monkeypatch):
    """A full simulated run is byte-identical under either solver path."""
    from repro.core.strategies import StrategyKind
    from repro.engines.simulated import SimulationOptions
    from repro.workloads import als_profile, run_profile

    from tests.integration.test_determinism_replay import _schedule_digest

    def run():
        profile = als_profile(scale=0.1, seed=7)
        outcome = run_profile(
            profile, StrategyKind.REAL_TIME, options=SimulationOptions(seed=7)
        )
        return _schedule_digest(outcome)

    monkeypatch.setattr(maxmin, "FORCE", "python")
    scalar_digest = run()
    monkeypatch.setattr(maxmin, "FORCE", "numpy")
    vector_digest = run()
    assert scalar_digest == vector_digest
