"""Unit tests for cluster assembly and the provisioner."""

import pytest

from repro.cloud.cluster import ClusterSpec, Provisioner
from repro.cloud.instance import C1_XLARGE, M1_SMALL
from repro.errors import NetworkError, ProvisioningError
from repro.sim import Environment
from repro.util.units import GB, Mbit


class TestClusterSpec:
    def test_defaults_match_paper(self):
        spec = ClusterSpec()
        assert spec.num_workers == 4
        assert spec.link_bps == 100 * Mbit
        assert spec.instance_type is C1_XLARGE

    def test_negative_workers_rejected(self):
        with pytest.raises(ProvisioningError):
            ClusterSpec(num_workers=-1)

    def test_zero_link_rejected(self):
        with pytest.raises(ProvisioningError):
            ClusterSpec(link_bps=0)


class TestProvisioning:
    def test_provision_now_boots_everything(self):
        env = Environment()
        cluster = Provisioner(env).provision_now(ClusterSpec(num_workers=3))
        assert len(cluster.vms) == 4  # master + 3 workers
        assert all(vm.is_running for vm in cluster.vms.values())
        assert cluster.master_vm is not None
        assert len(cluster.worker_vms) == 3

    def test_boot_delay_advances_clock(self):
        env = Environment()
        spec = ClusterSpec(num_workers=2, mean_boot_delay_s=30.0, seed=7)
        Provisioner(env).provision_now(spec)
        assert env.now > 0

    def test_boot_deterministic_for_seed(self):
        times = []
        for _ in range(2):
            env = Environment()
            spec = ClusterSpec(num_workers=2, mean_boot_delay_s=30.0, seed=7)
            Provisioner(env).provision_now(spec)
            times.append(env.now)
        assert times[0] == times[1]

    def test_total_cores(self):
        env = Environment()
        cluster = Provisioner(env).provision_now(ClusterSpec(num_workers=4))
        assert cluster.total_cores == 5 * 4  # master + 4 workers, 4 cores each

    def test_local_disks_created(self):
        env = Environment()
        cluster = Provisioner(env).provision_now(ClusterSpec(num_workers=1))
        for vm in cluster.vms.values():
            assert vm.local_disk is not None
            assert vm.local_disk.capacity_bytes == C1_XLARGE.local_disk_bytes

    def test_elastic_add_worker(self):
        env = Environment()
        provisioner = Provisioner(env)
        cluster = provisioner.provision_now(ClusterSpec(num_workers=1))
        vm, booted = provisioner.add_worker(cluster, M1_SMALL, boot_delay=5.0)
        env.run(until=booted)
        assert vm.is_running
        assert vm.itype is M1_SMALL
        assert len(cluster.worker_vms) == 2


class TestRouting:
    @pytest.fixture
    def cluster(self):
        env = Environment()
        return Provisioner(env).provision_now(ClusterSpec(num_workers=2))

    def test_route_between_vms(self, cluster):
        path = cluster.route_between("master0", "worker1")
        assert path == ("master0.up", "worker1.down")

    def test_route_to_self_is_empty(self, cluster):
        assert cluster.route_between("worker1", "worker1") == ()

    def test_disk_to_disk_path(self, cluster):
        path = cluster.disk_to_disk_path("master0", "worker2")
        assert path == (
            "master0.disk.read",
            "master0.up",
            "worker2.down",
            "worker2.disk.write",
        )

    def test_unknown_vm_raises(self, cluster):
        with pytest.raises(ProvisioningError):
            cluster.route_between("ghost", "worker1")

    def test_storage_paths_require_shared_storage(self, cluster):
        with pytest.raises(NetworkError):
            cluster.storage_read_path("worker1")

    def test_shared_storage_paths(self):
        env = Environment()
        spec = ClusterSpec(num_workers=1, network_storage_bytes=10 * GB)
        cluster = Provisioner(env).provision_now(spec)
        path = cluster.storage_read_path("worker1")
        assert path[-1] == "worker1.down"
        assert any("nstore" in hop for hop in path)

    def test_cross_site_requires_wan(self):
        env = Environment()
        cluster = Provisioner(env).provision_now(ClusterSpec(num_workers=1))
        remote = cluster.create_vm("worker", site="data-site")
        remote.mark_running()
        with pytest.raises(NetworkError):
            cluster.route_between("master0", remote.vm_id)

    def test_wan_hop_inserted_across_sites(self):
        env = Environment()
        spec = ClusterSpec(num_workers=1, wan_bps=50 * Mbit)
        cluster = Provisioner(env).provision_now(spec)
        remote = cluster.create_vm("worker", site="data-site")
        remote.mark_running()
        path = cluster.route_between("master0", remote.vm_id)
        assert cluster.wan_link_name in path


class TestFailureHook:
    def test_fail_vm_clears_ephemeral_disk(self):
        env = Environment()
        cluster = Provisioner(env).provision_now(ClusterSpec(num_workers=1))
        vm = cluster.vm("worker1")
        vm.local_disk.store_file("data", 1000)
        cluster.fail_vm("worker1")
        assert not vm.is_running
        assert vm.local_disk.used_bytes == 0

    def test_running_workers_excludes_failed(self):
        env = Environment()
        cluster = Provisioner(env).provision_now(ClusterSpec(num_workers=2))
        cluster.fail_vm("worker1")
        assert [vm.vm_id for vm in cluster.running_workers()] == ["worker2"]
