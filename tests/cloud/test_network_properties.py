"""Property-based tests for max-min fair allocation.

Invariants checked against randomly generated topologies and flows:

1. no link's capacity is exceeded,
2. allocations respect per-flow caps,
3. max-min optimality: a flow's rate can only be below its cap if some
   link on its path is saturated by flows with rate >= its own,
4. conservation in the dynamic simulation: total bytes delivered equals
   total bytes offered.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.cloud.network import Flow, FlowNetwork, Link, max_min_rates
from repro.sim import Environment
from repro.sim.kernel import Event
from repro.util.units import MB, Mbit


@st.composite
def topologies(draw):
    n_links = draw(st.integers(1, 5))
    links = [
        Link(f"l{i}", draw(st.floats(1.0, 1000.0)))
        for i in range(n_links)
    ]
    n_flows = draw(st.integers(1, 8))
    env = Environment()
    flows = []
    for i in range(n_flows):
        path_size = draw(st.integers(1, n_links))
        indices = draw(
            st.lists(
                st.integers(0, n_links - 1),
                min_size=path_size,
                max_size=path_size,
                unique=True,
            )
        )
        max_rate = draw(st.one_of(st.none(), st.floats(0.5, 500.0)))
        flows.append(
            Flow(i, [links[j] for j in indices], 1 * MB, Event(env), max_rate, 0.0, "")
        )
    return links, flows


@given(topologies())
@settings(max_examples=120)
def test_capacity_conservation(topology):
    links, flows = topology
    rates = max_min_rates(flows)
    assert set(rates) == set(flows)
    for link in links:
        load = sum(rates[f] for f in flows if link in f.path)
        assert load <= link.capacity * (1 + 1e-9)


@given(topologies())
@settings(max_examples=120)
def test_flow_caps_respected(topology):
    _links, flows = topology
    rates = max_min_rates(flows)
    for flow in flows:
        assert rates[flow] >= 0
        if flow.max_rate is not None:
            assert rates[flow] <= flow.max_rate * (1 + 1e-9)


@given(topologies())
@settings(max_examples=120)
def test_max_min_bottleneck_justification(topology):
    """Every flow below its cap must have a saturated bottleneck link
    where no competitor gets a larger share (the max-min criterion)."""
    links, flows = topology
    rates = max_min_rates(flows)
    for flow in flows:
        if flow.max_rate is not None and math.isclose(
            rates[flow], flow.max_rate, rel_tol=1e-6
        ):
            continue  # capped at its own limit: fine
        justified = False
        for link in flow.path:
            members = [f for f in flows if link in f.path]
            load = sum(rates[f] for f in members)
            saturated = math.isclose(load, link.capacity, rel_tol=1e-6)
            no_bigger_peer = all(
                rates[f] <= rates[flow] * (1 + 1e-6) for f in members
            )
            if saturated and no_bigger_peer:
                justified = True
                break
        assert justified, f"flow {flow.id} rate {rates[flow]} lacks a bottleneck"


@given(
    st.lists(st.floats(0.1, 50.0), min_size=1, max_size=6),
    st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_dynamic_simulation_delivers_all_bytes(sizes_mb, n_dests):
    env = Environment()
    net = FlowNetwork(env)
    net.add_link("up", 100 * Mbit)
    for i in range(n_dests):
        net.add_link(f"d{i}", 100 * Mbit)

    def one(env, i, nbytes):
        flow = net.start_flow(["up", f"d{i % n_dests}"], nbytes)
        yield flow.done

    total = 0
    for i, size in enumerate(sizes_mb):
        nbytes = int(size * MB)
        total += nbytes
        env.process(one(env, i, nbytes))
    env.run()
    assert net.completed_flows == len(sizes_mb)
    assert net.total_bytes_moved >= total * (1 - 1e-9)
    # Makespan is bounded below by the bottleneck serialization.
    assert env.now >= (total * 8) / (100 * Mbit) * (1 - 1e-6)
