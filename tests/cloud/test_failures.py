"""Unit tests for failure injection."""

import pytest

from repro.cloud.cluster import ClusterSpec, Provisioner
from repro.cloud.failures import FailureInjector, FailureSchedule
from repro.sim import Environment


def make_cluster(env, workers=3):
    return Provisioner(env).provision_now(ClusterSpec(num_workers=workers))


class TestFailureSchedule:
    def test_of_sorts_entries(self):
        schedule = FailureSchedule.of((5.0, "b"), (1.0, "a"))
        assert schedule.entries == ((1.0, "a"), (5.0, "b"))


class TestScheduledInjection:
    def test_kills_at_given_times(self):
        env = Environment()
        cluster = make_cluster(env)
        injector = FailureInjector(
            env, cluster, schedule=FailureSchedule.of((10.0, "worker1"), (20.0, "worker2"))
        )
        env.run()
        assert [(r.time, r.vm_id) for r in injector.records] == [
            (10.0, "worker1"),
            (20.0, "worker2"),
        ]
        assert not cluster.vm("worker1").is_running
        assert not cluster.vm("worker2").is_running
        assert cluster.vm("worker3").is_running

    def test_unknown_vm_skipped(self):
        env = Environment()
        cluster = make_cluster(env)
        injector = FailureInjector(env, cluster, schedule=FailureSchedule.of((1.0, "ghost")))
        env.run()
        assert injector.records == []

    def test_already_dead_vm_not_double_counted(self):
        env = Environment()
        cluster = make_cluster(env)
        injector = FailureInjector(
            env, cluster, schedule=FailureSchedule.of((1.0, "worker1"), (2.0, "worker1"))
        )
        env.run()
        assert len(injector.records) == 1

    def test_max_failures_cap(self):
        env = Environment()
        cluster = make_cluster(env)
        injector = FailureInjector(
            env,
            cluster,
            schedule=FailureSchedule.of((1.0, "worker1"), (2.0, "worker2"), (3.0, "worker3")),
            max_failures=2,
        )
        env.run()
        assert len(injector.records) == 2
        assert cluster.vm("worker3").is_running


class TestRandomInjection:
    def test_exactly_one_mode_required(self):
        env = Environment()
        cluster = make_cluster(env)
        with pytest.raises(ValueError):
            FailureInjector(env, cluster)
        with pytest.raises(ValueError):
            FailureInjector(
                env, cluster, schedule=FailureSchedule.of((1.0, "worker1")), mttf_s=10.0
            )

    def test_spares_master_by_default(self):
        env = Environment()
        cluster = make_cluster(env)
        FailureInjector(env, cluster, mttf_s=5.0, seed=3)
        env.run(until=10_000)
        assert cluster.master_vm.is_running
        # Everything else eventually dies.
        assert all(not vm.is_running for vm in cluster.worker_vms)

    def test_deterministic_for_seed(self):
        times = []
        for _ in range(2):
            env = Environment()
            cluster = make_cluster(env)
            injector = FailureInjector(env, cluster, mttf_s=100.0, seed=11, max_failures=2)
            env.run(until=100_000)
            times.append(tuple((r.time, r.vm_id) for r in injector.records))
        assert times[0] == times[1]

    def test_invalid_mttf(self):
        env = Environment()
        cluster = make_cluster(env)
        FailureInjector(env, cluster, mttf_s=-1.0)
        with pytest.raises(ValueError):
            env.run()
