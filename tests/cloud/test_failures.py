"""Unit tests for failure injection."""

import pytest

from repro.cloud.cluster import ClusterSpec, Provisioner
from repro.cloud.failures import FailureInjector, FailureSchedule
from repro.errors import ConfigurationError
from repro.sim import Environment


def make_cluster(env, workers=3):
    return Provisioner(env).provision_now(ClusterSpec(num_workers=workers))


class TestFailureSchedule:
    def test_of_sorts_entries(self):
        schedule = FailureSchedule.of((5.0, "b"), (1.0, "a"))
        assert schedule.entries == ((1.0, "a", "crash"), (5.0, "b", "crash"))

    def test_silent_mode_normalized_and_flagged(self):
        schedule = FailureSchedule.of((1.0, "a"), (2.0, "b", "silent"))
        assert schedule.entries == ((1.0, "a", "crash"), (2.0, "b", "silent"))
        assert schedule.has_silent
        assert not FailureSchedule.of((1.0, "a")).has_silent

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.of((1.0, "a", "flaky"))


class TestScheduledInjection:
    def test_kills_at_given_times(self):
        env = Environment()
        cluster = make_cluster(env)
        injector = FailureInjector(
            env, cluster, schedule=FailureSchedule.of((10.0, "worker1"), (20.0, "worker2"))
        )
        env.run()
        assert [(r.time, r.vm_id) for r in injector.records] == [
            (10.0, "worker1"),
            (20.0, "worker2"),
        ]
        assert not cluster.vm("worker1").is_running
        assert not cluster.vm("worker2").is_running
        assert cluster.vm("worker3").is_running

    def test_unknown_vm_skipped(self):
        env = Environment()
        cluster = make_cluster(env)
        injector = FailureInjector(env, cluster, schedule=FailureSchedule.of((1.0, "ghost")))
        env.run()
        assert injector.records == []

    def test_already_dead_vm_not_double_counted(self):
        env = Environment()
        cluster = make_cluster(env)
        injector = FailureInjector(
            env, cluster, schedule=FailureSchedule.of((1.0, "worker1"), (2.0, "worker1"))
        )
        env.run()
        assert len(injector.records) == 1

    def test_max_failures_cap(self):
        env = Environment()
        cluster = make_cluster(env)
        injector = FailureInjector(
            env,
            cluster,
            schedule=FailureSchedule.of((1.0, "worker1"), (2.0, "worker2"), (3.0, "worker3")),
            max_failures=2,
        )
        env.run()
        assert len(injector.records) == 2
        assert cluster.vm("worker3").is_running


class TestRandomInjection:
    def test_exactly_one_mode_required(self):
        env = Environment()
        cluster = make_cluster(env)
        with pytest.raises(ValueError):
            FailureInjector(env, cluster)
        with pytest.raises(ValueError):
            FailureInjector(
                env, cluster, schedule=FailureSchedule.of((1.0, "worker1")), mttf_s=10.0
            )

    def test_spares_master_by_default(self):
        env = Environment()
        cluster = make_cluster(env)
        FailureInjector(env, cluster, mttf_s=5.0, seed=3)
        env.run(until=10_000)
        assert cluster.master_vm.is_running
        # Everything else eventually dies.
        assert all(not vm.is_running for vm in cluster.worker_vms)

    def test_deterministic_for_seed(self):
        times = []
        for _ in range(2):
            env = Environment()
            cluster = make_cluster(env)
            injector = FailureInjector(env, cluster, mttf_s=100.0, seed=11, max_failures=2)
            env.run(until=100_000)
            times.append(tuple((r.time, r.vm_id) for r in injector.records))
        assert times[0] == times[1]

    def test_invalid_mttf(self):
        env = Environment()
        cluster = make_cluster(env)
        FailureInjector(env, cluster, mttf_s=-1.0)
        with pytest.raises(ValueError):
            env.run()


class TestSilentInjection:
    def test_scheduled_silent_cause_prefix(self):
        from repro.cloud.failures import is_silent_cause

        env = Environment()
        cluster = make_cluster(env)
        injector = FailureInjector(
            env, cluster, schedule=FailureSchedule.of((1.0, "worker1", "silent"))
        )
        env.run()
        assert len(injector.records) == 1
        assert is_silent_cause(injector.records[0].cause)
        assert not cluster.vm("worker1").is_running

    def test_silent_fraction_validated(self):
        env = Environment()
        cluster = make_cluster(env)
        with pytest.raises(ValueError):
            FailureInjector(env, cluster, mttf_s=10.0, silent_fraction=1.5)

    def test_silent_fraction_marks_some_random_failures(self):
        from repro.cloud.failures import is_silent_cause

        env = Environment()
        cluster = make_cluster(env, workers=6)
        injector = FailureInjector(
            env, cluster, mttf_s=5.0, silent_fraction=0.5, seed=7
        )
        env.run(until=10_000)
        causes = [r.cause for r in injector.records]
        assert len(causes) == 6
        assert any(is_silent_cause(c) for c in causes)
        assert any(not is_silent_cause(c) for c in causes)

    def test_zero_fraction_preserves_seeded_stream(self):
        """silent_fraction=0 must not consume extra RNG draws."""
        times = []
        for fraction in (0.0, 0.0):
            env = Environment()
            cluster = make_cluster(env)
            injector = FailureInjector(
                env, cluster, mttf_s=100.0, seed=11, max_failures=2,
                silent_fraction=fraction,
            )
            env.run(until=100_000)
            times.append(tuple((r.time, r.vm_id) for r in injector.records))
        assert times[0] == times[1]


class TestLinkFaultInjector:
    def _network(self, env, links=("a", "b")):
        from repro.cloud.network import FlowNetwork

        net = FlowNetwork(env)
        for name in links:
            net.add_link(name, 1e6)
        return net

    def test_scheduled_window_degrades_then_heals(self):
        from repro.cloud.failures import LinkFaultInjector, LinkFaultSchedule

        env = Environment()
        net = self._network(env)
        injector = LinkFaultInjector(
            env, net, schedule=LinkFaultSchedule.of((2.0, "a", 3.0, 0.5))
        )
        env.run(until=3.0)
        assert net.link("a").capacity == pytest.approx(5e5)
        assert net.link("a").degraded
        env.run(until=6.0)
        assert net.link("a").capacity == pytest.approx(1e6)
        assert not net.link("a").degraded
        assert injector.faults_injected == 1
        record = injector.records[0]
        assert (record.start, record.link, record.fraction) == (2.0, "a", 0.5)

    def test_blackout_fraction_zero(self):
        from repro.cloud.failures import LinkFaultInjector, LinkFaultSchedule

        env = Environment()
        net = self._network(env)
        LinkFaultInjector(
            env, net, schedule=LinkFaultSchedule.of((1.0, "a", 2.0, 0.0))
        )
        env.run(until=2.0)
        assert net.link("a").capacity == 0.0
        env.run()
        assert net.link("a").capacity == 1e6

    def test_overlapping_window_skipped(self):
        from repro.cloud.failures import LinkFaultInjector, LinkFaultSchedule

        env = Environment()
        net = self._network(env)
        injector = LinkFaultInjector(
            env,
            net,
            schedule=LinkFaultSchedule.of((1.0, "a", 10.0, 0.5), (2.0, "a", 1.0, 0.0)),
        )
        env.run()
        assert injector.faults_injected == 1

    def test_random_mode_deterministic(self):
        from repro.cloud.failures import LinkFaultInjector

        runs = []
        for _ in range(2):
            env = Environment()
            net = self._network(env)
            injector = LinkFaultInjector(
                env, net, links=["a", "b"], mtbf_s=50.0, seed=9, max_faults=5
            )
            env.run(until=10_000)
            runs.append(
                tuple((r.start, r.link, r.duration, r.fraction) for r in injector.records)
            )
        assert runs[0] == runs[1]
        assert len(runs[0]) == 5

    def test_exactly_one_mode_required(self):
        from repro.cloud.failures import LinkFaultInjector

        env = Environment()
        net = self._network(env)
        with pytest.raises(ValueError):
            LinkFaultInjector(env, net)
        with pytest.raises(ValueError):
            LinkFaultInjector(env, net, mtbf_s=10.0)  # random needs links=

    def test_schedule_validation(self):
        from repro.cloud.failures import LinkFaultSchedule

        with pytest.raises(ConfigurationError):
            LinkFaultSchedule.of((1.0, "a", 0.0, 0.5))  # zero duration
        with pytest.raises(ConfigurationError):
            LinkFaultSchedule.of((1.0, "a", 1.0, 1.0))  # fraction must be < 1


class TestTransferFaultModel:
    def test_zero_rate_never_faults(self):
        from repro.cloud.failures import TransferFaultModel

        model = TransferFaultModel(0.0, seed=1)
        assert all(model.draw() is None for _ in range(100))
        assert model.faults_drawn == 0

    def test_faults_at_expected_rate(self):
        from repro.cloud.failures import TransferFaultModel

        model = TransferFaultModel(0.3, seed=2)
        draws = [model.draw() for _ in range(2000)]
        faults = [d for d in draws if d is not None]
        assert 0.25 < len(faults) / len(draws) < 0.35
        assert all(0.05 <= f <= 0.95 for f in faults)

    def test_deterministic_for_seed(self):
        from repro.cloud.failures import TransferFaultModel

        m1, m2 = TransferFaultModel(0.5, seed=3), TransferFaultModel(0.5, seed=3)
        assert [m1.draw() for _ in range(50)] == [m2.draw() for _ in range(50)]

    def test_rate_validated(self):
        from repro.cloud.failures import TransferFaultModel

        with pytest.raises(ValueError):
            TransferFaultModel(1.0)
