"""Unit tests for instance types and virtual machines."""

import pytest

from repro.cloud.instance import C1_XLARGE, M1_LARGE, M1_SMALL, InstanceType, VirtualMachine, VmState
from repro.errors import ProvisioningError
from repro.sim import Environment, Interrupt


class TestInstanceType:
    def test_paper_instance_matches_section_iv(self):
        # §IV-A: c1.xlarge with 4 cores and 4 GB memory.
        assert C1_XLARGE.cores == 4
        assert C1_XLARGE.memory_bytes == 4_000_000_000

    def test_catalog_entries_valid(self):
        for itype in (C1_XLARGE, M1_SMALL, M1_LARGE):
            assert itype.cores >= 1
            assert itype.nic_bps > 0

    def test_zero_cores_rejected(self):
        with pytest.raises(ProvisioningError):
            InstanceType("bad", 0, 1, 1, 1, 1, 1)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ProvisioningError):
            InstanceType("bad", 1, 1, 1, 0, 1, 1)


class TestVirtualMachine:
    def test_lifecycle(self):
        env = Environment()
        vm = VirtualMachine(env, "vm0", C1_XLARGE)
        assert vm.state is VmState.PROVISIONING
        vm.mark_running()
        assert vm.is_running
        vm.terminate()
        assert vm.state is VmState.TERMINATED

    def test_double_boot_rejected(self):
        env = Environment()
        vm = VirtualMachine(env, "vm0", C1_XLARGE)
        vm.mark_running()
        with pytest.raises(ProvisioningError):
            vm.mark_running()

    def test_cpu_capacity_equals_cores(self):
        env = Environment()
        vm = VirtualMachine(env, "vm0", C1_XLARGE)
        assert vm.cpu.capacity == 4

    def test_fail_interrupts_registered_processes(self):
        env = Environment()
        vm = VirtualMachine(env, "vm0", C1_XLARGE)
        vm.mark_running()

        def task(env):
            try:
                yield env.timeout(100)
                return "finished"
            except Interrupt as i:
                return ("interrupted", i.cause)

        def killer(env):
            yield env.timeout(5)
            vm.fail("disk-died")

        p = vm.register_process(env.process(task(env)))
        env.process(killer(env))
        env.run()
        assert p.value == ("interrupted", ("vm0", "disk-died"))
        assert vm.state is VmState.FAILED
        assert vm.failure_time == 5.0

    def test_fail_idempotent(self):
        env = Environment()
        vm = VirtualMachine(env, "vm0", C1_XLARGE)
        vm.mark_running()
        vm.fail()
        vm.fail()  # no raise
        assert vm.state is VmState.FAILED

    def test_fail_skips_dead_processes(self):
        env = Environment()
        vm = VirtualMachine(env, "vm0", C1_XLARGE)
        vm.mark_running()

        def quick(env):
            yield env.timeout(1)

        p = vm.register_process(env.process(quick(env)))
        env.run()
        vm.fail()  # process already finished; must not raise

    def test_uptime_tracks_boot_to_failure(self):
        env = Environment()
        vm = VirtualMachine(env, "vm0", C1_XLARGE)

        def scenario(env):
            yield env.timeout(10)
            vm.mark_running()
            yield env.timeout(50)
            vm.fail()

        env.process(scenario(env))
        env.run()
        assert vm.uptime == pytest.approx(50.0)

    def test_uptime_zero_before_boot(self):
        env = Environment()
        vm = VirtualMachine(env, "vm0", C1_XLARGE)
        assert vm.uptime == 0.0
