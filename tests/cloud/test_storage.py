"""Unit tests for storage volumes and tiers."""

import pytest

from repro.cloud.network import FlowNetwork
from repro.cloud.storage import BlockStore, LocalDisk, NetworkStorage, StorageTier
from repro.errors import StorageError
from repro.sim import Environment
from repro.util.units import GB, MB, Mbit


@pytest.fixture
def net():
    return FlowNetwork(Environment())


class TestVolumeContents:
    def test_capacity_accounting(self, net):
        disk = LocalDisk(net, "d", 10 * MB, 1e6, 1e6)
        disk.store_file("a", 4 * MB)
        assert disk.used_bytes == 4 * MB
        assert disk.free_bytes == 6 * MB

    def test_overflow_raises(self, net):
        disk = LocalDisk(net, "d", 10 * MB, 1e6, 1e6)
        disk.store_file("a", 8 * MB)
        with pytest.raises(StorageError):
            disk.store_file("b", 4 * MB)

    def test_store_idempotent_per_name(self, net):
        disk = LocalDisk(net, "d", 10 * MB, 1e6, 1e6)
        disk.store_file("a", 4 * MB)
        disk.store_file("a", 4 * MB)
        assert disk.used_bytes == 4 * MB

    def test_remove_releases_space(self, net):
        disk = LocalDisk(net, "d", 10 * MB, 1e6, 1e6)
        disk.store_file("a", 4 * MB)
        disk.remove_file("a")
        assert disk.used_bytes == 0
        assert not disk.has_file("a")

    def test_remove_missing_is_noop(self, net):
        disk = LocalDisk(net, "d", 10 * MB, 1e6, 1e6)
        disk.remove_file("ghost")

    def test_clear_empties_volume(self, net):
        disk = LocalDisk(net, "d", 10 * MB, 1e6, 1e6)
        disk.store_file("a", 1 * MB)
        disk.store_file("b", 1 * MB)
        disk.clear()
        assert disk.used_bytes == 0
        assert disk.file_names() == frozenset()

    def test_negative_size_rejected(self, net):
        disk = LocalDisk(net, "d", 10 * MB, 1e6, 1e6)
        with pytest.raises(StorageError):
            disk.store_file("a", -1)

    def test_zero_capacity_rejected(self, net):
        with pytest.raises(StorageError):
            LocalDisk(net, "d", 0, 1e6, 1e6)


class TestTierPaths:
    def test_local_disk_paths_single_hop(self, net):
        disk = LocalDisk(net, "d", 1 * GB, 1e6, 1e6)
        assert disk.read_path() == ("d.read",)
        assert disk.write_path() == ("d.write",)
        assert disk.tier is StorageTier.LOCAL

    def test_network_storage_adds_server_hop(self, net):
        store = NetworkStorage(net, "ns", 1 * GB, 1e6, 1e6, server_uplink_bps=1e6)
        assert store.read_path() == ("ns.read", "ns.server")
        assert store.write_path() == ("ns.server", "ns.write")
        assert store.tier is StorageTier.NETWORK

    def test_links_registered_on_network(self, net):
        LocalDisk(net, "d", 1 * GB, 1e6, 1e6)
        assert net.link("d.read").capacity == 1e6
        assert net.link("d.write").capacity == 1e6


class TestNetworkStorageContention:
    def test_server_uplink_is_shared_bottleneck(self):
        env = Environment()
        net = FlowNetwork(env)
        store = NetworkStorage(
            net, "ns", 1 * GB, read_bps=400 * Mbit, write_bps=400 * Mbit,
            server_uplink_bps=100 * Mbit,
        )
        for i in range(4):
            net.add_link(f"w{i}", 100 * Mbit)
        ends = []

        def reader(env, i):
            flow = net.start_flow(list(store.read_path()) + [f"w{i}"], 25 * MB)
            yield flow.done
            ends.append(env.now)

        for i in range(4):
            env.process(reader(env, i))
        env.run()
        # 100 MB aggregate through the 100 Mbit server uplink: 8 s.
        assert max(ends) == pytest.approx(8.0, rel=1e-6)


class TestBlockStore:
    def test_attach_detach(self, net):
        bs = BlockStore(net, "b", 1 * GB, 1e6, 1e6)
        bs.attach("vm0")
        assert bs.attached_to == "vm0"
        bs.detach()
        bs.attach("vm1")

    def test_reattach_same_vm_ok(self, net):
        bs = BlockStore(net, "b", 1 * GB, 1e6, 1e6)
        bs.attach("vm0")
        bs.attach("vm0")

    def test_double_attach_rejected(self, net):
        bs = BlockStore(net, "b", 1 * GB, 1e6, 1e6)
        bs.attach("vm0")
        with pytest.raises(StorageError):
            bs.attach("vm1")
