"""Unit tests for the flow-level network model."""


import pytest

from repro.errors import NetworkError
from repro.sim import Environment
from repro.sim.monitor import Monitor
from repro.cloud.network import Flow, FlowNetwork, Link, Route, max_min_rates
from repro.util.units import MB, Mbit


def _transfer(env, net, path, nbytes, **kw):
    """Helper: run a single transfer to completion, return finish time."""

    def proc(env):
        flow = net.start_flow(path, nbytes, **kw)
        yield flow.done
        return env.now

    p = env.process(proc(env))
    env.run()
    return p.value


class TestLink:
    def test_positive_capacity_required(self):
        with pytest.raises(NetworkError):
            Link("l", 0)

    def test_negative_latency_rejected(self):
        with pytest.raises(NetworkError):
            Link("l", 1e6, latency_s=-1)

    def test_duplicate_link_name(self):
        net = FlowNetwork(Environment())
        net.add_link("x", 1e6)
        with pytest.raises(NetworkError):
            net.add_link("x", 1e6)

    def test_unknown_link_lookup(self):
        net = FlowNetwork(Environment())
        with pytest.raises(NetworkError):
            net.link("nope")


class TestRoute:
    def test_empty_route_rejected(self):
        with pytest.raises(NetworkError):
            Route("r", ())

    def test_route_registration_validates_links(self):
        net = FlowNetwork(Environment())
        net.add_link("a", 1e6)
        with pytest.raises(NetworkError):
            net.add_route("r", ["a", "missing"])

    def test_named_route_usable(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("a", 100 * Mbit)
        route = net.add_route("r", ["a"])
        finish = _transfer(env, net, net.route("r"), 100 * MB)
        assert finish == pytest.approx(8.0, rel=1e-6)


class TestSingleFlow:
    def test_duration_matches_bandwidth(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("l", 100 * Mbit)
        finish = _transfer(env, net, ["l"], 100 * MB)
        assert finish == pytest.approx(8.0, rel=1e-6)

    def test_latency_added_once(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("l", 100 * Mbit, latency_s=0.5)
        finish = _transfer(env, net, ["l"], 100 * MB)
        assert finish == pytest.approx(8.5, rel=1e-6)

    def test_multi_hop_limited_by_slowest(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("fast", 1000 * Mbit)
        net.add_link("slow", 10 * Mbit)
        finish = _transfer(env, net, ["fast", "slow"], 10 * MB)
        assert finish == pytest.approx(8.0, rel=1e-6)

    def test_max_rate_cap(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("l", 100 * Mbit)
        finish = _transfer(env, net, ["l"], 25 * MB, max_rate=20 * Mbit)
        assert finish == pytest.approx(10.0, rel=1e-6)

    def test_zero_volume_is_pure_latency(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("l", 100 * Mbit, latency_s=0.25)
        finish = _transfer(env, net, ["l"], 0)
        assert finish == pytest.approx(0.25)

    def test_zero_volume_records_monitor_interval(self):
        """Control messages (0 bytes) still show up in the flow trace."""
        env = Environment()
        monitor = Monitor()
        net = FlowNetwork(env, monitor)
        net.add_link("l", 100 * Mbit, latency_s=0.25)
        _transfer(env, net, ["l"], 0, tag="ctrl")
        intervals = monitor.intervals_for("flow", tag="ctrl")
        assert len(intervals) == 1
        assert intervals[0].tags["nbytes"] == 0.0
        assert intervals[0].end - intervals[0].start == pytest.approx(0.25)

    def test_zero_volume_instant_records_monitor_interval(self):
        """Even a 0-byte, 0-latency transfer leaves a trace record."""
        env = Environment()
        monitor = Monitor()
        net = FlowNetwork(env, monitor)
        net.add_link("l", 100 * Mbit)
        net.start_flow(["l"], 0, tag="ping")
        intervals = monitor.intervals_for("flow", tag="ping")
        assert len(intervals) == 1
        assert intervals[0].tags["nbytes"] == 0.0
        assert intervals[0].start == intervals[0].end == 0.0

    def test_negative_volume_rejected(self):
        net = FlowNetwork(Environment())
        net.add_link("l", 1e6)
        with pytest.raises(NetworkError):
            net.start_flow(["l"], -1)

    def test_mean_throughput_recorded(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("l", 100 * Mbit)

        def proc(env):
            flow = net.start_flow(["l"], 100 * MB)
            yield flow.done
            return flow

        p = env.process(proc(env))
        env.run()
        assert p.value.mean_throughput_bps == pytest.approx(100 * Mbit, rel=1e-6)


class TestFairSharing:
    def test_equal_split_on_shared_link(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("up", 100 * Mbit)
        for i in range(4):
            net.add_link(f"w{i}", 100 * Mbit)
        ends = []

        def one(env, i):
            flow = net.start_flow(["up", f"w{i}"], 100 * MB)
            yield flow.done
            ends.append(env.now)

        for i in range(4):
            env.process(one(env, i))
        env.run()
        # 400 MB aggregate over a 100 Mbit/s bottleneck = 32 s; fair
        # sharing means everyone finishes together.
        assert all(e == pytest.approx(32.0, rel=1e-6) for e in ends)

    def test_late_joiner_shares_then_speeds_up(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("up", 100 * Mbit)
        net.add_link("a", 100 * Mbit)
        net.add_link("b", 100 * Mbit)
        finish = {}

        def one(env, name, start, nbytes):
            yield env.timeout(start)
            flow = net.start_flow(["up", name], nbytes)
            yield flow.done
            finish[name] = env.now

        env.process(one(env, "a", 0, 100 * MB))
        env.process(one(env, "b", 4, 50 * MB))
        env.run()
        # a alone for 4s (50MB done), then both at 50 Mbit finish their
        # remaining 50MB at t=12.
        assert finish["a"] == pytest.approx(12.0, rel=1e-6)
        assert finish["b"] == pytest.approx(12.0, rel=1e-6)

    def test_unrelated_links_independent(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("l1", 100 * Mbit)
        net.add_link("l2", 100 * Mbit)
        ends = []

        def one(env, link):
            flow = net.start_flow([link], 100 * MB)
            yield flow.done
            ends.append(env.now)

        env.process(one(env, "l1"))
        env.process(one(env, "l2"))
        env.run()
        assert all(e == pytest.approx(8.0, rel=1e-6) for e in ends)

    def test_bytes_accounting(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("l", 100 * Mbit)
        _transfer(env, net, ["l"], 10 * MB)
        assert net.total_bytes_moved == pytest.approx(10 * MB)
        assert net.completed_flows == 1


class TestMaxMinRates:
    def _flow(self, path, max_rate=None):
        env = Environment()
        from repro.sim.kernel import Event

        return Flow(0, path, 1 * MB, Event(env), max_rate, 0.0, "t")

    def test_single_flow_gets_capacity(self):
        link = Link("l", 100.0)
        flow = self._flow([link])
        rates = max_min_rates([flow])
        assert rates[flow] == pytest.approx(100.0)

    def test_two_flows_split(self):
        link = Link("l", 100.0)
        f1, f2 = self._flow([link]), self._flow([link])
        rates = max_min_rates([f1, f2])
        assert rates[f1] == pytest.approx(50.0)
        assert rates[f2] == pytest.approx(50.0)

    def test_capped_flow_releases_capacity(self):
        link = Link("l", 100.0)
        capped = self._flow([link], max_rate=10.0)
        free = self._flow([link])
        rates = max_min_rates([capped, free])
        assert rates[capped] == pytest.approx(10.0)
        assert rates[free] == pytest.approx(90.0)

    def test_bottleneck_then_secondary(self):
        # f1 crosses both links; f2 only the big one. The 10-capacity
        # link caps f1 at 10; f2 then gets 90 of the big link.
        small = Link("small", 10.0)
        big = Link("big", 100.0)
        f1 = self._flow([small, big])
        f2 = self._flow([big])
        rates = max_min_rates([f1, f2])
        assert rates[f1] == pytest.approx(10.0)
        assert rates[f2] == pytest.approx(90.0)

    def test_empty_flow_set(self):
        assert max_min_rates([]) == {}
