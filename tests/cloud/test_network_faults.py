"""Mutable link capacity and flow cancellation (fault-path primitives)."""

import pytest

from repro.errors import NetworkError
from repro.sim import Environment
from repro.cloud.network import FlowNetwork


def _net(env, cap=1e6):
    net = FlowNetwork(env)
    net.add_link("l", cap)
    return net


class TestLinkCapacity:
    def test_degrade_slows_flow(self):
        env = Environment()
        net = _net(env, cap=8e6)  # 1 MB/s

        def proc():
            flow = net.start_flow(["l"], 2_000_000)
            yield flow.done
            return env.now

        p = env.process(proc())
        env.run(until=1.0)  # 1 MB moved
        net.set_link_capacity("l", 4e6)  # half speed for the rest
        env.run()
        assert p.value == pytest.approx(3.0)

    def test_blackout_stalls_then_restore_resumes(self):
        env = Environment()
        net = _net(env, cap=8e6)

        def proc():
            flow = net.start_flow(["l"], 1_000_000)
            yield flow.done
            return env.now

        p = env.process(proc())
        env.run(until=0.5)
        net.set_link_capacity("l", 0.0)  # blackout
        env.run(until=10.0)
        assert not p.triggered  # frozen mid-transfer
        net.restore_link("l")
        env.run()
        assert p.value == pytest.approx(10.5)

    def test_degraded_property_and_base_capacity(self):
        env = Environment()
        net = _net(env, cap=1e6)
        link = net.link("l")
        assert not link.degraded
        net.set_link_capacity("l", 5e5)
        assert link.degraded
        assert link.base_capacity == 1e6
        net.restore_link("l")
        assert not link.degraded
        assert link.capacity == 1e6

    def test_negative_capacity_rejected(self):
        net = _net(Environment())
        with pytest.raises(NetworkError):
            net.set_link_capacity("l", -1.0)


class TestCancelFlow:
    def test_cancel_releases_bandwidth(self):
        env = Environment()
        net = _net(env, cap=8e6)

        def victim():
            flow = net.start_flow(["l"], 8_000_000)
            yield flow.done
            return flow

        def other():
            flow = net.start_flow(["l"], 1_000_000)
            yield flow.done
            return env.now

        pv = env.process(victim())
        po = env.process(other())
        env.run(until=0.5)
        # Reach into the victim's flow via the network's book-keeping.
        victim_flow = next(f for f in net._flows if f.total_bits == 8_000_000 * 8)
        assert net.cancel_flow(victim_flow, reason="test")
        env.run()
        # The survivor gets the full link back: 0.5 s shared (0.25 MB
        # moved) + 0.75 MB at full rate.
        assert po.value == pytest.approx(0.5 + 0.75)
        assert victim_flow.cancelled
        assert pv.triggered  # waiter woke up (done succeeded)

    def test_cancel_finished_flow_returns_false(self):
        env = Environment()
        net = _net(env)

        def proc():
            flow = net.start_flow(["l"], 1000)
            yield flow.done
            return flow

        p = env.process(proc())
        env.run()
        assert net.cancel_flow(p.value) is False
        assert not p.value.cancelled

    def test_cancel_pending_flow_before_admission(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_link("lat", 1e6, latency_s=5.0)
        flow = net.start_flow(["lat"], 1000)
        env.run(until=1.0)  # still inside startup latency
        assert net.cancel_flow(flow)
        env.run()
        assert flow.cancelled
        assert flow.done.triggered

    def test_cancelled_counter(self):
        from repro.telemetry.spans import Telemetry

        env = Environment()
        tel = Telemetry(clock=lambda: env.now)
        net = FlowNetwork(env, telemetry=tel)
        net.add_link("l", 1e6)
        flow = net.start_flow(["l"], 1_000_000)
        env.run(until=0.1)
        net.cancel_flow(flow)
        env.run()
        assert tel.metrics.counter("network.flows_cancelled").value == 1
