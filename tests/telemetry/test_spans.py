"""Unit tests for the telemetry hub: spans, events, sinks, null path."""

import pytest

from repro.sim.monitor import Monitor, MonitorSink
from repro.telemetry import (
    NULL_TELEMETRY,
    SpanRecord,
    Telemetry,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpanLifecycle:
    def test_span_records_start_end_and_tags(self):
        clock = FakeClock()
        tel = Telemetry(clock, record=True)
        handle = tel.span("exec", worker="w0")
        clock.now = 5.0
        handle.end(ok=True)
        (span,) = tel.spans
        assert span.key == "exec"
        assert span.start == 0.0 and span.end == 5.0
        assert span.tags == (("ok", True), ("worker", "w0"))

    def test_context_manager_closes(self):
        clock = FakeClock()
        tel = Telemetry(clock, record=True)
        with tel.span("staging"):
            clock.now = 2.0
        assert tel.spans[0].end == 2.0

    def test_double_end_is_noop(self):
        tel = Telemetry(FakeClock(), record=True)
        handle = tel.span("x")
        handle.end()
        handle.end()
        assert len(tel.spans) == 1

    def test_parent_linkage_by_handle_and_record(self):
        tel = Telemetry(FakeClock(), record=True)
        root = tel.span("run")
        child = tel.span_complete("task", 0.0, 1.0, parent=root)
        assert isinstance(child, SpanRecord)
        assert child.parent_id == root.span_id
        grandchild = tel.span_complete("exec", 0.0, 0.5, parent=child)
        assert grandchild.parent_id == child.span_id

    def test_explicit_start_overrides_clock(self):
        clock = FakeClock()
        clock.now = 9.0
        tel = Telemetry(clock, record=True)
        handle = tel.span("task", start=4.0)
        handle.end()
        assert tel.spans[0].start == 4.0

    def test_ids_are_sequential_per_hub(self):
        tel = Telemetry(FakeClock(), record=True)
        a = tel.span_complete("a", 0, 1)
        b = tel.span_complete("b", 1, 2)
        assert (a.span_id, b.span_id) == (1, 2)

    def test_events_record_value_and_time(self):
        clock = FakeClock()
        clock.now = 3.0
        tel = Telemetry(clock, record=True)
        tel.event("vm.failed", "vm-2", cause="mttf")
        (event,) = tel.events
        assert event.time == 3.0
        assert event.value == "vm-2"
        assert event.tags == (("cause", "mttf"),)


class TestBindAndSinks:
    def test_monitor_sink_receives_span_as_interval(self):
        monitor = Monitor()
        tel = Telemetry(FakeClock())
        tel.bind(monitor=MonitorSink(monitor))
        tel.span_complete("transfer", 1.0, 4.0, file="a.bin")
        (interval,) = monitor.intervals_for("transfer")
        assert (interval.start, interval.end) == (1.0, 4.0)
        assert interval.tags == {"file": "a.bin"}

    def test_monitor_sink_receives_event_as_sample(self):
        monitor = Monitor()
        tel = Telemetry(FakeClock())
        tel.bind(monitor=MonitorSink(monitor))
        tel.event("queue", 7, time=2.0)
        assert monitor.series("queue") == [(2.0, 7)]

    def test_rebind_replaces_monitor_sink(self):
        # A hub shared across a sweep must not leak run A's spans into
        # run B's monitor.
        first, second = Monitor(), Monitor()
        tel = Telemetry(FakeClock())
        tel.bind(monitor=MonitorSink(first))
        tel.span_complete("exec", 0, 1)
        tel.bind(monitor=MonitorSink(second))
        tel.span_complete("exec", 1, 2)
        assert len(first.intervals_for("exec")) == 1
        assert len(second.intervals_for("exec")) == 1

    def test_rebind_run_label_stamps_subsequent_records(self):
        tel = Telemetry(FakeClock(), record=True)
        tel.bind(run="als:real_time")
        tel.span_complete("exec", 0, 1)
        tel.bind(run="als:pre_partitioned_remote")
        tel.span_complete("exec", 1, 2)
        assert [s.run for s in tel.spans] == [
            "als:real_time",
            "als:pre_partitioned_remote",
        ]

    def test_persistent_sinks_survive_rebinding(self):
        seen = []

        class Sink:
            def on_span(self, span):
                seen.append(span.key)

            def on_event(self, event):
                pass

        tel = Telemetry(FakeClock())
        tel.add_sink(Sink())
        tel.bind(monitor=MonitorSink(Monitor()))
        tel.span_complete("a", 0, 1)
        tel.bind(monitor=MonitorSink(Monitor()))
        tel.span_complete("b", 1, 2)
        assert seen == ["a", "b"]

    def test_enabled_reflects_consumers(self):
        tel = Telemetry(FakeClock())
        assert not tel.enabled
        tel.bind(monitor=MonitorSink(Monitor()))
        assert tel.enabled
        assert Telemetry(FakeClock(), record=True).enabled

    def test_record_false_keeps_no_lists(self):
        tel = Telemetry(FakeClock())
        tel.bind(monitor=MonitorSink(Monitor()))
        tel.span_complete("exec", 0, 1)
        tel.event("x")
        assert tel.spans == [] and tel.events == []


class TestNullTelemetry:
    def test_all_operations_are_noops(self):
        handle = NULL_TELEMETRY.span("anything", worker="w0")
        handle.end(ok=True)
        with NULL_TELEMETRY.span("scoped"):
            pass
        assert NULL_TELEMETRY.span_complete("x", 0, 1) is None
        NULL_TELEMETRY.event("x", 1)
        NULL_TELEMETRY.bind(run="ignored")
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.spans == [] and NULL_TELEMETRY.events == []

    def test_null_metrics_attached(self):
        counter = NULL_TELEMETRY.metrics.counter("whatever")
        counter.inc()
        assert len(NULL_TELEMETRY.metrics) == 0

    def test_sinks_rejected(self):
        with pytest.raises(ValueError):
            NULL_TELEMETRY.add_sink(object())
