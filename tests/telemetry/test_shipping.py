"""Unit tests for the distributed telemetry plane: shipper, codec,
clock aligner, and merger."""

import pytest

from repro.errors import ProtocolError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.shipping import (
    BATCH_VERSION,
    ClockAligner,
    TelemetryMerger,
    TelemetryShipper,
    decode_batch,
    encode_batch,
)
from repro.telemetry.spans import Telemetry


def make_hub(t0=0.0):
    state = {"now": t0}
    tel = Telemetry(clock=lambda: state["now"], record=True, run="w")
    return tel, state


class TestShipper:
    def test_requires_recording_hub(self):
        with pytest.raises(ValueError):
            TelemetryShipper(Telemetry(record=False))

    def test_empty_hub_yields_no_batch(self):
        tel, _ = make_hub()
        assert TelemetryShipper(tel).take_batch() is None

    def test_batch_carries_only_new_records(self):
        tel, state = make_hub()
        shipper = TelemetryShipper(tel)
        with tel.span("task", track="worker:w", task=1):
            state["now"] = 1.0
        first = shipper.take_batch()
        assert first["seq"] == 1
        assert len(first["spans"]) == 1
        assert first["spans"][0][2] == "task"
        # Nothing new: no batch at all.
        assert shipper.take_batch() is None
        tel.event("x", 1, track="worker:w")
        second = shipper.take_batch()
        assert second["seq"] == 2
        assert second["spans"] == []
        assert len(second["events"]) == 1

    def test_counter_and_histogram_deltas(self):
        tel, _ = make_hub()
        shipper = TelemetryShipper(tel)
        tel.metrics.counter("c").inc(2)
        tel.metrics.histogram("h", buckets=(1.0,)).observe(0.5)
        b1 = shipper.take_batch()
        assert b1["counters"]["c"] == 2
        assert b1["hists"]["h"]["count"] == 1
        tel.metrics.counter("c").inc(3)
        tel.metrics.histogram("h").observe(0.5)
        b2 = shipper.take_batch()
        # Deltas, not totals.
        assert b2["counters"]["c"] == 3
        assert b2["hists"]["h"]["count"] == 1
        assert b2["hists"]["h"]["counts"] == [1, 0]

    def test_unchanged_metrics_not_reshipped(self):
        tel, _ = make_hub()
        shipper = TelemetryShipper(tel)
        tel.metrics.counter("c").inc()
        shipper.take_batch()
        tel.event("tick", track="worker:w")
        batch = shipper.take_batch()
        assert batch["counters"] == {}
        assert batch["hists"] == {}


class TestCodec:
    def test_round_trip(self):
        tel, _ = make_hub()
        shipper = TelemetryShipper(tel)
        tel.metrics.counter("c").inc()
        with tel.span("task", track="worker:w"):
            pass
        batch = shipper.take_batch()
        assert decode_batch(encode_batch(batch)) == batch

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_batch(b"\xff\xfe not json")
        with pytest.raises(ProtocolError):
            decode_batch(b'"a string"')

    def test_wrong_version_rejected(self):
        bad = encode_batch(
            {"v": BATCH_VERSION + 1, "seq": 1, "spans": [], "events": [],
             "counters": {}, "gauges": {}, "hists": {}}
        )
        with pytest.raises(ProtocolError):
            decode_batch(bad)

    def test_missing_field_rejected(self):
        bad = encode_batch({"v": BATCH_VERSION, "seq": 1, "spans": []})
        with pytest.raises(ProtocolError):
            decode_batch(bad)


class TestClockAligner:
    def test_min_delay_wins(self):
        aligner = ClockAligner()
        # offset 10 plus delays 0.3 / 0.1 / 0.5: min is the estimate.
        aligner.observe("w", 1.0, 11.3)
        aligner.observe("w", 2.0, 12.1)
        aligner.observe("w", 3.0, 13.5)
        assert aligner.offset("w") == pytest.approx(10.1)

    def test_negative_sent_at_skipped(self):
        aligner = ClockAligner()
        aligner.observe("w", -1.0, 5.0)
        assert aligner.offset("w") == 0.0

    def test_unknown_worker_offset_is_zero(self):
        assert ClockAligner().offset("nope") == 0.0

    def test_single_pair_degrades_to_zero_and_counts(self):
        """One pair cannot separate offset from delay: degrade, count."""
        metrics = MetricsRegistry()
        aligner = ClockAligner(metrics=metrics)
        aligner.observe("w", 1.0, 11.3)
        assert aligner.pairs("w") == 1
        assert aligner.offset("w") == 0.0
        assert metrics.counter("telemetry.unaligned").value == 1

    def test_zero_pairs_degrades_and_counts(self):
        metrics = MetricsRegistry()
        aligner = ClockAligner(metrics=metrics)
        assert aligner.offset("w") == 0.0
        assert metrics.counter("telemetry.unaligned").value == 1

    def test_negative_min_delta_degrades_and_counts(self):
        """A worker clock stepping backwards mid-run produces a negative
        minimum delta; the estimate is inconsistent, not just skewed."""
        metrics = MetricsRegistry()
        aligner = ClockAligner(metrics=metrics)
        aligner.observe("w", 1.0, 11.0)
        aligner.observe("w", 20.0, 12.0)  # delta -8: clock stepped back
        assert aligner.pairs("w") == 2
        assert aligner.offset("w") == 0.0
        assert metrics.counter("telemetry.unaligned").value == 1

    def test_two_good_pairs_align(self):
        metrics = MetricsRegistry()
        aligner = ClockAligner(metrics=metrics)
        aligner.observe("w", 1.0, 11.3)
        aligner.observe("w", 2.0, 12.1)
        assert aligner.offset("w") == pytest.approx(10.1)
        assert metrics.counter("telemetry.unaligned").value == 0

    def test_merger_counts_unaligned_in_run_metrics(self):
        """A fold over a worker with one heartbeat pair must leave the
        degradation visible in the merged registry."""
        master = Telemetry(record=True, clock=lambda: 0.0)
        merger = TelemetryMerger(master)
        worker = Telemetry(record=True, clock=lambda: 1.0)
        worker.event("worker.start", 1)
        shipper = TelemetryShipper(worker)
        merger.add_batch("w0", shipper.take_batch())
        merger.observe_clock("w0", 1.0, 51.2)  # only one pair
        offsets = merger.fold()
        assert offsets == {"w0": 0.0}
        assert master.metrics.counter("telemetry.unaligned").value == 1


class TestMerger:
    def ship_one(self, *, offset_pairs=(), task=1, t0=0.0):
        """One worker hub with one task span tree, shipped as batches."""
        wtel, state = make_hub(t0)
        shipper = TelemetryShipper(wtel)
        parent = wtel.span("task", track="worker:w0", task=task)
        state["now"] = t0 + 1.0
        child = wtel.span("exec", parent=parent, track="worker:w0")
        state["now"] = t0 + 2.0
        child.end()
        parent.end()
        wtel.metrics.counter("worker.tasks").inc()
        wtel.metrics.histogram("task.exec_seconds", buckets=(1.0, 10.0)).observe(1.0)
        return shipper.take_batch()

    def test_fold_remaps_ids_and_applies_offset(self):
        master = Telemetry(clock=lambda: 100.0, record=True, run="run")
        # Burn some ids so worker ids would collide without remapping.
        with master.span("run", track="control"):
            pass
        merger = TelemetryMerger(master)
        merger.observe_clock("w0", 1.0, 51.2)
        merger.observe_clock("w0", 2.0, 52.1)  # min delta 50.1
        merger.add_batch("w0", self.ship_one())
        offsets = merger.fold()
        assert offsets == {"w0": pytest.approx(50.1)}
        spans = {s.key: s for s in master.spans if s.track == "worker:w0"}
        assert spans["task"].start == pytest.approx(50.1)
        assert spans["exec"].start == pytest.approx(51.1)
        # Parent link survives remapping onto fresh master ids.
        assert spans["exec"].parent_id == spans["task"].span_id
        ids = [s.span_id for s in master.spans]
        assert len(ids) == len(set(ids))
        # The applied offset is recorded in the trace.
        offset_events = [e for e in master.events if e.key == "clock.offset"]
        assert len(offset_events) == 1
        assert offset_events[0].value == pytest.approx(50.1)

    def test_duplicate_batches_ignored(self):
        master = Telemetry(clock=lambda: 0.0, record=True)
        merger = TelemetryMerger(master)
        batch = self.ship_one()
        merger.add_batch("w0", batch)
        merger.add_batch("w0", batch)
        assert merger.batches_received == 1
        merger.fold()
        assert master.metrics.counter("worker.tasks").value == 1

    def test_counters_and_hists_merge_additively(self):
        master = Telemetry(clock=lambda: 0.0, record=True)
        master.metrics.counter("worker.tasks").inc(5)
        master.metrics.histogram("task.exec_seconds", buckets=(1.0, 10.0)).observe(0.5)
        merger = TelemetryMerger(master)
        merger.add_batch("w0", self.ship_one())
        merger.fold()
        assert master.metrics.counter("worker.tasks").value == 6
        hist = master.metrics.histogram("task.exec_seconds")
        assert hist.count == 2

    def test_bucket_mismatch_is_counted_never_rebucketed(self):
        master = Telemetry(clock=lambda: 0.0, record=True)
        master.metrics.histogram("task.exec_seconds", buckets=(7.0,)).observe(0.5)
        merger = TelemetryMerger(master)
        merger.add_batch("w0", self.ship_one())  # ships buckets (1.0, 10.0)
        merger.fold()
        assert merger.merge_conflicts == 1
        hist = master.metrics.histogram("task.exec_seconds")
        assert hist.buckets == (7.0,)
        assert hist.count == 1  # worker data dropped, not rebucketed

    def test_fold_order_is_deterministic_across_arrival_orders(self):
        def merged(arrival):
            master = Telemetry(clock=lambda: 0.0, record=True, run="run")
            merger = TelemetryMerger(master)
            batches = {
                "w0": self.ship_one(task=1, t0=0.0),
                "w1": self.ship_one(task=2, t0=5.0),
            }
            for wid in arrival:
                merger.add_batch(wid, batches[wid])
            merger.fold()
            return [
                (s.span_id, s.key, s.start, s.track) for s in master.spans
            ]

        assert merged(["w0", "w1"]) == merged(["w1", "w0"])
