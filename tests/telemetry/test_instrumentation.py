"""Telemetry wired through the engines: spans, causality, metrics.

These run a small simulated workload (and one threaded run) with a
recording hub attached and assert the emitted stream has the shape the
tentpole promises: a run-rooted span tree per task, monitor parity,
and populated substrate/control-plane metrics.
"""

from __future__ import annotations

import pytest

from repro.core.strategies import StrategyKind
from repro.telemetry import Telemetry
from repro.workloads import als_profile, run_profile


@pytest.fixture(scope="module")
def traced_run():
    telemetry = Telemetry(record=True)
    outcome = run_profile(
        als_profile(scale=0.1, seed=3),
        StrategyKind.REAL_TIME,
        telemetry=telemetry,
    )
    return telemetry, outcome


def _by_key(telemetry, key):
    return [s for s in telemetry.spans if s.key == key]


class TestSpanTree:
    def test_single_run_root(self, traced_run):
        telemetry, outcome = traced_run
        (run,) = _by_key(telemetry, "run")
        assert run.parent_id is None
        assert run.track == "control"
        assert dict(run.tags)["tasks"] == outcome.tasks_completed

    def test_task_spans_parented_to_run(self, traced_run):
        telemetry, outcome = traced_run
        (run,) = _by_key(telemetry, "run")
        tasks = _by_key(telemetry, "task")
        assert len(tasks) == outcome.tasks_completed
        assert all(t.parent_id == run.span_id for t in tasks)
        assert all(t.track.startswith("worker:") for t in tasks)

    def test_dispatch_fetch_exec_chain_under_each_task(self, traced_run):
        telemetry, _ = traced_run
        task_ids = {t.span_id for t in _by_key(telemetry, "task")}
        for key in ("dispatch", "exec"):
            spans = _by_key(telemetry, key)
            assert spans, key
            assert all(s.parent_id in task_ids for s in spans), key
        fetch_ids = {f.span_id for f in _by_key(telemetry, "fetch")}
        assert fetch_ids  # real-time pulls inputs lazily
        assert all(f.parent_id in task_ids for f in _by_key(telemetry, "fetch"))
        # Transfers hang off the fetch that requested them.
        transfers = _by_key(telemetry, "transfer")
        assert transfers
        assert all(t.parent_id in fetch_ids for t in transfers)
        assert all(t.track == "network" for t in transfers)

    def test_spans_ordered_and_within_run(self, traced_run):
        telemetry, _ = traced_run
        (run,) = _by_key(telemetry, "run")
        for span in telemetry.spans:
            assert span.end >= span.start
            assert span.end <= run.end

    def test_run_label_stamped(self, traced_run):
        telemetry, _ = traced_run
        assert {s.run for s in telemetry.spans} == {"als-images:real_time"}


class TestMonitorParity:
    def test_outcome_figures_still_derive_from_monitor(self, traced_run):
        # Monitor consumes the same stream, so the Fig 6 decomposition
        # must agree with the recorded spans.
        telemetry, outcome = traced_run
        execs = _by_key(telemetry, "exec")
        assert outcome.execution_time > 0
        assert sum(s.duration for s in execs) >= outcome.execution_time
        assert outcome.transfer_time > 0


class TestMetrics:
    def test_scheduler_and_substrate_counters(self, traced_run):
        telemetry, outcome = traced_run
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["scheduler.completed"] == outcome.tasks_completed
        assert counters["scheduler.assigned"] >= outcome.tasks_completed
        assert counters["network.flows_completed"] > 0
        assert counters["network.bytes_moved"] > 0
        assert counters["cluster.vms_booted"] > 0
        assert counters["transfer.count"] == len(_by_key(telemetry, "transfer"))
        assert any(k.startswith("storage.read_bytes") for k in counters)

    def test_exec_histogram_observed_per_task(self, traced_run):
        telemetry, outcome = traced_run
        hist = telemetry.metrics.snapshot()["histograms"]["task.exec_seconds"]
        assert hist["count"] == outcome.tasks_completed

    def test_metrics_snapshot_in_outcome_extra(self, traced_run):
        _, outcome = traced_run
        assert outcome.extra["metrics"]["counters"]["scheduler.completed"] == (
            outcome.tasks_completed
        )


class TestDisabledPath:
    def test_untraced_run_keeps_monitor_based_outcome(self):
        # No hub passed: the engine builds a private hub whose only
        # consumer is the monitor; nothing is retained.
        outcome = run_profile(als_profile(scale=0.1, seed=3), StrategyKind.REAL_TIME)
        assert outcome.execution_time > 0
        assert outcome.extra["metrics"]["counters"]["scheduler.completed"] == (
            outcome.tasks_completed
        )


class TestThreadedEngine:
    def test_threaded_runtime_emits_same_shape(self, tmp_path):
        from repro.runtime.local import ThreadedEngine

        for i in range(4):
            (tmp_path / f"in{i}.txt").write_text("payload\n")
        telemetry = Telemetry(record=True)
        seen = []
        outcome = ThreadedEngine(num_workers=2).run(
            [str(tmp_path / f"in{i}.txt") for i in range(4)],
            command=lambda *paths: seen.append(paths),
            telemetry=telemetry,
        )
        assert outcome.tasks_completed == 4
        (run,) = _by_key(telemetry, "run")
        tasks = _by_key(telemetry, "task")
        assert len(tasks) == 4
        assert all(t.parent_id == run.span_id for t in tasks)
        execs = _by_key(telemetry, "exec")
        assert len(execs) == 4
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["scheduler.completed"] == 4
        hist = telemetry.metrics.snapshot()["histograms"]["task.exec_seconds"]
        assert hist["count"] == 4
