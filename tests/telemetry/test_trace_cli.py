"""`repro trace summarize` CLI behaviour."""

import io
import json

from repro import cli as repro_cli
from repro.telemetry.cli import summarize_command


def _write_trace(path):
    trace = {
        "traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0, "args": {"name": "r"}},
            {
                "ph": "X",
                "name": "exec",
                "cat": "span",
                "pid": 1,
                "tid": 1,
                "ts": 0.0,
                "dur": 2.0e6,
                "args": {},
            },
        ],
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(trace))


def test_summarize_command_renders(tmp_path):
    trace = tmp_path / "t.json"
    _write_trace(trace)
    out = io.StringIO()
    assert summarize_command(str(trace), stream=out) == 0
    text = out.getvalue()
    assert "1 run(s)" in text
    assert "exec" in text


def test_summarize_missing_file_is_error(tmp_path):
    assert summarize_command(str(tmp_path / "nope.json"), stream=io.StringIO()) == 2


def test_summarize_non_trace_json_is_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"not": "a trace"}')
    assert summarize_command(str(bad), stream=io.StringIO()) == 2


def test_main_cli_routes_trace_subcommand(tmp_path, capsys):
    trace = tmp_path / "t.json"
    _write_trace(trace)
    assert repro_cli.main(["trace", "summarize", str(trace)]) == 0
    assert "run(s)" in capsys.readouterr().out


def test_run_subcommand_writes_trace(tmp_path, capsys):
    for i in range(2):
        (tmp_path / f"in{i}.txt").write_text("x\n")
    out = tmp_path / "run-trace.json"
    code = repro_cli.main(
        [
            "run",
            str(tmp_path),
            "--command",
            "true $inp1",
            "--workers",
            "1",
            "--pattern",
            ".txt",
            "--trace",
            str(out),
        ]
    )
    assert code == 0
    trace = json.loads(out.read_text())
    names = {ev["name"] for ev in trace["traceEvents"] if ev["ph"] == "X"}
    assert {"run", "task", "exec"} <= names
