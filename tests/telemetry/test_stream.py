"""Streaming trace reader: same events as ``json.load``, bounded memory.

``iter_trace_events`` re-parses a trace file through a small text
window; every event it yields must equal what a whole-file
``json.load`` would produce, at any chunk size — including pathological
1-byte windows that split every token.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry.export import (
    chrome_trace,
    iter_trace_events,
    summarize_trace,
    summarize_trace_events,
)
from repro.telemetry.spans import Telemetry


def _sample_trace() -> dict:
    hub = Telemetry(record=True)
    for i in range(5):
        with hub.span("exec", track=f"w{i % 2}", run="run-a", task=f"t{i}"):
            hub.event("retry", track=f"w{i % 2}", run="run-a", value=i)
    with hub.span("stage", track="net", run="run-b"):
        pass
    return chrome_trace(hub)


@pytest.mark.parametrize("chunk_size", [1, 7, 64, 1 << 16])
def test_streamed_events_equal_json_load(chunk_size):
    trace = _sample_trace()
    text = json.dumps(trace)
    streamed = list(iter_trace_events(io.StringIO(text), chunk_size=chunk_size))
    assert streamed == trace["traceEvents"]


def test_key_order_does_not_matter():
    # traceEvents last, after keys the streamer has to skip over.
    trace = _sample_trace()
    reordered = {"displayTimeUnit": "ms", "meta": {"deep": [1, {"x": "]}"}]}}
    reordered["traceEvents"] = trace["traceEvents"]
    streamed = list(iter_trace_events(io.StringIO(json.dumps(reordered)), chunk_size=9))
    assert streamed == trace["traceEvents"]


def test_empty_trace_events_list():
    assert list(iter_trace_events(io.StringIO('{"traceEvents": []}'))) == []


@pytest.mark.parametrize(
    "text",
    [
        "",
        "[1, 2]",
        '{"noTraceEvents": 1}',
        '{"traceEvents": {"not": "a list"}}',
        '{"traceEvents": [{"ph": "X"}',  # truncated mid-array
        "not json at all",
    ],
)
def test_malformed_input_raises_value_error(text):
    with pytest.raises(ValueError):
        list(iter_trace_events(io.StringIO(text)))


def test_summary_identical_streaming_vs_dict_path():
    trace = _sample_trace()
    via_dict = io.StringIO()
    summarize_trace(trace, via_dict)
    via_stream = io.StringIO()
    summarize_trace_events(
        iter_trace_events(io.StringIO(json.dumps(trace)), chunk_size=11), via_stream
    )
    assert via_stream.getvalue() == via_dict.getvalue()
    assert "exec" in via_dict.getvalue()
