"""Tests for ``repro report`` and ``repro trace diff``."""

import io
import json

from repro.telemetry.cli import diff_command, report_command
from repro.telemetry.export import (
    chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.telemetry.report import build_report, diff_traces
from repro.telemetry.spans import Telemetry


def make_master_trace():
    """A merged-looking hub: control track + two worker tracks + SLO."""
    state = {"now": 0.0}
    tel = Telemetry(clock=lambda: state["now"], record=True, run="demo")
    run = tel.span("run", track="control")
    for wid, start in (("w0", 1.0), ("w1", 2.0)):
        state["now"] = start
        task = tel.span("task", track=f"worker:{wid}", task=1, ok=True)
        state["now"] = start + 0.5
        fetch = tel.span("fetch", parent=task, track=f"worker:{wid}")
        state["now"] = start + 1.0
        fetch.end()
        exec_span = tel.span("exec", parent=task, track=f"worker:{wid}")
        state["now"] = start + 3.0
        exec_span.end()
        task.end()
        tel.event("clock.offset", 0.25, time=start, track=f"worker:{wid}", worker=wid)
    state["now"] = 6.0
    tel.span_complete("retransmit", 5.0, 5.1, track="control", worker="w1")
    tel.event("queue.depth", 4, time=1.5, track="control")
    tel.event("queue.depth", 1, time=3.0, track="control")
    tel.event(
        "slo.breach", 9.9, time=4.0, track="slo",
        probe="lat", signal="task.latency_seconds.p99", threshold=1.0,
    )
    run.end()
    return tel


class TestBuildReport:
    def test_per_worker_aggregates(self):
        tel = make_master_trace()
        report = build_report(chrome_trace(tel)["traceEvents"])
        assert report.runs == ["demo"]
        assert sorted(report.workers) == ["w0", "w1"]
        w0 = report.workers["w0"]
        assert w0.tasks == 1
        assert w0.failed == 0
        assert w0.exec_us == 2.0e6
        assert w0.fetch_us == 0.5e6
        assert w0.clock_offset == 0.25
        assert report.retransmits == 1
        assert report.queue_samples == 2
        assert report.queue_peak == 4
        assert len(report.breaches) == 1
        assert report.breaches[0]["probe"] == "lat"

    def test_failed_task_counted(self):
        tel = Telemetry(clock=lambda: 0.0, record=True, run="r")
        tel.span_complete("task", 0.0, 1.0, track="worker:w", ok=False)
        report = build_report(chrome_trace(tel)["traceEvents"])
        assert report.workers["w"].failed == 1


class TestReportCommand:
    def test_end_to_end_with_metrics(self, tmp_path):
        tel = make_master_trace()
        tel.metrics.histogram("task.latency_seconds", buckets=(1.0, 10.0)).observe(3.0)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        write_chrome_trace(tel, str(trace_path))
        write_metrics_json(tel.metrics, str(metrics_path))
        out = io.StringIO()
        assert report_command(str(trace_path), str(metrics_path), stream=out) == 0
        text = out.getvalue()
        assert "w0" in text and "w1" in text
        assert "task.latency_seconds" in text
        assert "p99" in text
        assert "1 breach(es)" in text

    def test_unreadable_file_is_error(self, tmp_path):
        assert report_command(str(tmp_path / "missing.json"), stream=io.StringIO()) == 2

    def test_not_a_trace_is_error(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"not": "a trace"}')
        assert report_command(str(path), stream=io.StringIO()) == 2


class TestTraceDiff:
    def test_identical_traces_compare_equal(self):
        events = chrome_trace(make_master_trace())["traceEvents"]
        out = io.StringIO()
        assert diff_traces(iter(events), iter(list(events)), out) == 0
        assert "identical" in out.getvalue()

    def test_span_count_difference_reported(self):
        tel_a = make_master_trace()
        tel_b = make_master_trace()
        tel_b.span_complete("task", 7.0, 8.0, track="worker:w0", task=9)
        out = io.StringIO()
        rc = diff_traces(
            chrome_trace(tel_a)["traceEvents"],
            chrome_trace(tel_b)["traceEvents"],
            out,
        )
        assert rc == 1
        assert "worker:w0/task: count 1 -> 2" in out.getvalue()

    def test_missing_track_reported(self):
        tel_a = make_master_trace()
        tel_b = Telemetry(clock=lambda: 0.0, record=True, run="demo")
        tel_b.span_complete("run", 0.0, 1.0, track="control")
        out = io.StringIO()
        rc = diff_traces(
            chrome_trace(tel_a)["traceEvents"],
            chrome_trace(tel_b)["traceEvents"],
            out,
        )
        assert rc == 1
        assert "only in first trace" in out.getvalue()

    def test_duration_drift_within_tolerance_ignored(self):
        tel_a = Telemetry(clock=lambda: 0.0, record=True, run="r")
        tel_a.span_complete("exec", 0.0, 1.0, track="worker:w")
        tel_b = Telemetry(clock=lambda: 0.0, record=True, run="r")
        tel_b.span_complete("exec", 0.0, 1.0001, track="worker:w")
        a = chrome_trace(tel_a)["traceEvents"]
        b = chrome_trace(tel_b)["traceEvents"]
        assert diff_traces(iter(a), iter(b), io.StringIO()) == 1
        assert (
            diff_traces(iter(a), iter(b), io.StringIO(), tolerance_us=200.0) == 0
        )

    def test_diff_command_reads_files(self, tmp_path):
        tel = make_master_trace()
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(tel, str(pa))
        write_chrome_trace(tel, str(pb))
        assert diff_command(str(pa), str(pb), stream=io.StringIO()) == 0

    def test_diff_command_bad_file(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[]")
        good = tmp_path / "g.json"
        write_chrome_trace(make_master_trace(), str(good))
        assert diff_command(str(path), str(good), stream=io.StringIO()) == 2
