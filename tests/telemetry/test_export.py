"""Exporter tests: trace-event schema, golden bytes, metrics JSON."""

import io
import json
import os

from repro.telemetry import (
    Telemetry,
    chrome_trace,
    dump_chrome_trace,
    dump_metrics_json,
    summarize_trace,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_trace.json")


def build_reference_hub() -> Telemetry:
    """A small hand-built trace: two runs, span trees, events, metrics.

    Everything is explicit (fixed clock values, fixed insertion order),
    so the exported JSON is a pure function of this code — that is what
    the golden file pins down.
    """
    clock = [0.0]
    tel = Telemetry(lambda: clock[0], record=True)
    tel.bind(run="als:real_time")
    run = tel.span("run", track="control", start=0.0, dataset="als")
    task = tel.span(
        "task", parent=run, track="worker:w0", start=1.0, task=0, worker="w0"
    )
    tel.span_complete(
        "transfer", 1.5, 3.0, parent=task, track="network", file="part-0.bin"
    )
    tel.span_complete("exec", 3.0, 7.25, parent=task, track="worker:w0", task=0)
    clock[0] = 7.25
    tel.end_span(task)
    tel.event("task.report", 0, time=7.25, track="worker:w0", worker="w0")
    clock[0] = 7.5
    tel.end_span(run, tasks=1)
    tel.metrics.counter("scheduler.completed").inc()
    tel.metrics.counter("storage.read_bytes", tier="local").inc(4096)
    tel.metrics.gauge("billing.total_usd").set(0.42)
    tel.metrics.histogram("task.exec_seconds", buckets=(1.0, 10.0)).observe(4.25)

    tel.bind(run="als:pre_partitioned_remote")
    with tel.span("staging", track="control", start=0.0, files=2) as staging:
        pass
    tel.event("vm.booted", "vm-1", time=0.5, track="control")
    return tel


class TestTraceSchema:
    def setup_method(self):
        self.trace = chrome_trace(build_reference_hub())

    def test_top_level_shape(self):
        assert set(self.trace) == {"traceEvents", "displayTimeUnit"}
        assert self.trace["displayTimeUnit"] == "ms"

    def test_every_event_has_required_fields(self):
        for ev in self.trace["traceEvents"]:
            assert ev["ph"] in ("X", "i", "M")
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert set(ev) == {"ph", "name", "cat", "pid", "tid", "ts", "dur", "args"}
                assert ev["dur"] >= 0
            elif ev["ph"] == "i":
                assert ev["s"] == "t"
            else:
                assert ev["name"] in ("process_name", "thread_name")

    def test_runs_become_processes(self):
        names = [
            ev["args"]["name"]
            for ev in self.trace["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        ]
        assert names == ["als:real_time", "als:pre_partitioned_remote"]

    def test_tracks_become_threads_with_metadata(self):
        threads = {
            (ev["pid"], ev["args"]["name"])
            for ev in self.trace["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert (1, "control") in threads
        assert (1, "worker:w0") in threads
        assert (1, "network") in threads
        assert (2, "control") in threads

    def test_timestamps_are_microseconds(self):
        execs = [
            ev
            for ev in self.trace["traceEvents"]
            if ev["ph"] == "X" and ev["name"] == "exec"
        ]
        (ev,) = execs
        assert ev["ts"] == 3.0e6
        assert ev["dur"] == 4.25e6

    def test_parent_ids_preserved_in_args(self):
        spans = {
            ev["args"]["span_id"]: ev
            for ev in self.trace["traceEvents"]
            if ev["ph"] == "X"
        }
        transfer = next(
            ev for ev in spans.values() if ev["name"] == "transfer"
        )
        task = next(ev for ev in spans.values() if ev["name"] == "task")
        assert transfer["args"]["parent_id"] == task["args"]["span_id"]


class TestGoldenBytes:
    def test_export_matches_golden_file(self):
        # Byte-exact: any drift in id allocation, rounding, key order,
        # or separator policy shows up as a diff of this file.
        produced = dump_chrome_trace(build_reference_hub()) + "\n"
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert produced == handle.read()

    def test_rebuild_is_byte_identical(self):
        assert dump_chrome_trace(build_reference_hub()) == dump_chrome_trace(
            build_reference_hub()
        )


class TestMetricsJson:
    def test_dump_is_stable_and_parseable(self):
        tel = build_reference_hub()
        first = dump_metrics_json(tel.metrics)
        assert first == dump_metrics_json(tel.metrics)
        parsed = json.loads(first)
        assert parsed["counters"]["scheduler.completed"] == 1
        assert parsed["counters"]["storage.read_bytes{tier=local}"] == 4096
        assert parsed["gauges"]["billing.total_usd"] == 0.42
        hist = parsed["histograms"]["task.exec_seconds"]
        assert hist["counts"] == [0, 1, 0]


class TestSummarize:
    def test_summary_counts_and_durations(self):
        out = io.StringIO()
        summarize_trace(chrome_trace(build_reference_hub()), out)
        text = out.getvalue()
        assert "2 run(s)" in text
        assert "run als:real_time: 7.500s traced" in text
        assert "exec" in text and "task.report" in text

    def test_empty_trace_summarizes(self):
        out = io.StringIO()
        summarize_trace({"traceEvents": []}, out)
        assert "0 events, 0 run(s)" in out.getvalue()
