"""RecordLog slab mechanics: the list it replaces, byte for byte.

``Telemetry.spans``/``.events`` switched from plain lists to slab logs;
everything that used to index, slice, iterate, or compare those lists
still must.  The slab size is shrunk here so a handful of records
crosses multiple flush boundaries.
"""

from __future__ import annotations

import pytest

from repro.telemetry.spans import EventRecord, RecordLog, SpanRecord, Telemetry


class TinySlabLog(RecordLog):
    SLAB = 4


def _fields(i: int) -> tuple:
    return (i, None, f"k{i}", float(i), float(i) + 0.5, (), "t", "run")


def _log(n: int) -> TinySlabLog:
    log = TinySlabLog(SpanRecord)
    for i in range(n):
        log._append_fields(_fields(i))
    return log


@pytest.mark.parametrize("n", [0, 1, 3, 4, 5, 8, 11])
def test_len_iter_match_list_semantics_across_flushes(n):
    log = _log(n)
    expected = [SpanRecord(*_fields(i)) for i in range(n)]
    assert len(log) == n
    assert list(log) == expected
    assert log == expected
    assert bool(log) == bool(expected)


def test_getitem_int_negative_and_slice():
    log = _log(11)
    expected = [SpanRecord(*_fields(i)) for i in range(11)]
    assert log[0] == expected[0]
    assert log[4] == expected[4]  # first row of second slab
    assert log[-1] == expected[-1]
    assert log[-11] == expected[0]
    assert log[2:9] == expected[2:9]
    assert log[::-1] == expected[::-1]
    assert log[::3] == expected[::3]
    with pytest.raises(IndexError):
        log[11]
    with pytest.raises(IndexError):
        log[-12]


def test_eq_against_log_tuple_and_mismatch():
    assert _log(6) == _log(6)
    assert _log(6) == tuple(SpanRecord(*_fields(i)) for i in range(6))
    assert _log(6) != _log(5)
    other = _log(6)
    other._slab[other._fill - 1] = _fields(99)
    assert _log(6) != other
    assert _log(0) == []


def test_records_materialize_lazily_and_fresh_each_read():
    log = _log(1)
    assert log[0] is not log[0]  # rows are tuples; dataclass built per read
    assert log[0] == next(iter(log))


def test_telemetry_hub_round_trip_through_slabs(monkeypatch):
    monkeypatch.setattr(RecordLog, "SLAB", 4)
    hub = Telemetry(record=True)
    for i in range(10):
        with hub.span(f"op{i}", track="w", run="r"):
            hub.event(f"ev{i}", track="w", run="r")
    assert len(hub.spans) == 10 and len(hub.events) == 10
    assert [s.key for s in hub.spans] == [f"op{i}" for i in range(10)]
    assert all(isinstance(e, EventRecord) for e in hub.events)
    # Spans closed in order, so ends are monotone within the log.
    assert [s.span_id for s in hub.spans] == sorted(s.span_id for s in hub.spans)
