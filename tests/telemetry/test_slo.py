"""Unit tests for declarative SLO probes."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.slo import SloEvaluator, SloProbe
from repro.telemetry.spans import Telemetry


def make_hub():
    return Telemetry(clock=lambda: 0.0, record=True)


class TestSloProbe:
    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            SloProbe("p", "sig", "!=", 1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            SloProbe("", "sig", "<", 1.0)

    def test_holds(self):
        assert SloProbe("p", "s", "<", 1.0).holds(0.5)
        assert not SloProbe("p", "s", "<", 1.0).holds(1.0)
        assert SloProbe("p", "s", ">=", 0.95).holds(0.95)

    def test_describe(self):
        assert SloProbe("p", "queue.depth", "<", 100).describe() == "queue.depth < 100"


class TestSloEvaluator:
    def test_duplicate_names_rejected(self):
        tel = make_hub()
        probes = [SloProbe("p", "a", "<", 1), SloProbe("p", "b", "<", 1)]
        with pytest.raises(ConfigurationError):
            SloEvaluator(probes, tel)

    def test_unresolvable_signal_skipped_not_breached(self):
        tel = make_hub()
        ev = SloEvaluator([SloProbe("p", "missing.gauge", "<", 1)], tel)
        assert ev.evaluate(1.0) == {}
        assert ev.breaches == []
        assert ev.evaluations == 0

    def test_breach_and_recovery_are_edge_triggered(self):
        tel = make_hub()
        depth = tel.metrics.gauge("queue.depth")
        ev = SloEvaluator([SloProbe("depth", "queue.depth", "<", 10)], tel)

        depth.set(50)
        assert ev.evaluate(1.0)["depth"] == (50, False)
        ev.evaluate(2.0)  # still breached: no second event
        depth.set(3)
        assert ev.evaluate(3.0)["depth"] == (3, True)
        ev.evaluate(4.0)  # still healthy: no second recovery

        keys = [e.key for e in tel.events]
        assert keys.count("slo.breach") == 1
        assert keys.count("slo.recovered") == 1
        assert tel.metrics.counter("slo.breaches").value == 1
        assert tel.metrics.counter("slo.recoveries").value == 1
        assert len(ev.breaches) == 1
        breach = ev.breaches[0]
        assert (breach.time, breach.value, breach.threshold) == (1.0, 50, 10)
        assert ev.active_breaches == frozenset()

    def test_histogram_quantile_signal(self):
        tel = make_hub()
        hist = tel.metrics.histogram("task.latency_seconds", buckets=(1.0, 10.0))
        for _ in range(100):
            hist.observe(5.0)
        ev = SloEvaluator(
            [SloProbe("lat", "task.latency_seconds.p99", "<", 2.0)], tel
        )
        results = ev.evaluate(1.0)
        value, ok = results["lat"]
        assert not ok and value > 2.0
        assert ev.active_breaches == frozenset({"lat"})

    def test_events_carry_probe_tags(self):
        tel = make_hub()
        tel.metrics.gauge("g").set(5)
        ev = SloEvaluator([SloProbe("p", "g", "<", 1)], tel, track="slo")
        ev.evaluate(2.0)
        event = [e for e in tel.events if e.key == "slo.breach"][0]
        tags = dict(event.tags)
        assert tags["probe"] == "p"
        assert tags["signal"] == "g"
        assert tags["threshold"] == 1
        assert event.track == "slo"
        assert event.time == 2.0
