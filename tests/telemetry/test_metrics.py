"""Unit tests for the metrics registry."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    render_name,
)


class TestRenderName:
    def test_bare_name_unchanged(self):
        assert render_name("a.b", {}) == "a.b"

    def test_labels_sorted(self):
        assert render_name("reads", {"tier": "local", "a": 1}) == "reads{a=1,tier=local}"


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x", tier="a") is not registry.counter("x", tier="b")


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.add(-3.0)
        assert gauge.value == pytest.approx(7.0)


class TestHistogram:
    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_observation_lands_in_le_bucket(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5)  # <= 1.0
        hist.observe(1.0)  # <= 1.0 (boundary included)
        hist.observe(5.0)  # <= 10.0
        hist.observe(99.0)  # overflow
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(105.5)

    def test_default_buckets_fixed(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.buckets == DEFAULT_BUCKETS

    def test_rebucketing_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))
        # Same buckets (or unspecified) is fine.
        assert registry.histogram("h", buckets=(1.0, 2.0)).buckets == (1.0, 2.0)
        assert registry.histogram("h").buckets == (1.0, 2.0)


class TestSnapshot:
    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["a"] == 2
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"] == {
            "buckets": [1.0],
            "counts": [1, 0],
            "count": 1,
            "sum": 0.5,
            # One observation in (0, 1.0]: every quantile interpolates
            # inside that bucket.
            "p50": 0.5,
            "p95": 0.95,
            "p99": 0.99,
        }

    def test_len_counts_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3


class TestNullRegistry:
    def test_discards_everything(self):
        NULL_METRICS.counter("x", tier="a").inc(5)
        NULL_METRICS.gauge("y").set(3)
        NULL_METRICS.histogram("z").observe(1.0)
        assert len(NULL_METRICS) == 0
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_view_is_still_null(self):
        view = NULL_METRICS.view("job.1.")
        view.counter("x").inc()
        assert len(NULL_METRICS) == 0


class TestPrefixedView:
    def test_instruments_land_in_parent_under_prefix(self):
        parent = MetricsRegistry()
        view = parent.view("job.7.")
        view.counter("scheduler.assigned").inc(3)
        view.gauge("queue.depth").set(4)
        view.histogram("task.latency_seconds").observe(0.5)
        snap = parent.snapshot()
        assert snap["counters"] == {"job.7.scheduler.assigned": 3}
        assert snap["gauges"] == {"job.7.queue.depth": 4}
        assert list(snap["histograms"]) == ["job.7.task.latency_seconds"]

    def test_same_name_in_two_views_never_collides(self):
        parent = MetricsRegistry()
        a = parent.view("job.a.")
        b = parent.view("job.b.")
        a.gauge("queue.depth").set(1)
        b.gauge("queue.depth").set(9)
        assert parent.gauge("job.a.queue.depth").value == 1
        assert parent.gauge("job.b.queue.depth").value == 9

    def test_view_resolves_signals_in_its_namespace(self):
        parent = MetricsRegistry()
        view = parent.view("job.7.")
        view.gauge("queue.depth").set(2)
        assert view.resolve_signal("queue.depth") == 2
        assert parent.resolve_signal("job.7.queue.depth") == 2
        assert view.resolve_signal("missing") is None

    def test_view_snapshot_strips_prefix(self):
        parent = MetricsRegistry()
        parent.counter("other").inc()
        view = parent.view("job.7.")
        view.counter("scheduler.completed").inc(2)
        snap = view.snapshot()
        assert snap["counters"] == {"scheduler.completed": 2}
        assert len(view) == 1

    def test_views_nest(self):
        parent = MetricsRegistry()
        inner = parent.view("job.7.").view("stage.")
        inner.counter("x").inc()
        assert parent.counter("job.7.stage.x").value == 1
