"""Setup shim + optional C kernel accelerator build.

The environment has no `wheel` package and no network, so PEP 517
editable installs (which need bdist_wheel) fail. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the
classic `setup.py develop` path. All metadata lives in pyproject.toml.

It also compiles the optional C kernel accelerator in place::

    python setup.py build_ext --inplace

(or ``make accel``). The build is best-effort: when it fails — no
compiler, no headers — the pure-Python kernel in
``src/repro/sim/kernel.py`` serves every caller with identical
semantics, just slower. ``FRIEDA_PURE_KERNEL=1`` ignores a built
extension at import time.
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.sim._ckern",
            sources=["src/repro/sim/_ckern.c"],
            extra_compile_args=["-O2"],
            optional=True,
        )
    ],
)
