"""Wire protocol for the TCP runtime.

Frames are length-prefixed: a 4-byte big-endian length followed by the
JSON-encoded message (see :mod:`repro.core.messages`). A
*payload-bearing* message (``FILE_DATA`` file contents, ``TELEMETRY``
batch bodies) whose ``payload_len`` is nonzero is immediately followed
by exactly ``payload_len`` raw bytes — binary payloads never pass
through JSON.

Integrity: a payload frame built with :func:`file_data_message` or
:func:`telemetry_batch_message` carries a CRC32 of its payload.
:func:`read_frame` verifies it after fully consuming the frame and
raises :class:`~repro.errors.ChecksumError` on mismatch — the stream
stays correctly framed, so the receiver can keep reading and either ask
the sender for a retransmit (``RESEND_FILE``) or drop the batch
(telemetry is lossy-tolerant) instead of tearing the connection down.
"""

from __future__ import annotations

import asyncio
import struct
import zlib
from typing import Optional

from repro.core.messages import (
    FileData,
    Message,
    TelemetryBatch,
    decode_message,
    encode_message,
)
from repro.errors import ChecksumError, ProtocolError

#: Frames above this size are rejected (corrupt length prefix guard).
MAX_FRAME = 64 * 1024 * 1024

#: Message kinds that may be followed by a binary payload of
#: ``payload_len`` bytes checksummed by ``checksum``.
PAYLOAD_KINDS = (FileData, TelemetryBatch)

_LEN = struct.Struct(">I")


def payload_checksum(payload: bytes) -> str:
    """CRC32 of a binary payload as 8 lowercase hex digits."""
    return format(zlib.crc32(payload) & 0xFFFFFFFF, "08x")


def file_data_message(task_id: int, file_name: str, payload: bytes) -> FileData:
    """Build a checksummed ``FILE_DATA`` header for ``payload``."""
    return FileData(
        task_id=task_id,
        file_name=file_name,
        payload_len=len(payload),
        checksum=payload_checksum(payload),
    )


def telemetry_batch_message(worker_id: str, seq: int, payload: bytes) -> TelemetryBatch:
    """Build a checksummed ``TELEMETRY`` header for an encoded batch."""
    return TelemetryBatch(
        worker_id=worker_id,
        seq=seq,
        payload_len=len(payload),
        checksum=payload_checksum(payload),
    )


def _verify_payload(message: Message, payload: bytes) -> None:
    if isinstance(message, PAYLOAD_KINDS) and message.checksum:
        actual = payload_checksum(payload)
        if actual != message.checksum:
            raise ChecksumError(message, expected=message.checksum, actual=actual)


def write_frame(writer: asyncio.StreamWriter, message: Message, payload: bytes = b"") -> None:
    """Queue one message (and its optional binary payload) on a writer."""
    if payload and not isinstance(message, PAYLOAD_KINDS):
        raise ProtocolError(
            "binary payloads are only valid after FILE_DATA or TELEMETRY"
        )
    if isinstance(message, PAYLOAD_KINDS) and message.payload_len != len(payload):
        raise ProtocolError(
            f"{message.msg_type} payload_len={message.payload_len}"
            f" but payload is {len(payload)} bytes"
        )
    body = encode_message(message)
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(body)} bytes")
    writer.write(_LEN.pack(len(body)))
    writer.write(body)
    if payload:
        writer.write(payload)


async def read_frame(reader: asyncio.StreamReader) -> tuple[Message, bytes]:
    """Read one message (+ payload if payload-bearing); raises on EOF/corruption.

    A checksummed payload that fails verification raises
    :class:`ChecksumError` *after* the whole frame has been consumed,
    so the caller may continue reading the stream.
    """
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds maximum")
    body = await reader.readexactly(length)
    message = decode_message(body)
    payload = b""
    if isinstance(message, PAYLOAD_KINDS) and message.payload_len > 0:
        if message.payload_len > MAX_FRAME:
            raise ProtocolError(f"payload length {message.payload_len} exceeds maximum")
        payload = await reader.readexactly(message.payload_len)
    _verify_payload(message, payload)
    return message, payload


class Channel:
    """Frame-level view of one connection's ``(reader, writer)`` pair.

    The runtime's fault-injection twin
    (:class:`repro.runtime.faults.FaultyChannel`) subclasses this and
    perturbs :meth:`send`, so every frame the master or a worker emits
    flows through one seam.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    async def send(self, message: Message, payload: bytes = b"") -> None:
        write_frame(self.writer, message, payload)
        await self.writer.drain()

    async def recv(self) -> tuple[Message, bytes]:
        return await read_frame(self.reader)

    def close(self) -> None:
        self.writer.close()

    @property
    def is_closing(self) -> bool:
        return self.writer.is_closing()

    async def wait_closed(self) -> None:
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class FrameReader:
    """Synchronous incremental frame decoder (for tests and non-asyncio use).

    Feed bytes with :meth:`feed`; completed ``(message, payload)``
    pairs come back from :meth:`pop`. A checksum mismatch raises after
    the offending frame has been consumed from the buffer; feeding
    ``b""`` resumes decoding of any bytes already buffered.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._frames: list[tuple[Message, bytes]] = []

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack(self._buffer[: _LEN.size])
            if length > MAX_FRAME:
                raise ProtocolError(f"frame length {length} exceeds maximum")
            if len(self._buffer) < _LEN.size + length:
                return
            body = bytes(self._buffer[_LEN.size : _LEN.size + length])
            message = decode_message(body)
            need = 0
            if isinstance(message, PAYLOAD_KINDS):
                need = message.payload_len
            total = _LEN.size + length + need
            if len(self._buffer) < total:
                return
            payload = bytes(self._buffer[_LEN.size + length : total])
            del self._buffer[:total]
            _verify_payload(message, payload)
            self._frames.append((message, payload))

    def pop(self) -> Optional[tuple[Message, bytes]]:
        if self._frames:
            return self._frames.pop(0)
        return None

    def __len__(self) -> int:
        return len(self._frames)
