"""Wire protocol for the TCP runtime.

Frames are length-prefixed: a 4-byte big-endian length followed by the
JSON-encoded message (see :mod:`repro.core.messages`). A ``FILE_DATA``
message whose ``payload_len`` is nonzero is immediately followed by
exactly ``payload_len`` raw bytes (the file contents) — binary payloads
never pass through JSON.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional

from repro.core.messages import FileData, Message, decode_message, encode_message
from repro.errors import ProtocolError

#: Frames above this size are rejected (corrupt length prefix guard).
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


def write_frame(writer: asyncio.StreamWriter, message: Message, payload: bytes = b"") -> None:
    """Queue one message (and its optional binary payload) on a writer."""
    if payload and not isinstance(message, FileData):
        raise ProtocolError("binary payloads are only valid after FILE_DATA")
    if isinstance(message, FileData) and message.payload_len != len(payload):
        raise ProtocolError(
            f"FILE_DATA payload_len={message.payload_len} but payload is {len(payload)} bytes"
        )
    body = encode_message(message)
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(body)} bytes")
    writer.write(_LEN.pack(len(body)))
    writer.write(body)
    if payload:
        writer.write(payload)


async def read_frame(reader: asyncio.StreamReader) -> tuple[Message, bytes]:
    """Read one message (+ payload if FILE_DATA); raises on EOF/corruption."""
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds maximum")
    body = await reader.readexactly(length)
    message = decode_message(body)
    payload = b""
    if isinstance(message, FileData) and message.payload_len > 0:
        if message.payload_len > MAX_FRAME:
            raise ProtocolError(f"payload length {message.payload_len} exceeds maximum")
        payload = await reader.readexactly(message.payload_len)
    return message, payload


class FrameReader:
    """Synchronous incremental frame decoder (for tests and non-asyncio use).

    Feed bytes with :meth:`feed`; completed ``(message, payload)``
    pairs come back from :meth:`pop`.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._frames: list[tuple[Message, bytes]] = []

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack(self._buffer[: _LEN.size])
            if length > MAX_FRAME:
                raise ProtocolError(f"frame length {length} exceeds maximum")
            if len(self._buffer) < _LEN.size + length:
                return
            body = bytes(self._buffer[_LEN.size : _LEN.size + length])
            message = decode_message(body)
            need = 0
            if isinstance(message, FileData):
                need = message.payload_len
            total = _LEN.size + length + need
            if len(self._buffer) < total:
                return
            payload = bytes(self._buffer[_LEN.size + length : total])
            del self._buffer[:total]
            self._frames.append((message, payload))

    def pop(self) -> Optional[tuple[Message, bytes]]:
        if self._frames:
            return self._frames.pop(0)
        return None

    def __len__(self) -> int:
        return len(self._frames)
