"""Real (non-simulated) FRIEDA execution backends.

The paper's prototype ran on Python-Twisted; the modern stdlib
equivalent here is :mod:`asyncio` (:mod:`repro.runtime.tcp`) speaking
the same message protocol over localhost TCP, plus a lighter threaded
in-process engine (:mod:`repro.runtime.local`) for examples and tests.

Both engines reuse the core logic — :class:`~repro.core.scheduler.
MasterScheduler`, :class:`~repro.core.controller.ControllerLogic`,
command templating — demonstrating the control/execution separation.
"""

from repro.runtime.local import ThreadedEngine
from repro.runtime.protocol import read_frame, write_frame, FrameReader
from repro.runtime.tcp import TcpEngine

__all__ = ["ThreadedEngine", "TcpEngine", "read_frame", "write_frame", "FrameReader"]
