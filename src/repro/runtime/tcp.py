"""asyncio TCP master/worker runtime — the Twisted-prototype equivalent.

One process hosts the whole virtual deployment on localhost: the master
is an asyncio TCP server, each worker an asyncio client task. The wire
protocol is :mod:`repro.runtime.protocol` (length-prefixed JSON +
binary file payloads), exercising the exact message sequence of Fig 4:

    worker  → REGISTER_WORKER
    master  → CONNECTION_ACK
    (staged strategies: master pushes the worker's chunk as FILE_DATA)
    worker  → REQUEST_DATA
    master  → FILE_METADATA [+ FILE_DATA per missing file]  |  NO_MORE_DATA
    worker  → EXEC_STATUS
    ... repeat ...

A worker disconnecting mid-run is treated as a failed worker: the
master reports it to the controller, isolates it, and (only with the
retry extension) requeues its tasks.
"""

from __future__ import annotations

# frieda: allow-file[wall-clock] -- real execution plane: measuring real
# elapsed time (makespan, transfer, busy seconds) is this engine's job.

import asyncio
import os
import tempfile
import time
from typing import Callable, Optional, Sequence

from repro.core.commands import CommandTemplate
from repro.core.controller import ControllerLogic
from repro.core.fault import RetryPolicy
from repro.core.framework import RunOutcome, TaskRecord
from repro.core.messages import (
    ConnectionAck,
    ExecStatus,
    FileData,
    FileMetadata,
    Message,
    NoMoreData,
    RegisterWorker,
    RequestData,
    WorkerFailed,
)
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind
from repro.core.worker import WorkerLogic
from repro.data.files import Dataset
from repro.data.partition import PartitionScheme
from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.local import _as_dataset
from repro.runtime.protocol import read_frame, write_frame


class TcpEngine:
    """Master/worker FRIEDA over localhost TCP."""

    def __init__(
        self,
        num_workers: int = 2,
        *,
        scratch_root: Optional[str] = None,
        run_timeout: float = 120.0,
        host: str = "127.0.0.1",
    ):
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.scratch_root = scratch_root
        self.run_timeout = run_timeout
        self.host = host

    def run(
        self,
        inputs: Dataset | Sequence[str],
        *,
        command: CommandTemplate | Callable[..., object],
        strategy: StrategyKind | str = StrategyKind.REAL_TIME,
        grouping: PartitionScheme | str = PartitionScheme.SINGLE,
        grouping_options: dict | None = None,
        retry_policy: RetryPolicy | None = None,
        isolate_after: int = 1,
        crash_worker_on_task: dict[str, int] | None = None,
    ) -> RunOutcome:
        """Run the workload over TCP; returns a :class:`RunOutcome`.

        ``crash_worker_on_task`` (testing hook) maps a worker id to a
        task id; that worker drops its connection when it receives the
        task — simulating a VM failure.
        """
        if callable(command) and not isinstance(command, CommandTemplate):
            command = CommandTemplate(function=command)
        dataset = _as_dataset(inputs)
        return asyncio.run(
            asyncio.wait_for(
                self._run_async(
                    dataset,
                    command,
                    strategy,
                    grouping,
                    grouping_options or {},
                    retry_policy,
                    isolate_after,
                    crash_worker_on_task or {},
                ),
                timeout=self.run_timeout,
            )
        )

    # ------------------------------------------------------------------
    async def _run_async(
        self,
        dataset: Dataset,
        command: CommandTemplate,
        strategy: StrategyKind | str,
        grouping: PartitionScheme | str,
        grouping_options: dict,
        retry_policy: RetryPolicy | None,
        isolate_after: int,
        crash_map: dict[str, int],
    ) -> RunOutcome:
        controller = ControllerLogic(
            strategy=strategy,
            grouping=grouping,
            grouping_options=grouping_options,
            command=command,
            multicore=False,
            retry_policy=retry_policy,
            isolate_after=isolate_after,
        )
        groups = controller.generate_partitions(dataset)
        scheduler = MasterScheduler(
            groups,
            controller.strategy,
            retry_policy=retry_policy,
            fault_tracker=controller.fault_tracker,
        )
        worker_ids = [f"tcp:{i}" for i in range(self.num_workers)]
        master = _Master(controller, scheduler, dataset, worker_ids)
        server = await asyncio.start_server(master.handle_client, self.host, 0)
        port = server.sockets[0].getsockname()[1]
        started = time.monotonic()
        records: list[TaskRecord] = []
        with tempfile.TemporaryDirectory(dir=self.scratch_root, prefix="frieda-tcp-") as root:
            workers = [
                asyncio.create_task(
                    _worker_client(
                        wid,
                        self.host,
                        port,
                        command,
                        os.path.join(root, wid.replace(":", "_")),
                        records,
                        crash_on_task=crash_map.get(wid),
                    )
                )
                for wid in worker_ids
            ]
            await asyncio.gather(*workers, return_exceptions=False)
            server.close()
            await server.wait_closed()
        makespan = time.monotonic() - started
        summary = scheduler.summary()
        records.sort(key=lambda r: (r.start, r.task_id))
        return RunOutcome(
            strategy=controller.strategy.kind,
            grouping=controller.grouping,
            makespan=makespan,
            transfer_time=master.transfer_seconds,
            execution_time=sum(r.duration for r in records if r.ok),
            tasks_total=summary["total"],
            tasks_completed=summary["completed"],
            tasks_failed=summary["failed"],
            tasks_lost=summary["lost"],
            bytes_transferred=float(master.bytes_sent),
            task_records=records,
            worker_busy={},
            controller_events=list(controller.events),
        )


class _Master:
    """Server-side state: one instance per run."""

    def __init__(
        self,
        controller: ControllerLogic,
        scheduler: MasterScheduler,
        dataset: Dataset,
        expected_workers: list[str],
    ):
        self.controller = controller
        self.scheduler = scheduler
        self.dataset = dataset
        self.expected = set(expected_workers)
        self.registered: set[str] = set()
        self.sent_files: dict[str, set[str]] = {}
        self.bytes_sent = 0
        self.transfer_seconds = 0.0
        self.all_registered = asyncio.Event()
        self._partitioned = False

    def _file_bytes(self, name: str) -> bytes:
        file = self.dataset.get(name)
        if file.path is None:
            raise ConfigurationError(f"file {name!r} has no on-disk path")
        with open(file.path, "rb") as fh:
            return fh.read()

    async def _send_file(self, writer: asyncio.StreamWriter, wid: str, name: str, task_id: int) -> None:
        payload = self._file_bytes(name)
        t0 = time.monotonic()
        write_frame(
            writer,
            FileData(task_id=task_id, file_name=name, payload_len=len(payload)),
            payload,
        )
        await writer.drain()
        self.transfer_seconds += time.monotonic() - t0
        self.bytes_sent += len(payload)
        self.sent_files.setdefault(wid, set()).add(name)

    async def handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        wid = ""
        try:
            message, _ = await read_frame(reader)
            if not isinstance(message, RegisterWorker):
                raise ProtocolError(f"expected REGISTER_WORKER, got {message.msg_type}")
            wid = message.worker_id
            self.scheduler.register_worker(wid)
            self.registered.add(wid)
            write_frame(writer, ConnectionAck(worker_id=wid, accepted=True))
            await writer.drain()
            if self.registered >= self.expected:
                self.all_registered.set()
            # Static strategies: partition once everyone is connected,
            # then push this worker its chunk (the staging phase).
            await self.all_registered.wait()
            if not self._partitioned:
                self._partitioned = True
                self.scheduler.partition_among(sorted(self.registered))
            if self.controller.strategy.staged_before_execution:
                names_needed: list[str] = []
                if self.controller.strategy.replicate_all:
                    names_needed = [f.name for f in self.dataset]
                else:
                    for group in self.scheduler.planned_chunk(wid):
                        names_needed.extend(group.file_names)
                for name in dict.fromkeys(names_needed):
                    if name not in self.sent_files.get(wid, set()):
                        await self._send_file(writer, wid, name, task_id=-1)
            await self._serve(wid, reader, writer)
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            if wid:
                requeued = self.scheduler.worker_lost(wid, "connection lost")
                self.controller.on_worker_failed(
                    WorkerFailed(
                        worker_id=wid,
                        node_id=wid,
                        error="connection lost",
                        tasks_in_flight=tuple(a.task_id for a in requeued),
                    )
                )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve(self, wid: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        while True:
            message, _ = await read_frame(reader)
            if isinstance(message, RequestData):
                assignment = self.scheduler.next_for(wid)
                if assignment is None:
                    write_frame(writer, NoMoreData(worker_id=wid))
                    await writer.drain()
                    return
                group = assignment.group
                already = self.sent_files.get(wid, set())
                missing = [n for n in group.file_names if n not in already]
                write_frame(
                    writer,
                    FileMetadata(
                        task_id=group.index,
                        file_names=group.file_names,
                        sizes=tuple(f.size for f in group.files),
                        transfer_required=bool(missing),
                    ),
                )
                await writer.drain()
                for name in missing:
                    await self._send_file(writer, wid, name, task_id=group.index)
            elif isinstance(message, ExecStatus):
                if message.ok:
                    self.scheduler.report_success(wid, message.task_id)
                else:
                    self.controller.on_worker_error(wid, message.error)
                    self.scheduler.report_error(wid, message.task_id, message.error)
            else:
                raise ProtocolError(f"unexpected message from worker: {message.msg_type}")


async def _worker_client(
    wid: str,
    host: str,
    port: int,
    command: CommandTemplate,
    scratch_dir: str,
    records: list[TaskRecord],
    *,
    crash_on_task: Optional[int] = None,
) -> None:
    """One worker: register, then the request/execute/report loop."""
    os.makedirs(scratch_dir, exist_ok=True)
    logic = WorkerLogic(wid, wid, command, scratch_dir=scratch_dir)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        write_frame(writer, RegisterWorker(worker_id=wid, node_id=wid, cores=1))
        await writer.drain()
        ack, _ = await read_frame(reader)
        if not isinstance(ack, ConnectionAck) or not ack.accepted:
            raise ProtocolError(f"registration rejected for {wid}")
        loop = asyncio.get_running_loop()
        requested = False
        while True:
            if not requested:
                write_frame(writer, RequestData(worker_id=wid))
                await writer.drain()
                requested = True
            message, payload = await read_frame(reader)
            if isinstance(message, NoMoreData):
                return
            if isinstance(message, FileData):
                # Unsolicited staging push — store it; the outstanding
                # REQUEST_DATA is still pending, so don't re-request.
                if crash_on_task is not None and message.task_id == crash_on_task:
                    writer.close()
                    return
                with open(os.path.join(scratch_dir, message.file_name), "wb") as fh:
                    fh.write(payload)
                logic.receive_file(message.file_name)
                continue
            if not isinstance(message, FileMetadata):
                raise ProtocolError(f"unexpected message at worker: {message.msg_type}")
            if crash_on_task is not None and message.task_id == crash_on_task:
                writer.close()
                return
            # Wait until every input for this task has arrived.
            while logic.missing_files(message.file_names):
                data_msg, payload = await read_frame(reader)
                if not isinstance(data_msg, FileData):
                    raise ProtocolError("expected FILE_DATA for missing inputs")
                with open(os.path.join(scratch_dir, data_msg.file_name), "wb") as fh:
                    fh.write(payload)
                logic.receive_file(data_msg.file_name)
            start = time.monotonic()
            logic.begin_task(message.task_id, message.file_names, start)
            paths = [logic.resolve_path(n) for n in message.file_names]
            ok, error = True, ""
            try:
                # Run the program off the event loop.
                await loop.run_in_executor(None, lambda: command.call(paths))
            except Exception as exc:
                ok, error = False, f"{type(exc).__name__}: {exc}"
            end = time.monotonic()
            logic.finish_task(end, ok=ok, error=error)
            records.append(
                TaskRecord(
                    task_id=message.task_id,
                    worker_id=wid,
                    node_id=wid,
                    start=start,
                    end=end,
                    ok=ok,
                    error=error,
                )
            )
            write_frame(
                writer,
                ExecStatus(
                    worker_id=wid,
                    task_id=message.task_id,
                    ok=ok,
                    duration=end - start,
                    error=error,
                ),
            )
            await writer.drain()
            requested = False
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
