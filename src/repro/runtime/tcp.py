"""asyncio TCP master/worker runtime — the Twisted-prototype equivalent.

One process hosts the whole virtual deployment on localhost: the master
is an asyncio TCP server, each worker an asyncio client task. The wire
protocol is :mod:`repro.runtime.protocol` (length-prefixed JSON +
binary file payloads), exercising the exact message sequence of Fig 4:

    worker  → REGISTER_WORKER
    master  → CONNECTION_ACK
    (staged strategies: master pushes the worker's chunk as FILE_DATA)
    worker  → REQUEST_DATA
    master  → FILE_METADATA [+ FILE_DATA per missing file]  |  NO_MORE_DATA
    worker  → EXEC_STATUS
    ... repeat ...

Fault tolerance (runtime twin of the simulated engine's fault model):

- **Registration window** instead of a wait-for-all barrier: the run
  proceeds with whichever workers register inside the window; late
  workers — including a worker rejoining after a crash under a fresh
  id — are accepted mid-run and handed requeued work.
- **Wire liveness**: workers emit ``HEARTBEAT`` frames; the master
  drives a :class:`~repro.core.monitoring.HeartbeatMonitor` so a *hung*
  worker (connection open, no beats) is declared dead and recovered
  through the same ``worker_lost`` → requeue → isolate →
  :class:`~repro.core.elasticity.ElasticityManager` path a broken
  connection takes.
- **Payload integrity**: ``FILE_DATA`` frames are checksummed; a
  corrupt payload triggers a bounded ``RESEND_FILE`` re-request.
- **Fault injection**: a seeded
  :class:`~repro.runtime.faults.FaultScript` perturbs frames
  (drop/delay/corrupt/truncate) for chaos testing.

A worker disconnecting mid-run is treated as a failed worker: the
master reports it to the controller, isolates it, and (only with the
retry extension) requeues its tasks. A master loss no longer crashes
the run: workers unwind cleanly and the stranded tasks are accounted
as lost.
"""

from __future__ import annotations

# frieda: allow-file[wall-clock] -- real execution plane: measuring real
# elapsed time (makespan, transfer, busy seconds) is this engine's job.

import asyncio
import os
import tempfile
import time
from typing import Callable, Optional, Sequence

from repro.core.commands import CommandTemplate
from repro.core.controller import ControllerLogic
from repro.core.elasticity import ElasticityManager
from repro.core.fault import RetryPolicy
from repro.core.framework import RunOutcome, TaskRecord
from repro.core.messages import (
    ConnectionAck,
    ExecStatus,
    FileData,
    FileMetadata,
    Heartbeat,
    Message,
    NoMoreData,
    RegisterWorker,
    RequestData,
    ResendFile,
    WorkerFailed,
)
from repro.core.monitoring import HeartbeatConfig, HeartbeatMonitor, Liveness
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind
from repro.core.worker import WorkerLogic
from repro.data.files import Dataset
from repro.data.partition import PartitionScheme
from repro.errors import ChecksumError, ConfigurationError, ProtocolError
from repro.runtime.faults import ANY_TASK, FaultScript, FaultyChannel
from repro.runtime.local import _as_dataset
from repro.runtime.protocol import Channel, file_data_message
from repro.telemetry.spans import NULL_TELEMETRY, Telemetry

_CONNECTION_ERRORS = (
    asyncio.IncompleteReadError,
    ConnectionResetError,
    BrokenPipeError,
)



class TcpEngine:
    """Master/worker FRIEDA over localhost TCP."""

    def __init__(
        self,
        num_workers: int = 2,
        *,
        scratch_root: Optional[str] = None,
        run_timeout: float = 120.0,
        host: str = "127.0.0.1",
        registration_window: float = 5.0,
        heartbeat_interval: float = 0.0,
        heartbeat_config: HeartbeatConfig | None = None,
        reply_timeout: float = 0.0,
        max_payload_retries: int = 3,
    ):
        """``registration_window`` bounds how long the master waits for
        the expected workers before partitioning over whoever arrived
        (it always proceeds early once all expected workers register).
        ``heartbeat_interval`` > 0 turns on wire liveness: workers beat
        at that period and the master sweeps at the same period using
        ``heartbeat_config`` thresholds. ``reply_timeout`` > 0 lets a
        worker re-request after silence instead of blocking forever
        (required for ``drop`` fault rules); ``max_payload_retries``
        bounds per-file retransmits and re-requests.
        """
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if registration_window <= 0:
            raise ConfigurationError("registration_window must be > 0")
        self.num_workers = num_workers
        self.scratch_root = scratch_root
        self.run_timeout = run_timeout
        self.host = host
        self.registration_window = registration_window
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_config = heartbeat_config
        self.reply_timeout = reply_timeout
        self.max_payload_retries = max_payload_retries

    def run(
        self,
        inputs: Dataset | Sequence[str],
        *,
        command: CommandTemplate | Callable[..., object],
        strategy: StrategyKind | str = StrategyKind.REAL_TIME,
        grouping: PartitionScheme | str = PartitionScheme.SINGLE,
        grouping_options: dict | None = None,
        retry_policy: RetryPolicy | None = None,
        isolate_after: int = 1,
        crash_worker_on_task: dict[str, int] | None = None,
        hang_worker_on_task: dict[str, int] | None = None,
        crash_before_register: Sequence[str] = (),
        respawn_after_crash: dict[str, float] | None = None,
        crash_master_after_tasks: int | None = None,
        fault_script: FaultScript | None = None,
        telemetry: Telemetry | None = None,
    ) -> RunOutcome:
        """Run the workload over TCP; returns a :class:`RunOutcome`.

        Testing hooks (all deterministic, none active by default):

        - ``crash_worker_on_task``: worker id → task id; the worker
          drops its connection when it receives that task (VM failure).
          Task id ``-1`` crashes on the first staging push.
        - ``hang_worker_on_task``: worker id → task id; the worker
          stops beating and processing but keeps its connection open (a
          wedged process). Requires ``heartbeat_interval`` > 0.
        - ``crash_before_register``: worker ids that die before sending
          ``REGISTER_WORKER`` (the registration-window case).
        - ``respawn_after_crash``: worker id → delay seconds; after
          that worker crashes, a fresh worker (new id) reconnects and
          is accepted mid-run (elastic rejoin).
        - ``crash_master_after_tasks``: the master stops serving after
          that many task completions — workers unwind cleanly and the
          stranded tasks are accounted as lost.
        - ``fault_script``: seeded wire perturbations
          (:class:`~repro.runtime.faults.FaultScript`).
        """
        if callable(command) and not isinstance(command, CommandTemplate):
            command = CommandTemplate(function=command)
        dataset = _as_dataset(inputs)
        hang_map = hang_worker_on_task or {}
        if hang_map and self.heartbeat_interval <= 0:
            raise ConfigurationError(
                "hung workers are undetectable without heartbeats: "
                "set TcpEngine(heartbeat_interval=...) > 0"
            )
        if fault_script is not None and self.reply_timeout <= 0:
            if any(r.action == "drop" for r in fault_script.rules):
                raise ConfigurationError(
                    "dropped frames are unrecoverable without re-requests: "
                    "set TcpEngine(reply_timeout=...) > 0"
                )
        return asyncio.run(
            asyncio.wait_for(
                self._run_async(
                    dataset,
                    command,
                    strategy,
                    grouping,
                    grouping_options or {},
                    retry_policy,
                    isolate_after,
                    crash_worker_on_task or {},
                    hang_map,
                    frozenset(crash_before_register),
                    respawn_after_crash or {},
                    crash_master_after_tasks,
                    fault_script,
                    telemetry,
                ),
                timeout=self.run_timeout,
            )
        )

    # ------------------------------------------------------------------
    async def _run_async(
        self,
        dataset: Dataset,
        command: CommandTemplate,
        strategy: StrategyKind | str,
        grouping: PartitionScheme | str,
        grouping_options: dict,
        retry_policy: RetryPolicy | None,
        isolate_after: int,
        crash_map: dict[str, int],
        hang_map: dict[str, int],
        pre_register_crashes: frozenset[str],
        respawn_map: dict[str, float],
        crash_master_after_tasks: int | None,
        fault_script: FaultScript | None,
        telemetry: Telemetry | None,
    ) -> RunOutcome:
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        t_base = time.monotonic()

        def clock() -> float:
            return time.monotonic() - t_base

        controller = ControllerLogic(
            strategy=strategy,
            grouping=grouping,
            grouping_options=grouping_options,
            command=command,
            multicore=False,
            retry_policy=retry_policy,
            isolate_after=isolate_after,
        )
        tel.bind(clock=clock, run=f"{dataset.name}:{controller.strategy.kind.value}")
        groups = controller.generate_partitions(dataset)
        scheduler = MasterScheduler(
            groups,
            controller.strategy,
            retry_policy=retry_policy,
            fault_tracker=controller.fault_tracker,
            metrics=tel.metrics,
        )
        worker_ids = [f"tcp:{i}" for i in range(self.num_workers)]
        expected = [w for w in worker_ids if w not in pre_register_crashes]
        monitor = (
            HeartbeatMonitor(self.heartbeat_config, metrics=tel.metrics)
            if self.heartbeat_interval > 0
            else None
        )
        elasticity = ElasticityManager(metrics=tel.metrics)
        master = _Master(
            controller,
            scheduler,
            dataset,
            worker_ids,
            clock=clock,
            registration_window=self.registration_window,
            heartbeats=monitor,
            heartbeat_interval=self.heartbeat_interval,
            elasticity=elasticity,
            telemetry=tel,
            fault_script=fault_script,
            crash_after_tasks=crash_master_after_tasks,
        )
        controller.fault_tracker.on_isolate = master.on_worker_isolated
        server = await asyncio.start_server(master.handle_client, self.host, 0)
        port = server.sockets[0].getsockname()[1]
        run_span = tel.start_span(
            "run",
            track="control",
            dataset=dataset.name,
            strategy=controller.strategy.kind.value,
            workers=self.num_workers,
        )
        started = time.monotonic()
        records: list[TaskRecord] = []
        hang_release = asyncio.Event()
        supervisor = asyncio.create_task(master.supervise())

        async def release_when_done() -> None:
            await master.run_done.wait()
            hang_release.set()

        releaser = asyncio.create_task(release_when_done())

        async def lifecycle(wid: str, root: str) -> None:
            status = await _worker_client(
                wid,
                self.host,
                port,
                command,
                os.path.join(root, wid.replace(":", "_")),
                records,
                crash_on_task=crash_map.get(wid),
                hang_on_task=hang_map.get(wid),
                hang_release=hang_release,
                crash_before_register=wid in pre_register_crashes,
                heartbeat_interval=self.heartbeat_interval,
                reply_timeout=self.reply_timeout,
                max_payload_retries=self.max_payload_retries,
                fault_script=fault_script,
            )
            delay = respawn_map.get(wid)
            if status == "crashed" and delay is not None and not master.run_done.is_set():
                await asyncio.sleep(delay)
                if master.run_done.is_set():
                    return
                await _worker_client(
                    f"{wid}:r1",
                    self.host,
                    port,
                    command,
                    os.path.join(root, wid.replace(":", "_") + "_r1"),
                    records,
                    heartbeat_interval=self.heartbeat_interval,
                    reply_timeout=self.reply_timeout,
                    max_payload_retries=self.max_payload_retries,
                    fault_script=fault_script,
                )

        with tempfile.TemporaryDirectory(dir=self.scratch_root, prefix="frieda-tcp-") as root:
            workers = [asyncio.create_task(lifecycle(wid, root)) for wid in worker_ids]
            try:
                await asyncio.gather(*workers)
            finally:
                master.run_done.set()
                for task in (supervisor, releaser):
                    task.cancel()
                await asyncio.gather(supervisor, releaser, return_exceptions=True)
                server.close()
                await server.wait_closed()
        if master.error is not None:
            raise master.error
        if master.crashed:
            abandoned = scheduler.abandon_outstanding("master connection lost")
            if abandoned:
                controller.log(
                    clock(),
                    "TASKS_ABANDONED",
                    f"{len(abandoned)} tasks stranded by master loss",
                )
        makespan = time.monotonic() - started
        summary = scheduler.summary()
        run_span.end(tasks=summary["completed"])
        records.sort(key=lambda r: (r.start, r.task_id))
        return RunOutcome(
            strategy=controller.strategy.kind,
            grouping=controller.grouping,
            makespan=makespan,
            transfer_time=master.transfer_seconds,
            execution_time=sum(r.duration for r in records if r.ok),
            tasks_total=summary["total"],
            tasks_completed=summary["completed"],
            tasks_failed=summary["failed"],
            tasks_lost=summary["lost"],
            bytes_transferred=float(master.bytes_sent),
            task_records=records,
            worker_busy={},
            controller_events=list(controller.events),
            extra={
                "heartbeat_deaths": sorted(master.declared_dead),
                "retransmits": master.retransmits,
                "reissued_requests": master.reissued,
                "stale_statuses": master.stale_statuses,
                "late_joins": sorted(master.late_joins),
                "master_crashed": master.crashed,
                "injected_faults": list(fault_script.injected) if fault_script else [],
                "elasticity_events": list(elasticity.events),
            },
        )


class _Master:
    """Server-side state: one instance per run."""

    def __init__(
        self,
        controller: ControllerLogic,
        scheduler: MasterScheduler,
        dataset: Dataset,
        expected_workers: list[str],
        *,
        clock: Callable[[], float],
        registration_window: float,
        heartbeats: HeartbeatMonitor | None,
        heartbeat_interval: float,
        elasticity: ElasticityManager,
        telemetry: Telemetry,
        fault_script: FaultScript | None = None,
        crash_after_tasks: int | None = None,
    ):
        self.controller = controller
        self.scheduler = scheduler
        self.dataset = dataset
        self.expected = set(expected_workers)
        self.clock = clock
        self.registration_window = registration_window
        self.heartbeats = heartbeats
        self.heartbeat_interval = heartbeat_interval
        self.elasticity = elasticity
        self.telemetry = telemetry
        self.fault_script = fault_script
        self.crash_after_tasks = crash_after_tasks
        self.registered: set[str] = set()
        self.channels: dict[str, Channel] = {}
        self.sent_files: dict[str, set[str]] = {}
        self.bytes_sent = 0
        self.transfer_seconds = 0.0
        self.partition_ready = asyncio.Event()
        self.run_done = asyncio.Event()
        self.declared_dead: set[str] = set()
        self.late_joins: set[str] = set()
        self.retransmits = 0
        self.reissued = 0
        self.stale_statuses = 0
        self.completed_count = 0
        self.crashed = False
        self.error: Optional[BaseException] = None
        self._partitioned = False
        self._registration_changed = asyncio.Event()

    # -- supervision ---------------------------------------------------
    async def supervise(self) -> None:
        """Registration window, then the heartbeat sweep loop."""
        try:
            await self._registration_phase()
            if self.heartbeats is None:
                return
            while not self.run_done.is_set():
                try:
                    await asyncio.wait_for(
                        self.run_done.wait(), timeout=self.heartbeat_interval
                    )
                except asyncio.TimeoutError:
                    self._sweep()
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # surface master bugs to the engine
            self.error = exc
            self.run_done.set()
            for channel in list(self.channels.values()):
                channel.close()

    async def _registration_phase(self) -> None:
        try:
            await asyncio.wait_for(
                self._wait_all_expected(), timeout=self.registration_window
            )
        except asyncio.TimeoutError:
            pass
        while not self.registered:
            # Nobody arrived inside the window: the run cannot start
            # with zero workers, so wait for the first registration
            # (the engine's run_timeout is the backstop).
            self._registration_changed.clear()
            await self._registration_changed.wait()
        missing = sorted(self.expected - self.registered)
        if missing:
            self.controller.log(
                self.clock(),
                "REGISTRATION_WINDOW_CLOSED",
                f"proceeding without {','.join(missing)}",
            )
        self.scheduler.partition_among(sorted(self.registered))
        self._partitioned = True
        self.partition_ready.set()

    async def _wait_all_expected(self) -> None:
        while not self.registered >= self.expected:
            self._registration_changed.clear()
            await self._registration_changed.wait()

    def _sweep(self) -> None:
        now = self.clock()
        states = self.heartbeats.sweep(now)
        faults = self.controller.fault_tracker
        for wid, state in states.items():
            if state is not Liveness.DEAD or wid in self.declared_dead:
                continue
            if faults.is_lost(wid):
                # Its death was already reported over the broken
                # connection; drop it from monitoring.
                self.heartbeats.forget(wid)
                continue
            self.declared_dead.add(wid)
            self._declare_dead(wid, now)
        self._maybe_finish()

    def _declare_dead(self, wid: str, now: float) -> None:
        self.telemetry.event("node.declared_dead", wid, track="control")
        self.controller.log(now, "NODE_DECLARED_DEAD", f"{wid}: missed heartbeats")
        requeued = self.scheduler.worker_lost(wid, "heartbeat: declared dead")
        self.controller.on_worker_failed(
            WorkerFailed(
                worker_id=wid,
                node_id=wid,
                error="heartbeat: declared dead",
                tasks_in_flight=tuple(a.task_id for a in requeued),
            ),
            now,
        )
        channel = self.channels.get(wid)
        if channel is not None:
            channel.close()

    def _maybe_finish(self) -> None:
        if self._partitioned and self.scheduler.done:
            self.run_done.set()

    def on_worker_isolated(self, wid: str, health: object) -> None:
        """FaultTracker callback: isolation is a capacity change."""
        if wid in self.elasticity.active_nodes:
            self.elasticity.node_removed(self.clock(), wid, reason="fault-isolation")
            self.telemetry.event("elastic.node_lost", wid, track="control")

    def _crash(self) -> None:
        """Injected master failure: stop serving, drop every connection."""
        self.crashed = True
        self.controller.log(self.clock(), "MASTER_LOST", "master crashed (injected)")
        for channel in list(self.channels.values()):
            channel.close()
        self.run_done.set()

    # -- data ----------------------------------------------------------
    def _file_bytes(self, name: str) -> bytes:
        file = self.dataset.get(name)
        if file.path is None:
            raise ConfigurationError(f"file {name!r} has no on-disk path")
        with open(file.path, "rb") as fh:
            return fh.read()

    async def _send_file(
        self, channel: Channel, wid: str, name: str, task_id: int
    ) -> None:
        # Disk reads stay off the event loop so one large input cannot
        # stall heartbeat processing for every connected worker.
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(None, self._file_bytes, name)
        t0 = time.monotonic()
        await channel.send(file_data_message(task_id, name, payload), payload)
        self.transfer_seconds += time.monotonic() - t0
        self.bytes_sent += len(payload)
        self.sent_files.setdefault(wid, set()).add(name)

    # -- connection handling -------------------------------------------
    def _make_channel(self, reader, writer) -> Channel:
        if self.fault_script is not None:
            return FaultyChannel(reader, writer, self.fault_script, "master")
        return Channel(reader, writer)

    async def handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        channel = self._make_channel(reader, writer)
        wid = ""
        pump: Optional[_FramePump] = None
        try:
            message, _ = await channel.recv()
            if not isinstance(message, RegisterWorker):
                raise ProtocolError(f"expected REGISTER_WORKER, got {message.msg_type}")
            now = self.clock()
            if self.crashed or self.run_done.is_set():
                await channel.send(
                    ConnectionAck(
                        worker_id=message.worker_id,
                        accepted=False,
                        reason="run is over",
                    )
                )
                return
            if message.worker_id in self.registered:
                await channel.send(
                    ConnectionAck(
                        worker_id=message.worker_id,
                        accepted=False,
                        reason="duplicate worker id; rejoin with a fresh id",
                    )
                )
                return
            wid = message.worker_id
            self.scheduler.register_worker(wid)
            self.registered.add(wid)
            self.channels[wid] = channel
            if self.heartbeats is not None:
                self.heartbeats.beat(wid, now)
            late = self.partition_ready.is_set()
            self.elasticity.node_added(
                now, wid, reason="late-join" if late else "registered"
            )
            if late:
                self.late_joins.add(wid)
                self.controller.log(now, "WORKER_JOINED_LATE", wid)
            self._registration_changed.set()
            await channel.send(ConnectionAck(worker_id=wid, accepted=True))

            def on_frame(message: Message, wid: str = wid) -> None:
                # Liveness is recorded at read time, independent of how
                # busy the serving loop is: any frame is proof of life.
                if self.heartbeats is not None:
                    self.heartbeats.beat(wid, self.clock())

            pump = _FramePump(channel, on_message=on_frame)
            # Static strategies: partition once the registration window
            # closes, then push this worker its chunk (staging phase).
            await self.partition_ready.wait()
            if self.controller.strategy.staged_before_execution:
                names_needed: list[str] = []
                if self.controller.strategy.replicate_all:
                    names_needed = [f.name for f in self.dataset]
                else:
                    for group in self.scheduler.planned_chunk(wid):
                        names_needed.extend(group.file_names)
                for name in dict.fromkeys(names_needed):
                    if name not in self.sent_files.get(wid, set()):
                        await self._send_file(channel, wid, name, task_id=-1)
            await self._serve(wid, channel, pump)
        except _CONNECTION_ERRORS:
            if wid and not self.crashed and not self.controller.fault_tracker.is_lost(wid):
                if self.heartbeats is not None:
                    self.heartbeats.forget(wid)
                requeued = self.scheduler.worker_lost(wid, "connection lost")
                self.controller.on_worker_failed(
                    WorkerFailed(
                        worker_id=wid,
                        node_id=wid,
                        error="connection lost",
                        tasks_in_flight=tuple(a.task_id for a in requeued),
                    ),
                    self.clock(),
                )
                self._maybe_finish()
        finally:
            if pump is not None:
                pump.stop()
                await asyncio.gather(pump.task, return_exceptions=True)
            if self.channels.get(wid) is channel:
                del self.channels[wid]
            channel.close()
            await channel.wait_closed()

    def _may_get_work_later(self, wid: str) -> bool:
        """Whether an idle worker should be parked instead of released.

        Mirrors the threaded runtime: with retries on, a drained worker
        waits for possible requeues (a peer may still die) instead of
        exiting — unless it is isolated or the run is over.
        """
        retry = self.scheduler.retry_policy
        if not (retry.retry_on_worker_loss or retry.retry_on_task_error):
            return False
        if self.scheduler.done or self.run_done.is_set():
            return False
        return not self.controller.fault_tracker.is_isolated(wid)

    async def _serve(self, wid: str, channel: Channel, pump: "_FramePump") -> None:
        while True:
            message, _ = await pump.get()
            now = self.clock()
            if isinstance(message, RequestData):
                assignment = self.scheduler.assignment_in_flight(wid)
                if assignment is not None:
                    # Repeated request: our reply was lost on the wire;
                    # re-send the same assignment (at-least-once).
                    self.reissued += 1
                else:
                    assignment = self.scheduler.next_for(wid)
                    while assignment is None and self._may_get_work_later(wid):
                        await asyncio.sleep(0.02)
                        assignment = self.scheduler.next_for(wid)
                if assignment is None:
                    if self.heartbeats is not None:
                        # Graceful drain: stop watching this worker so
                        # its silence after exit is not a false death.
                        self.heartbeats.forget(wid)
                    await channel.send(NoMoreData(worker_id=wid))
                    return
                group = assignment.group
                already = self.sent_files.get(wid, set())
                missing = [n for n in group.file_names if n not in already]
                await channel.send(
                    FileMetadata(
                        task_id=group.index,
                        file_names=group.file_names,
                        sizes=tuple(f.size for f in group.files),
                        transfer_required=bool(missing),
                        attempt=assignment.attempt,
                    )
                )
                for name in missing:
                    await self._send_file(channel, wid, name, task_id=group.index)
            elif isinstance(message, ResendFile):
                t0 = self.clock()
                await self._send_file(
                    channel, wid, message.file_name, task_id=message.task_id
                )
                self.retransmits += 1
                self.telemetry.span_complete(
                    "retransmit",
                    t0,
                    self.clock(),
                    track="control",
                    worker=wid,
                    file=message.file_name,
                    reason=message.reason,
                )
            elif isinstance(message, ExecStatus):
                if not self.scheduler.has_in_flight(wid, message.task_id):
                    # Stale: the heartbeat sweep already declared this
                    # worker dead and requeued the task. Ignore.
                    self.stale_statuses += 1
                    self.controller.log(
                        now, "STALE_STATUS", f"{wid}: task {message.task_id}"
                    )
                    continue
                if message.ok:
                    self.scheduler.report_success(wid, message.task_id)
                    self.completed_count += 1
                    if (
                        self.crash_after_tasks is not None
                        and self.completed_count >= self.crash_after_tasks
                    ):
                        self._crash()
                        return
                else:
                    self.controller.on_worker_error(wid, message.error, now)
                    self.scheduler.report_error(wid, message.task_id, message.error)
                self._maybe_finish()
            else:
                raise ProtocolError(f"unexpected message from worker: {message.msg_type}")


class _FramePump:
    """Reads frames into a queue so receives are decoupled from reads.

    Two reasons to never ``recv`` directly in a serving loop: (a)
    cancelling ``readexactly`` mid-frame (a receive timeout) would
    desynchronize the stream, while abandoning a queue get is safe; (b)
    liveness must not depend on how busy the consumer is — the master's
    pump records a beat the moment any frame arrives (``on_message``)
    even while the serving loop is staging files or parked waiting for
    work. Checksum and connection errors travel through the queue in
    order; ``Heartbeat`` frames are swallowed after the callback.
    """

    def __init__(
        self,
        channel: Channel,
        on_message: Optional[Callable[[Message], None]] = None,
    ):
        self.queue: asyncio.Queue = asyncio.Queue()
        self._on_message = on_message
        self.task = asyncio.create_task(self._pump(channel))

    async def _pump(self, channel: Channel) -> None:
        while True:
            try:
                item: tuple[Message, bytes] = await channel.recv()
            except ChecksumError as err:
                await self.queue.put(err)
                continue
            except _CONNECTION_ERRORS as err:
                await self.queue.put(err)
                return
            if self._on_message is not None:
                self._on_message(item[0])
                if isinstance(item[0], Heartbeat):
                    continue
            await self.queue.put(item)

    async def get(self, timeout: float = 0.0) -> tuple[Message, bytes]:
        if timeout > 0:
            item = await asyncio.wait_for(self.queue.get(), timeout)
        else:
            item = await self.queue.get()
        if isinstance(item, BaseException):
            raise item
        return item

    def stop(self) -> None:
        self.task.cancel()


def _write_payload(scratch_dir: str, file_name: str, payload: bytes) -> None:
    """Spill one received file to worker scratch, synchronously.

    Deliberately NOT offloaded to an executor: spills are bounded by
    one frame, and yielding between a staged frame and the worker's
    next request reorders task assignment across workers — the fault
    tests pin which worker is handed which task, and the paper's
    protocol assumes a worker drains each push before asking for more.
    """
    with open(os.path.join(scratch_dir, file_name), "wb") as fh:  # frieda: allow[async-blocking] -- deliberate: frame-sized spill; yielding here reorders task assignment (see docstring)
        fh.write(payload)


async def _heartbeat_loop(channel: Channel, wid: str, interval: float) -> None:
    seq = 0
    try:
        while True:
            await channel.send(Heartbeat(worker_id=wid, seq=seq))
            seq += 1
            await asyncio.sleep(interval)
    except _CONNECTION_ERRORS + (OSError,):
        return


async def _worker_client(
    wid: str,
    host: str,
    port: int,
    command: CommandTemplate,
    scratch_dir: str,
    records: list[TaskRecord],
    *,
    crash_on_task: Optional[int] = None,
    hang_on_task: Optional[int] = None,
    hang_release: asyncio.Event | None = None,
    crash_before_register: bool = False,
    heartbeat_interval: float = 0.0,
    reply_timeout: float = 0.0,
    max_payload_retries: int = 3,
    fault_script: FaultScript | None = None,
) -> str:
    """One worker: register, then the request/execute/report loop.

    Returns how the worker ended: ``"completed"`` (drained),
    ``"crashed"`` (injected crash), ``"hung"`` (injected hang,
    released at end of run), or ``"disconnected"`` (master/connection
    loss — handled cleanly, never raises through the engine).
    """
    os.makedirs(scratch_dir, exist_ok=True)  # frieda: allow[async-blocking] -- one-time mkdir before any frame is in flight
    logic = WorkerLogic(wid, wid, command, scratch_dir=scratch_dir)
    reader, writer = await asyncio.open_connection(host, port)
    channel: Channel = (
        FaultyChannel(reader, writer, fault_script, "worker")
        if fault_script is not None
        else Channel(reader, writer)
    )
    beat_task: asyncio.Task | None = None
    pump: _FramePump | None = None

    async def go_hang() -> str:
        # A wedged process: beats stop, the connection stays open, no
        # further frames are sent. Released when the run finishes.
        if beat_task is not None:
            beat_task.cancel()
        if hang_release is not None:
            await hang_release.wait()
        return "hung"

    try:
        if crash_before_register:
            return "crashed"  # died before REGISTER_WORKER ever went out
        await channel.send(RegisterWorker(worker_id=wid, node_id=wid, cores=1))
        ack, _ = await channel.recv()
        if not isinstance(ack, ConnectionAck) or not ack.accepted:
            reason = getattr(ack, "reason", "") or "unknown"
            raise ProtocolError(f"registration rejected for {wid}: {reason}")
        if heartbeat_interval > 0:
            beat_task = asyncio.create_task(
                _heartbeat_loop(channel, wid, heartbeat_interval)
            )
        pump = _FramePump(channel)
        loop = asyncio.get_running_loop()
        resend_counts: dict[str, int] = {}

        async def recv_checked(
            expect_files_for: tuple[str, ...] = (), task_id: int = -1
        ) -> tuple[Message, bytes]:
            """Receive one frame, recovering from corrupt or lost ones.

            A checksum mismatch re-requests the corrupt file; silence
            past ``reply_timeout`` re-requests every still-missing file
            of the current task. Both are bounded per file.
            """
            while True:
                try:
                    return await pump.get(reply_timeout)
                except ChecksumError as err:
                    frame = err.frame
                    assert isinstance(frame, FileData)
                    n = resend_counts.get(frame.file_name, 0) + 1
                    resend_counts[frame.file_name] = n
                    if n > max_payload_retries:
                        raise ProtocolError(
                            f"giving up on {frame.file_name!r} after "
                            f"{max_payload_retries} retransmits"
                        ) from err
                    await channel.send(
                        ResendFile(
                            worker_id=wid,
                            file_name=frame.file_name,
                            task_id=frame.task_id,
                        )
                    )
                except asyncio.TimeoutError:
                    missing = logic.missing_files(expect_files_for)
                    if not missing:
                        raise
                    for name in missing:
                        n = resend_counts.get(name, 0) + 1
                        resend_counts[name] = n
                        if n > max_payload_retries:
                            raise ProtocolError(
                                f"giving up on {name!r} after "
                                f"{max_payload_retries} re-requests"
                            ) from None
                        await channel.send(
                            ResendFile(
                                worker_id=wid,
                                file_name=name,
                                task_id=task_id,
                                reason="reply timeout",
                            )
                        )

        requested = False
        request_retries = 0
        while True:
            if not requested:
                await channel.send(RequestData(worker_id=wid))
                requested = True
                request_retries = 0
            try:
                message, payload = await recv_checked()
            except asyncio.TimeoutError:
                # No reply at all: our request (or its answer) was lost.
                request_retries += 1
                if request_retries > max_payload_retries:
                    raise ProtocolError(
                        f"master unresponsive after {max_payload_retries} re-requests"
                    ) from None
                await channel.send(RequestData(worker_id=wid))
                continue
            if isinstance(message, NoMoreData):
                return "completed"
            if isinstance(message, FileData):
                # Unsolicited staging push — store it; the outstanding
                # REQUEST_DATA is still pending, so don't re-request.
                if crash_on_task is not None and message.task_id == crash_on_task:
                    channel.close()
                    return "crashed"
                if hang_on_task is not None and message.task_id == hang_on_task:
                    return await go_hang()
                _write_payload(scratch_dir, message.file_name, payload)
                logic.receive_file(message.file_name)
                continue
            if not isinstance(message, FileMetadata):
                raise ProtocolError(f"unexpected message at worker: {message.msg_type}")
            if crash_on_task is not None and crash_on_task in (message.task_id, ANY_TASK):
                channel.close()
                return "crashed"
            if hang_on_task is not None and hang_on_task in (message.task_id, ANY_TASK):
                return await go_hang()
            # Wait until every input for this task has arrived.
            while logic.missing_files(message.file_names):
                data_msg, payload = await recv_checked(
                    expect_files_for=message.file_names, task_id=message.task_id
                )
                if not isinstance(data_msg, FileData):
                    raise ProtocolError("expected FILE_DATA for missing inputs")
                _write_payload(scratch_dir, data_msg.file_name, payload)
                logic.receive_file(data_msg.file_name)
            start = time.monotonic()
            logic.begin_task(message.task_id, message.file_names, start)
            paths = [logic.resolve_path(n) for n in message.file_names]
            ok, error = True, ""
            try:
                # Run the program off the event loop.
                await loop.run_in_executor(None, lambda: command.call(paths))
            except Exception as exc:
                ok, error = False, f"{type(exc).__name__}: {exc}"
            end = time.monotonic()
            logic.finish_task(end, ok=ok, error=error)
            records.append(
                TaskRecord(
                    task_id=message.task_id,
                    worker_id=wid,
                    node_id=wid,
                    start=start,
                    end=end,
                    ok=ok,
                    attempt=message.attempt,
                    error=error,
                )
            )
            await channel.send(
                ExecStatus(
                    worker_id=wid,
                    task_id=message.task_id,
                    ok=ok,
                    duration=end - start,
                    error=error,
                )
            )
            requested = False
    except _CONNECTION_ERRORS:
        # Master loss (or our own injected truncate): unwind cleanly —
        # the engine accounts stranded tasks as lost, no traceback.
        return "disconnected"
    finally:
        if beat_task is not None:
            beat_task.cancel()
            await asyncio.gather(beat_task, return_exceptions=True)
        if pump is not None:
            pump.stop()
            await asyncio.gather(pump.task, return_exceptions=True)
        channel.close()
        await channel.wait_closed()
