"""asyncio TCP master/worker runtime — the Twisted-prototype equivalent.

One process hosts the whole virtual deployment on localhost: the master
is an asyncio TCP server, each worker an asyncio client task. The wire
protocol is :mod:`repro.runtime.protocol` (length-prefixed JSON +
binary file payloads), exercising the exact message sequence of Fig 4:

    worker  → REGISTER_WORKER
    master  → CONNECTION_ACK
    (staged strategies: master pushes the worker's chunk as FILE_DATA)
    worker  → REQUEST_DATA
    master  → FILE_METADATA [+ FILE_DATA per missing file]  |  NO_MORE_DATA
    worker  → EXEC_STATUS
    ... repeat ...

Fault tolerance (runtime twin of the simulated engine's fault model):

- **Registration window** instead of a wait-for-all barrier: the run
  proceeds with whichever workers register inside the window; late
  workers — including a worker rejoining after a crash under a fresh
  id — are accepted mid-run and handed requeued work.
- **Wire liveness**: workers emit ``HEARTBEAT`` frames; the master
  drives a :class:`~repro.core.monitoring.HeartbeatMonitor` so a *hung*
  worker (connection open, no beats) is declared dead and recovered
  through the same ``worker_lost`` → requeue → isolate →
  :class:`~repro.core.elasticity.ElasticityManager` path a broken
  connection takes.
- **Payload integrity**: ``FILE_DATA`` frames are checksummed; a
  corrupt payload triggers a bounded ``RESEND_FILE`` re-request.
- **Fault injection**: a seeded
  :class:`~repro.runtime.faults.FaultScript` perturbs frames
  (drop/delay/corrupt/truncate) for chaos testing.

A worker disconnecting mid-run is treated as a failed worker: the
master reports it to the controller, isolates it, and (only with the
retry extension) requeues its tasks. A master loss no longer crashes
the run: workers unwind cleanly and the stranded tasks are accounted
as lost.
"""

from __future__ import annotations

# frieda: allow-file[wall-clock] -- real execution plane: measuring real
# elapsed time (makespan, transfer, busy seconds) is this engine's job.

import asyncio
import os
import tempfile
import time
from typing import Callable, Optional, Sequence

from repro.core.commands import CommandTemplate
from repro.core.controller import ControllerLogic
from repro.core.elasticity import ElasticityManager
from repro.core.fault import RetryPolicy
from repro.core.framework import RunOutcome, TaskRecord
from repro.core.identity import RejoinIdMinter, scratch_name
from repro.core.messages import (
    ConnectionAck,
    ExecStatus,
    FileData,
    FileMetadata,
    Heartbeat,
    HeartbeatAck,
    Message,
    NoMoreData,
    RegisterWorker,
    RequestData,
    ResendFile,
    TelemetryBatch,
    WorkerFailed,
)
from repro.core.monitoring import HeartbeatConfig, HeartbeatMonitor, Liveness
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind
from repro.core.worker import WorkerLogic
from repro.data.files import Dataset
from repro.data.partition import PartitionScheme
from repro.errors import ChecksumError, ConfigurationError, ProtocolError
from repro.runtime.faults import ANY_TASK, FaultScript, FaultyChannel
from repro.runtime.local import _as_dataset
from repro.runtime.protocol import Channel, file_data_message, telemetry_batch_message
from repro.telemetry.shipping import TelemetryMerger, TelemetryShipper, decode_batch, encode_batch
from repro.telemetry.slo import SloEvaluator, SloProbe
from repro.telemetry.spans import NULL_TELEMETRY, Telemetry

_CONNECTION_ERRORS = (
    asyncio.IncompleteReadError,
    ConnectionResetError,
    BrokenPipeError,
)



class TcpEngine:
    """Master/worker FRIEDA over localhost TCP."""

    def __init__(
        self,
        num_workers: int = 2,
        *,
        scratch_root: Optional[str] = None,
        run_timeout: float = 120.0,
        host: str = "127.0.0.1",
        registration_window: float = 5.0,
        heartbeat_interval: float = 0.0,
        heartbeat_config: HeartbeatConfig | None = None,
        reply_timeout: float = 0.0,
        max_payload_retries: int = 3,
        telemetry_interval: float = 0.25,
    ):
        """``registration_window`` bounds how long the master waits for
        the expected workers before partitioning over whoever arrived
        (it always proceeds early once all expected workers register).
        ``heartbeat_interval`` > 0 turns on wire liveness: workers beat
        at that period and the master sweeps at the same period using
        ``heartbeat_config`` thresholds. ``reply_timeout`` > 0 lets a
        worker re-request after silence instead of blocking forever
        (required for ``drop`` fault rules); ``max_payload_retries``
        bounds per-file retransmits and re-requests.
        ``telemetry_interval`` is the period of worker telemetry flushes
        (and of SLO/queue-depth sampling when heartbeats are off); it
        only matters when a recording hub is passed to :meth:`run`.
        """
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if registration_window <= 0:
            raise ConfigurationError("registration_window must be > 0")
        self.num_workers = num_workers
        self.scratch_root = scratch_root
        self.run_timeout = run_timeout
        self.host = host
        self.registration_window = registration_window
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_config = heartbeat_config
        self.reply_timeout = reply_timeout
        self.max_payload_retries = max_payload_retries
        if telemetry_interval <= 0:
            raise ConfigurationError("telemetry_interval must be > 0")
        self.telemetry_interval = telemetry_interval

    def run(
        self,
        inputs: Dataset | Sequence[str],
        *,
        command: CommandTemplate | Callable[..., object],
        strategy: StrategyKind | str = StrategyKind.REAL_TIME,
        grouping: PartitionScheme | str = PartitionScheme.SINGLE,
        grouping_options: dict | None = None,
        retry_policy: RetryPolicy | None = None,
        isolate_after: int = 1,
        crash_worker_on_task: dict[str, int] | None = None,
        hang_worker_on_task: dict[str, int] | None = None,
        crash_before_register: Sequence[str] = (),
        respawn_after_crash: dict[str, float] | None = None,
        crash_master_after_tasks: int | None = None,
        fault_script: FaultScript | None = None,
        telemetry: Telemetry | None = None,
        slo_probes: Sequence[SloProbe] = (),
    ) -> RunOutcome:
        """Run the workload over TCP; returns a :class:`RunOutcome`.

        With a *recording* ``telemetry`` hub, every worker runs its own
        hub on its own clock and ships batched spans/metrics back in
        ``TELEMETRY`` frames; the master folds them into per-worker
        tracks (clock-aligned from heartbeat pairs) at drain.
        ``slo_probes`` are evaluated over the live metrics stream at
        sweep ticks and task completions, emitting ``slo.breach`` /
        ``slo.recovered`` events.

        Testing hooks (all deterministic, none active by default):

        - ``crash_worker_on_task``: worker id → task id; the worker
          drops its connection when it receives that task (VM failure).
          Task id ``-1`` crashes on the first staging push.
        - ``hang_worker_on_task``: worker id → task id; the worker
          stops beating and processing but keeps its connection open (a
          wedged process). Requires ``heartbeat_interval`` > 0.
        - ``crash_before_register``: worker ids that die before sending
          ``REGISTER_WORKER`` (the registration-window case).
        - ``respawn_after_crash``: worker id → delay seconds; after
          that worker crashes, a fresh worker (new id) reconnects and
          is accepted mid-run (elastic rejoin).
        - ``crash_master_after_tasks``: the master stops serving after
          that many task completions — workers unwind cleanly and the
          stranded tasks are accounted as lost.
        - ``fault_script``: seeded wire perturbations
          (:class:`~repro.runtime.faults.FaultScript`).
        """
        if callable(command) and not isinstance(command, CommandTemplate):
            command = CommandTemplate(function=command)
        dataset = _as_dataset(inputs)
        hang_map = hang_worker_on_task or {}
        if hang_map and self.heartbeat_interval <= 0:
            raise ConfigurationError(
                "hung workers are undetectable without heartbeats: "
                "set TcpEngine(heartbeat_interval=...) > 0"
            )
        if fault_script is not None and self.reply_timeout <= 0:
            if any(r.action == "drop" for r in fault_script.rules):
                raise ConfigurationError(
                    "dropped frames are unrecoverable without re-requests: "
                    "set TcpEngine(reply_timeout=...) > 0"
                )
        return asyncio.run(
            asyncio.wait_for(
                self._run_async(
                    dataset,
                    command,
                    strategy,
                    grouping,
                    grouping_options or {},
                    retry_policy,
                    isolate_after,
                    crash_worker_on_task or {},
                    hang_map,
                    frozenset(crash_before_register),
                    respawn_after_crash or {},
                    crash_master_after_tasks,
                    fault_script,
                    telemetry,
                    tuple(slo_probes),
                ),
                timeout=self.run_timeout,
            )
        )

    # ------------------------------------------------------------------
    async def _run_async(
        self,
        dataset: Dataset,
        command: CommandTemplate,
        strategy: StrategyKind | str,
        grouping: PartitionScheme | str,
        grouping_options: dict,
        retry_policy: RetryPolicy | None,
        isolate_after: int,
        crash_map: dict[str, int],
        hang_map: dict[str, int],
        pre_register_crashes: frozenset[str],
        respawn_map: dict[str, float],
        crash_master_after_tasks: int | None,
        fault_script: FaultScript | None,
        telemetry: Telemetry | None,
        slo_probes: tuple[SloProbe, ...],
    ) -> RunOutcome:
        if telemetry is not None:
            tel = telemetry
        elif slo_probes:
            # Probes resolve against live metrics; a private
            # non-recording hub keeps the gauges real without paying
            # for span retention.
            tel = Telemetry()
        else:
            tel = NULL_TELEMETRY
        t_base = time.monotonic()

        def clock() -> float:
            return time.monotonic() - t_base

        controller = ControllerLogic(
            strategy=strategy,
            grouping=grouping,
            grouping_options=grouping_options,
            command=command,
            multicore=False,
            retry_policy=retry_policy,
            isolate_after=isolate_after,
        )
        tel.bind(clock=clock, run=f"{dataset.name}:{controller.strategy.kind.value}")
        groups = controller.generate_partitions(dataset)
        scheduler = MasterScheduler(
            groups,
            controller.strategy,
            retry_policy=retry_policy,
            fault_tracker=controller.fault_tracker,
            metrics=tel.metrics,
            clock=clock,
        )
        worker_ids = [f"tcp:{i}" for i in range(self.num_workers)]
        expected = [w for w in worker_ids if w not in pre_register_crashes]
        monitor = (
            HeartbeatMonitor(self.heartbeat_config, metrics=tel.metrics)
            if self.heartbeat_interval > 0
            else None
        )
        elasticity = ElasticityManager(metrics=tel.metrics)
        master = _Master(
            controller,
            scheduler,
            dataset,
            worker_ids,
            clock=clock,
            registration_window=self.registration_window,
            heartbeats=monitor,
            heartbeat_interval=self.heartbeat_interval,
            elasticity=elasticity,
            telemetry=tel,
            fault_script=fault_script,
            crash_after_tasks=crash_master_after_tasks,
            merger=TelemetryMerger(tel) if tel.record else None,
            slo=SloEvaluator(slo_probes, tel) if slo_probes else None,
            observe_interval=self.telemetry_interval,
        )
        controller.fault_tracker.on_isolate = master.on_worker_isolated
        server = await asyncio.start_server(master.handle_client, self.host, 0)
        port = server.sockets[0].getsockname()[1]
        run_span = tel.start_span(
            "run",
            track="control",
            dataset=dataset.name,
            strategy=controller.strategy.kind.value,
            workers=self.num_workers,
        )
        started = time.monotonic()
        records: list[TaskRecord] = []
        hang_release = asyncio.Event()
        supervisor = asyncio.create_task(master.supervise())

        async def release_when_done() -> None:
            await master.run_done.wait()
            hang_release.set()

        releaser = asyncio.create_task(release_when_done())
        # Shared crash→rejoin id policy: fresh ``base:rN`` per life, the
        # same discipline the threaded engine uses (core/identity.py).
        minter = RejoinIdMinter()

        async def lifecycle(wid: str, root: str) -> None:
            status = await _worker_client(
                wid,
                self.host,
                port,
                command,
                os.path.join(root, wid.replace(":", "_")),
                records,
                crash_on_task=crash_map.get(wid),
                hang_on_task=hang_map.get(wid),
                hang_release=hang_release,
                crash_before_register=wid in pre_register_crashes,
                heartbeat_interval=self.heartbeat_interval,
                reply_timeout=self.reply_timeout,
                max_payload_retries=self.max_payload_retries,
                fault_script=fault_script,
                telemetry_interval=self.telemetry_interval,
            )
            delay = respawn_map.get(wid)
            if status == "crashed" and delay is not None and not master.run_done.is_set():
                await asyncio.sleep(delay)
                if master.run_done.is_set():
                    return
                fresh = minter.mint(wid)
                await _worker_client(
                    fresh,
                    self.host,
                    port,
                    command,
                    os.path.join(root, scratch_name(fresh)),
                    records,
                    heartbeat_interval=self.heartbeat_interval,
                    reply_timeout=self.reply_timeout,
                    max_payload_retries=self.max_payload_retries,
                    fault_script=fault_script,
                    telemetry_interval=self.telemetry_interval,
                )

        with tempfile.TemporaryDirectory(dir=self.scratch_root, prefix="frieda-tcp-") as root:
            workers = [asyncio.create_task(lifecycle(wid, root)) for wid in worker_ids]
            try:
                await asyncio.gather(*workers)
            finally:
                master.run_done.set()
                for task in (supervisor, releaser, *master._ack_tasks):
                    task.cancel()
                await asyncio.gather(
                    supervisor, releaser, *master._ack_tasks,
                    return_exceptions=True,
                )
                server.close()
                await server.wait_closed()
                # Let handlers finish their teardown (drain, close);
                # all channels are gone, so this is fast — the bound is
                # a backstop, not a budget.
                if master._client_tasks:
                    await asyncio.wait(set(master._client_tasks), timeout=2.0)
                    for pending in master._client_tasks:
                        pending.cancel()
                    await asyncio.gather(
                        *master._client_tasks, return_exceptions=True
                    )
        if master.error is not None:
            raise master.error
        if master.crashed:
            abandoned = scheduler.abandon_outstanding("master connection lost")
            if abandoned:
                controller.log(
                    clock(),
                    "TASKS_ABANDONED",
                    f"{len(abandoned)} tasks stranded by master loss",
                )
        makespan = time.monotonic() - started
        # Fold worker telemetry streams into the run hub (per-worker
        # tracks, clock-aligned; conflict-free metric merge), then give
        # the SLO probes a final look at the fully merged registry.
        clock_offsets: dict[str, float] = {}
        if master.merger is not None:
            clock_offsets = master.merger.fold()
        if master.slo is not None:
            master.slo.evaluate(clock())
        summary = scheduler.summary()
        run_span.end(tasks=summary["completed"])
        records.sort(key=lambda r: (r.start, r.task_id))
        return RunOutcome(
            strategy=controller.strategy.kind,
            grouping=controller.grouping,
            makespan=makespan,
            transfer_time=master.transfer_seconds,
            execution_time=sum(r.duration for r in records if r.ok),
            tasks_total=summary["total"],
            tasks_completed=summary["completed"],
            tasks_failed=summary["failed"],
            tasks_lost=summary["lost"],
            bytes_transferred=float(master.bytes_sent),
            task_records=records,
            worker_busy={},
            controller_events=list(controller.events),
            extra={
                "heartbeat_deaths": sorted(master.declared_dead),
                "retransmits": master.retransmits,
                "reissued_requests": master.reissued,
                "stale_statuses": master.stale_statuses,
                "late_joins": sorted(master.late_joins),
                "master_crashed": master.crashed,
                "injected_faults": list(fault_script.injected) if fault_script else [],
                "elasticity_events": list(elasticity.events),
                "telemetry_batches": (
                    master.merger.batches_received if master.merger else 0
                ),
                "telemetry_batches_dropped": master.batches_dropped,
                "clock_offsets": clock_offsets,
                "slo_breaches": (
                    [
                        (b.probe, b.signal, b.value, b.threshold)
                        for b in master.slo.breaches
                    ]
                    if master.slo
                    else []
                ),
            },
        )


class _Master:
    """Server-side state: one instance per run."""

    def __init__(
        self,
        controller: ControllerLogic,
        scheduler: MasterScheduler,
        dataset: Dataset,
        expected_workers: list[str],
        *,
        clock: Callable[[], float],
        registration_window: float,
        heartbeats: HeartbeatMonitor | None,
        heartbeat_interval: float,
        elasticity: ElasticityManager,
        telemetry: Telemetry,
        fault_script: FaultScript | None = None,
        crash_after_tasks: int | None = None,
        merger: TelemetryMerger | None = None,
        slo: SloEvaluator | None = None,
        observe_interval: float = 0.25,
    ):
        self.controller = controller
        self.scheduler = scheduler
        self.dataset = dataset
        self.expected = set(expected_workers)
        self.clock = clock
        self.registration_window = registration_window
        self.heartbeats = heartbeats
        self.heartbeat_interval = heartbeat_interval
        self.elasticity = elasticity
        self.telemetry = telemetry
        self.fault_script = fault_script
        self.crash_after_tasks = crash_after_tasks
        self.merger = merger
        self.slo = slo
        self.observe_interval = observe_interval
        self.batches_dropped = 0
        self._ack_tasks: set[asyncio.Task] = set()
        self._client_tasks: set[asyncio.Task] = set()
        self.registered: set[str] = set()
        self.channels: dict[str, Channel] = {}
        self.sent_files: dict[str, set[str]] = {}
        self.bytes_sent = 0
        self.transfer_seconds = 0.0
        self.partition_ready = asyncio.Event()
        self.run_done = asyncio.Event()
        self.declared_dead: set[str] = set()
        self.late_joins: set[str] = set()
        self.retransmits = 0
        self.reissued = 0
        self.stale_statuses = 0
        self.completed_count = 0
        self.crashed = False
        self.error: Optional[BaseException] = None
        self._partitioned = False
        self._registration_changed = asyncio.Event()

    # -- supervision ---------------------------------------------------
    async def supervise(self) -> None:
        """Registration window, then the sweep/observe loop."""
        try:
            await self._registration_phase()
            if self.heartbeats is None and self.slo is None and self.merger is None:
                return
            interval = (
                self.heartbeat_interval
                if self.heartbeats is not None
                else self.observe_interval
            )
            while not self.run_done.is_set():
                try:
                    await asyncio.wait_for(self.run_done.wait(), timeout=interval)
                except asyncio.TimeoutError:
                    if self.heartbeats is not None:
                        self._sweep()
                    self._observe(sample=True)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # surface master bugs to the engine
            self.error = exc
            self.run_done.set()
            for channel in list(self.channels.values()):
                channel.close()

    async def _registration_phase(self) -> None:
        try:
            await asyncio.wait_for(
                self._wait_all_expected(), timeout=self.registration_window
            )
        except asyncio.TimeoutError:
            pass
        while not self.registered:
            # Nobody arrived inside the window: the run cannot start
            # with zero workers, so wait for the first registration
            # (the engine's run_timeout is the backstop).
            self._registration_changed.clear()
            await self._registration_changed.wait()
        missing = sorted(self.expected - self.registered)
        if missing:
            self.controller.log(
                self.clock(),
                "REGISTRATION_WINDOW_CLOSED",
                f"proceeding without {','.join(missing)}",
            )
        self.scheduler.partition_among(sorted(self.registered))
        self._partitioned = True
        self.partition_ready.set()

    async def _wait_all_expected(self) -> None:
        while not self.registered >= self.expected:
            self._registration_changed.clear()
            await self._registration_changed.wait()

    def _sweep(self) -> None:
        now = self.clock()
        states = self.heartbeats.sweep(now)
        faults = self.controller.fault_tracker
        for wid, state in states.items():
            if state is not Liveness.DEAD or wid in self.declared_dead:
                continue
            if faults.is_lost(wid):
                # Its death was already reported over the broken
                # connection; drop it from monitoring.
                self.heartbeats.forget(wid)
                continue
            self.declared_dead.add(wid)
            self._declare_dead(wid, now)
        self._maybe_finish()

    def _declare_dead(self, wid: str, now: float) -> None:
        self.telemetry.event("node.declared_dead", wid, track="control")
        self.controller.log(now, "NODE_DECLARED_DEAD", f"{wid}: missed heartbeats")
        requeued = self.scheduler.worker_lost(wid, "heartbeat: declared dead")
        self.controller.on_worker_failed(
            WorkerFailed(
                worker_id=wid,
                node_id=wid,
                error="heartbeat: declared dead",
                tasks_in_flight=tuple(a.task_id for a in requeued),
            ),
            now,
        )
        channel = self.channels.get(wid)
        if channel is not None:
            channel.close()

    def _maybe_finish(self) -> None:
        if self._partitioned and self.scheduler.done:
            self.run_done.set()

    def _observe(self, *, sample: bool) -> None:
        """SLO evaluation plus (on sweep ticks) queue-depth sampling."""
        now = self.clock()
        if sample and self.telemetry.record:
            self.telemetry.event(
                "queue.depth", self.scheduler.pending_count, track="control"
            )
        if self.slo is not None:
            self.slo.evaluate(now)

    def _ack_heartbeat(self, channel: Channel, beat: Heartbeat) -> None:
        """Echo a beat back (fire-and-forget) so the worker can measure
        a round trip entirely on its own clock."""

        async def _send() -> None:
            try:
                await channel.send(
                    HeartbeatAck(
                        worker_id=beat.worker_id,
                        seq=beat.seq,
                        sent_at=beat.sent_at,
                    )
                )
            except _CONNECTION_ERRORS + (OSError,):
                pass

        task = asyncio.create_task(_send())
        self._ack_tasks.add(task)
        task.add_done_callback(self._ack_tasks.discard)

    def on_worker_isolated(self, wid: str, health: object) -> None:
        """FaultTracker callback: isolation is a capacity change."""
        if wid in self.elasticity.active_nodes:
            self.elasticity.node_removed(self.clock(), wid, reason="fault-isolation")
            self.telemetry.event("elastic.node_lost", wid, track="control")

    def _crash(self) -> None:
        """Injected master failure: stop serving, drop every connection."""
        self.crashed = True
        self.controller.log(self.clock(), "MASTER_LOST", "master crashed (injected)")
        for channel in list(self.channels.values()):
            channel.close()
        self.run_done.set()

    # -- data ----------------------------------------------------------
    def _file_bytes(self, name: str) -> bytes:
        file = self.dataset.get(name)
        if file.path is None:
            raise ConfigurationError(f"file {name!r} has no on-disk path")
        with open(file.path, "rb") as fh:
            return fh.read()

    async def _send_file(
        self, channel: Channel, wid: str, name: str, task_id: int
    ) -> None:
        # Disk reads stay off the event loop so one large input cannot
        # stall heartbeat processing for every connected worker.
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(None, self._file_bytes, name)
        t0 = time.monotonic()
        await channel.send(file_data_message(task_id, name, payload), payload)
        self.transfer_seconds += time.monotonic() - t0
        self.bytes_sent += len(payload)
        self.sent_files.setdefault(wid, set()).add(name)

    # -- connection handling -------------------------------------------
    def _make_channel(self, reader, writer) -> Channel:
        if self.fault_script is not None:
            return FaultyChannel(reader, writer, self.fault_script, "master")
        return Channel(reader, writer)

    async def handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        # Track the handler so the engine can wait for connection
        # teardown (telemetry drain outlives the worker's exit).
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        channel = self._make_channel(reader, writer)
        wid = ""
        pump: Optional[_FramePump] = None
        try:
            message, _ = await channel.recv()
            if not isinstance(message, RegisterWorker):
                raise ProtocolError(f"expected REGISTER_WORKER, got {message.msg_type}")
            now = self.clock()
            if self.crashed or self.run_done.is_set():
                await channel.send(
                    ConnectionAck(
                        worker_id=message.worker_id,
                        accepted=False,
                        reason="run is over",
                    )
                )
                return
            if message.worker_id in self.registered:
                await channel.send(
                    ConnectionAck(
                        worker_id=message.worker_id,
                        accepted=False,
                        reason="duplicate worker id; rejoin with a fresh id",
                    )
                )
                return
            wid = message.worker_id
            self.scheduler.register_worker(wid)
            self.registered.add(wid)
            self.channels[wid] = channel
            if self.heartbeats is not None:
                self.heartbeats.beat(wid, now)
            late = self.partition_ready.is_set()
            self.elasticity.node_added(
                now, wid, reason="late-join" if late else "registered"
            )
            if late:
                self.late_joins.add(wid)
                self.controller.log(now, "WORKER_JOINED_LATE", wid)
            self._registration_changed.set()
            await channel.send(
                ConnectionAck(
                    worker_id=wid,
                    accepted=True,
                    ship_telemetry=self.merger is not None,
                )
            )

            def on_frame(message: Message, wid: str = wid) -> None:
                # Liveness is recorded at read time, independent of how
                # busy the serving loop is: any frame is proof of life.
                now = self.clock()
                if isinstance(message, Heartbeat):
                    if self.heartbeats is not None:
                        rtt = message.rtt if message.rtt >= 0 else None
                        self.heartbeats.beat(wid, now, rtt=rtt)
                    if self.merger is not None:
                        # Each beat is one (worker send, master receive)
                        # pair for the min-delay clock aligner.
                        self.merger.observe_clock(wid, message.sent_at, now)
                    self._ack_heartbeat(channel, message)
                    return
                if self.heartbeats is not None:
                    self.heartbeats.beat(wid, now)

            pump = _FramePump(channel, on_message=on_frame)
            # Static strategies: partition once the registration window
            # closes, then push this worker its chunk (staging phase).
            await self.partition_ready.wait()
            if self.controller.strategy.staged_before_execution:
                names_needed: list[str] = []
                if self.controller.strategy.replicate_all:
                    names_needed = [f.name for f in self.dataset]
                else:
                    for group in self.scheduler.planned_chunk(wid):
                        names_needed.extend(group.file_names)
                for name in dict.fromkeys(names_needed):
                    if name not in self.sent_files.get(wid, set()):
                        await self._send_file(channel, wid, name, task_id=-1)
            await self._serve(wid, channel, pump)
        except _CONNECTION_ERRORS:
            if wid and not self.crashed and not self.controller.fault_tracker.is_lost(wid):
                if self.heartbeats is not None:
                    self.heartbeats.forget(wid)
                requeued = self.scheduler.worker_lost(wid, "connection lost")
                self.controller.on_worker_failed(
                    WorkerFailed(
                        worker_id=wid,
                        node_id=wid,
                        error="connection lost",
                        tasks_in_flight=tuple(a.task_id for a in requeued),
                    ),
                    self.clock(),
                )
                self._maybe_finish()
        finally:
            if pump is not None:
                pump.stop()
                await asyncio.gather(pump.task, return_exceptions=True)
            if self.channels.get(wid) is channel:
                del self.channels[wid]
            channel.close()
            await channel.wait_closed()

    def _may_get_work_later(self, wid: str) -> bool:
        """Whether an idle worker should be parked instead of released.

        Mirrors the threaded runtime: with retries on, a drained worker
        waits for possible requeues (a peer may still die) instead of
        exiting — unless it is isolated or the run is over.
        """
        retry = self.scheduler.retry_policy
        if not (retry.retry_on_worker_loss or retry.retry_on_task_error):
            return False
        if self.scheduler.done or self.run_done.is_set():
            return False
        return not self.controller.fault_tracker.is_isolated(wid)

    async def _serve(self, wid: str, channel: Channel, pump: "_FramePump") -> None:
        while True:
            try:
                message, payload = await pump.get()
            except ChecksumError as err:
                if isinstance(err.frame, TelemetryBatch):
                    # Telemetry is lossy-tolerant: drop the corrupt
                    # batch and keep serving — never a retransmit.
                    self.batches_dropped += 1
                    self.telemetry.metrics.counter("telemetry.batches_dropped").inc()
                    continue
                raise
            now = self.clock()
            if isinstance(message, RequestData):
                assignment = self.scheduler.assignment_in_flight(wid)
                if assignment is not None:
                    # Repeated request: our reply was lost on the wire;
                    # re-send the same assignment (at-least-once).
                    self.reissued += 1
                else:
                    assignment = self.scheduler.next_for(wid)
                    while assignment is None and self._may_get_work_later(wid):
                        await asyncio.sleep(0.02)
                        assignment = self.scheduler.next_for(wid)
                if assignment is None:
                    if self.heartbeats is not None:
                        # Graceful drain: stop watching this worker so
                        # its silence after exit is not a false death.
                        self.heartbeats.forget(wid)
                    await channel.send(NoMoreData(worker_id=wid))
                    await self._drain_telemetry(wid, pump)
                    return
                group = assignment.group
                already = self.sent_files.get(wid, set())
                missing = [n for n in group.file_names if n not in already]
                await channel.send(
                    FileMetadata(
                        task_id=group.index,
                        file_names=group.file_names,
                        sizes=tuple(f.size for f in group.files),
                        transfer_required=bool(missing),
                        attempt=assignment.attempt,
                    )
                )
                for name in missing:
                    await self._send_file(channel, wid, name, task_id=group.index)
            elif isinstance(message, ResendFile):
                t0 = self.clock()
                await self._send_file(
                    channel, wid, message.file_name, task_id=message.task_id
                )
                self.retransmits += 1
                self.telemetry.span_complete(
                    "retransmit",
                    t0,
                    self.clock(),
                    track="control",
                    worker=wid,
                    file=message.file_name,
                    reason=message.reason,
                )
            elif isinstance(message, ExecStatus):
                if not self.scheduler.has_in_flight(wid, message.task_id):
                    # Stale: the heartbeat sweep already declared this
                    # worker dead and requeued the task. Ignore.
                    self.stale_statuses += 1
                    self.controller.log(
                        now, "STALE_STATUS", f"{wid}: task {message.task_id}"
                    )
                    continue
                if message.ok:
                    self.scheduler.report_success(wid, message.task_id)
                    self.completed_count += 1
                    if (
                        self.crash_after_tasks is not None
                        and self.completed_count >= self.crash_after_tasks
                    ):
                        self._crash()
                        return
                else:
                    self.controller.on_worker_error(wid, message.error, now)
                    self.scheduler.report_error(wid, message.task_id, message.error)
                self._observe(sample=False)
                self._maybe_finish()
            elif isinstance(message, TelemetryBatch):
                if self.merger is not None:
                    try:
                        self.merger.add_batch(wid, decode_batch(payload))
                    except ProtocolError:
                        self.batches_dropped += 1
                        self.telemetry.metrics.counter(
                            "telemetry.batches_dropped"
                        ).inc()
            else:
                raise ProtocolError(f"unexpected message from worker: {message.msg_type}")

    async def _drain_telemetry(self, wid: str, pump: "_FramePump") -> None:
        """Collect the worker's final telemetry flush after ``NO_MORE_DATA``.

        A shipping worker sends one last batch and then closes; wait for
        frames until the close (or a bounded silence) so drain-time
        records are not lost to the connection teardown race.
        """
        if self.merger is None:
            return
        while True:
            try:
                message, payload = await pump.get(
                    timeout=max(1.0, 4 * self.observe_interval)
                )
            except ChecksumError as err:
                if isinstance(err.frame, TelemetryBatch):
                    self.batches_dropped += 1
                    self.telemetry.metrics.counter("telemetry.batches_dropped").inc()
                    continue
                return
            except _CONNECTION_ERRORS + (asyncio.TimeoutError,):
                return
            if isinstance(message, TelemetryBatch):
                try:
                    self.merger.add_batch(wid, decode_batch(payload))
                except ProtocolError:
                    self.batches_dropped += 1
                    self.telemetry.metrics.counter("telemetry.batches_dropped").inc()
            # Any other late frame is noise at drain; keep waiting for
            # the close so the final batch is never abandoned.


class _FramePump:
    """Reads frames into a queue so receives are decoupled from reads.

    Two reasons to never ``recv`` directly in a serving loop: (a)
    cancelling ``readexactly`` mid-frame (a receive timeout) would
    desynchronize the stream, while abandoning a queue get is safe; (b)
    liveness must not depend on how busy the consumer is — the master's
    pump records a beat the moment any frame arrives (``on_message``)
    even while the serving loop is staging files or parked waiting for
    work. Checksum and connection errors travel through the queue in
    order; ``swallow``-ed kinds (heartbeats, heartbeat acks) are
    consumed right after the callback and never reach the queue.
    """

    def __init__(
        self,
        channel: Channel,
        on_message: Optional[Callable[[Message], None]] = None,
        swallow: tuple[type, ...] = (Heartbeat,),
    ):
        self.queue: asyncio.Queue = asyncio.Queue()
        self._on_message = on_message
        self._swallow = swallow
        self.task = asyncio.create_task(self._pump(channel))

    async def _pump(self, channel: Channel) -> None:
        while True:
            try:
                item: tuple[Message, bytes] = await channel.recv()
            except ChecksumError as err:
                await self.queue.put(err)
                continue
            except _CONNECTION_ERRORS as err:
                await self.queue.put(err)
                return
            if self._on_message is not None:
                self._on_message(item[0])
            if isinstance(item[0], self._swallow):
                continue
            await self.queue.put(item)

    async def get(self, timeout: float = 0.0) -> tuple[Message, bytes]:
        if timeout > 0:
            item = await asyncio.wait_for(self.queue.get(), timeout)
        else:
            item = await self.queue.get()
        if isinstance(item, BaseException):
            raise item
        return item

    def stop(self) -> None:
        self.task.cancel()


def _write_payload(scratch_dir: str, file_name: str, payload: bytes) -> None:
    """Spill one received file to worker scratch, synchronously.

    Deliberately NOT offloaded to an executor: spills are bounded by
    one frame, and yielding between a staged frame and the worker's
    next request reorders task assignment across workers — the fault
    tests pin which worker is handed which task, and the paper's
    protocol assumes a worker drains each push before asking for more.
    """
    with open(os.path.join(scratch_dir, file_name), "wb") as fh:  # frieda: allow[async-blocking] -- deliberate: frame-sized spill; yielding here reorders task assignment (see docstring)
        fh.write(payload)


async def _heartbeat_loop(
    channel: Channel,
    wid: str,
    interval: float,
    wclock: Callable[[], float],
    rtt_box: dict[str, float],
) -> None:
    """Beat at ``interval``, stamping each beat with the worker-clock
    send time (for master-side clock alignment) and the most recent
    acked round trip (for the master's RTT histogram)."""
    seq = 0
    try:
        while True:
            await channel.send(
                Heartbeat(
                    worker_id=wid,
                    seq=seq,
                    sent_at=wclock(),
                    rtt=rtt_box.get("rtt", -1.0),
                )
            )
            seq += 1
            await asyncio.sleep(interval)
    except _CONNECTION_ERRORS + (OSError,):
        return


async def _worker_client(
    wid: str,
    host: str,
    port: int,
    command: CommandTemplate,
    scratch_dir: str,
    records: list[TaskRecord],
    *,
    crash_on_task: Optional[int] = None,
    hang_on_task: Optional[int] = None,
    hang_release: asyncio.Event | None = None,
    crash_before_register: bool = False,
    heartbeat_interval: float = 0.0,
    reply_timeout: float = 0.0,
    max_payload_retries: int = 3,
    fault_script: FaultScript | None = None,
    telemetry_interval: float = 0.25,
) -> str:
    """One worker: register, then the request/execute/report loop.

    Returns how the worker ended: ``"completed"`` (drained),
    ``"crashed"`` (injected crash), ``"hung"`` (injected hang,
    released at end of run), or ``"disconnected"`` (master/connection
    loss — handled cleanly, never raises through the engine).

    When the master's ``CONNECTION_ACK`` asks for telemetry, the worker
    runs a local recording hub on its *own* clock and ships batches on
    ``telemetry_interval``, after every completed task, and at drain.
    """
    os.makedirs(scratch_dir, exist_ok=True)  # frieda: allow[async-blocking] -- one-time mkdir before any frame is in flight
    logic = WorkerLogic(wid, wid, command, scratch_dir=scratch_dir)
    reader, writer = await asyncio.open_connection(host, port)
    channel: Channel = (
        FaultyChannel(reader, writer, fault_script, "worker")
        if fault_script is not None
        else Channel(reader, writer)
    )
    beat_task: asyncio.Task | None = None
    pump: _FramePump | None = None
    flush_task: asyncio.Task | None = None
    # The worker's own clock base — deliberately NOT the master's. All
    # local telemetry and heartbeat ``sent_at`` stamps use this clock;
    # the master aligns them from the heartbeat pairs at merge time.
    w_base = time.monotonic()

    def wclock() -> float:
        return time.monotonic() - w_base

    wtel: Telemetry = NULL_TELEMETRY
    shipper: TelemetryShipper | None = None
    rtt_box: dict[str, float] = {}
    track = f"worker:{wid}"

    async def ship() -> None:
        if shipper is None:
            return
        batch = shipper.take_batch()
        if batch is None:
            return
        blob = encode_batch(batch)
        await channel.send(telemetry_batch_message(wid, batch["seq"], blob), blob)

    async def flush_loop() -> None:
        try:
            while True:
                await asyncio.sleep(telemetry_interval)
                await ship()
        except _CONNECTION_ERRORS + (OSError,):
            return

    async def go_hang() -> str:
        # A wedged process: beats stop, the connection stays open, no
        # further frames are sent. Released when the run finishes.
        if beat_task is not None:
            beat_task.cancel()
        if hang_release is not None:
            await hang_release.wait()
        return "hung"

    try:
        if crash_before_register:
            return "crashed"  # died before REGISTER_WORKER ever went out
        await channel.send(RegisterWorker(worker_id=wid, node_id=wid, cores=1))
        ack, _ = await channel.recv()
        if not isinstance(ack, ConnectionAck) or not ack.accepted:
            reason = getattr(ack, "reason", "") or "unknown"
            raise ProtocolError(f"registration rejected for {wid}: {reason}")
        if ack.ship_telemetry:
            # Local recording hub on the worker's own clock; the run
            # label is replaced by the master's when batches are folded.
            wtel = Telemetry(clock=wclock, record=True, run=wid)
            shipper = TelemetryShipper(wtel)
            flush_task = asyncio.create_task(flush_loop())
        if heartbeat_interval > 0:
            beat_task = asyncio.create_task(
                _heartbeat_loop(channel, wid, heartbeat_interval, wclock, rtt_box)
            )

        def on_ack(message: Message) -> None:
            # The master echoes our send stamp; the difference on our
            # own clock is a clean round trip (no cross-clock math).
            if isinstance(message, HeartbeatAck) and message.sent_at >= 0:
                rtt_box["rtt"] = wclock() - message.sent_at

        pump = _FramePump(channel, on_message=on_ack, swallow=(Heartbeat, HeartbeatAck))
        loop = asyncio.get_running_loop()
        resend_counts: dict[str, int] = {}

        async def recv_checked(
            expect_files_for: tuple[str, ...] = (), task_id: int = -1
        ) -> tuple[Message, bytes]:
            """Receive one frame, recovering from corrupt or lost ones.

            A checksum mismatch re-requests the corrupt file; silence
            past ``reply_timeout`` re-requests every still-missing file
            of the current task. Both are bounded per file.
            """
            while True:
                try:
                    return await pump.get(reply_timeout)
                except ChecksumError as err:
                    frame = err.frame
                    assert isinstance(frame, FileData)
                    n = resend_counts.get(frame.file_name, 0) + 1
                    resend_counts[frame.file_name] = n
                    if n > max_payload_retries:
                        raise ProtocolError(
                            f"giving up on {frame.file_name!r} after "
                            f"{max_payload_retries} retransmits"
                        ) from err
                    await channel.send(
                        ResendFile(
                            worker_id=wid,
                            file_name=frame.file_name,
                            task_id=frame.task_id,
                        )
                    )
                except asyncio.TimeoutError:
                    missing = logic.missing_files(expect_files_for)
                    if not missing:
                        raise
                    for name in missing:
                        n = resend_counts.get(name, 0) + 1
                        resend_counts[name] = n
                        if n > max_payload_retries:
                            raise ProtocolError(
                                f"giving up on {name!r} after "
                                f"{max_payload_retries} re-requests"
                            ) from None
                        await channel.send(
                            ResendFile(
                                worker_id=wid,
                                file_name=name,
                                task_id=task_id,
                                reason="reply timeout",
                            )
                        )

        requested = False
        request_retries = 0
        while True:
            if not requested:
                await channel.send(RequestData(worker_id=wid))
                requested = True
                request_retries = 0
            try:
                message, payload = await recv_checked()
            except asyncio.TimeoutError:
                # No reply at all: our request (or its answer) was lost.
                request_retries += 1
                if request_retries > max_payload_retries:
                    raise ProtocolError(
                        f"master unresponsive after {max_payload_retries} re-requests"
                    ) from None
                await channel.send(RequestData(worker_id=wid))
                continue
            if isinstance(message, NoMoreData):
                # Final flush: the master holds the connection open
                # until this batch (or the close) arrives.
                await ship()
                return "completed"
            if isinstance(message, FileData):
                # Unsolicited staging push — store it; the outstanding
                # REQUEST_DATA is still pending, so don't re-request.
                if crash_on_task is not None and message.task_id == crash_on_task:
                    channel.close()
                    return "crashed"
                if hang_on_task is not None and message.task_id == hang_on_task:
                    return await go_hang()
                _write_payload(scratch_dir, message.file_name, payload)
                logic.receive_file(message.file_name)
                continue
            if not isinstance(message, FileMetadata):
                raise ProtocolError(f"unexpected message at worker: {message.msg_type}")
            if crash_on_task is not None and crash_on_task in (message.task_id, ANY_TASK):
                channel.close()
                return "crashed"
            if hang_on_task is not None and hang_on_task in (message.task_id, ANY_TASK):
                return await go_hang()
            task_span = wtel.span(
                "task", track=track, task=message.task_id, attempt=message.attempt
            )
            # Wait until every input for this task has arrived.
            if logic.missing_files(message.file_names):
                fetch_span = wtel.span(
                    "fetch", parent=task_span, track=track, task=message.task_id
                )
                while logic.missing_files(message.file_names):
                    data_msg, payload = await recv_checked(
                        expect_files_for=message.file_names, task_id=message.task_id
                    )
                    if not isinstance(data_msg, FileData):
                        raise ProtocolError("expected FILE_DATA for missing inputs")
                    _write_payload(scratch_dir, data_msg.file_name, payload)
                    logic.receive_file(data_msg.file_name)
                fetch_span.end()
            start = time.monotonic()
            logic.begin_task(message.task_id, message.file_names, start)
            paths = [logic.resolve_path(n) for n in message.file_names]
            exec_span = wtel.span(
                "exec", parent=task_span, track=track, task=message.task_id
            )
            ok, error = True, ""
            try:
                # Run the program off the event loop.
                await loop.run_in_executor(None, lambda: command.call(paths))
            except Exception as exc:
                ok, error = False, f"{type(exc).__name__}: {exc}"
            end = time.monotonic()
            exec_span.end(ok=ok)
            task_span.end(ok=ok)
            wtel.metrics.histogram("task.exec_seconds").observe(end - start)
            wtel.metrics.counter("worker.tasks", ok=ok).inc()
            logic.finish_task(end, ok=ok, error=error)
            records.append(
                TaskRecord(
                    task_id=message.task_id,
                    worker_id=wid,
                    node_id=wid,
                    start=start,
                    end=end,
                    ok=ok,
                    attempt=message.attempt,
                    error=error,
                )
            )
            await channel.send(
                ExecStatus(
                    worker_id=wid,
                    task_id=message.task_id,
                    ok=ok,
                    duration=end - start,
                    error=error,
                )
            )
            await ship()
            requested = False
    except _CONNECTION_ERRORS:
        # Master loss (or our own injected truncate): unwind cleanly —
        # the engine accounts stranded tasks as lost, no traceback.
        return "disconnected"
    finally:
        if flush_task is not None:
            flush_task.cancel()
            await asyncio.gather(flush_task, return_exceptions=True)
        if beat_task is not None:
            beat_task.cancel()
            await asyncio.gather(beat_task, return_exceptions=True)
        if pump is not None:
            pump.stop()
            await asyncio.gather(pump.task, return_exceptions=True)
        channel.close()
        await channel.wait_closed()
