"""Threaded in-process FRIEDA engine: real programs, real files.

The execution plane is a pool of worker threads pulling from the shared
:class:`~repro.core.scheduler.MasterScheduler` (guarded by one lock —
the scheduler is the "master"). Data management is real: under the
remote strategies input files are *copied* into per-worker scratch
directories (staged up front or lazily per task, per the strategy), so
a command only ever sees paths its worker owns — exactly the worker-
local view workers have on the testbed.

Programs are either Python callables (called with the input paths) or
shell templates (run via ``subprocess``). A callable raising or a
command exiting non-zero is a task error, reported to the controller
and subject to the configured retry policy / isolation threshold.
"""

from __future__ import annotations

# frieda: allow-file[wall-clock] -- real execution plane: measuring real
# elapsed time (makespan, transfer, busy seconds) is this engine's job.

import os
import shutil
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.commands import CommandTemplate
from repro.core.controller import ControllerLogic
from repro.core.fault import RetryPolicy
from repro.core.framework import RunOutcome, TaskRecord
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind
from repro.core.worker import WorkerLogic
from repro.data.files import DataFile, Dataset
from repro.data.partition import PartitionScheme
from repro.errors import ConfigurationError
from repro.telemetry.metrics import Histogram
from repro.telemetry.spans import NULL_TELEMETRY, SpanHandle, Telemetry


def _as_dataset(inputs: Dataset | Sequence[str]) -> Dataset:
    if isinstance(inputs, Dataset):
        return inputs
    files = []
    for path in inputs:
        if not os.path.isfile(path):
            raise ConfigurationError(f"input file not found: {path}")
        files.append(
            DataFile(name=os.path.basename(path), size=os.path.getsize(path), path=path)
        )
    return Dataset("inputs", files)


@dataclass
class _WorkerOutcome:
    records: list[TaskRecord]
    transfer_seconds: float
    busy_seconds: float


class ThreadedEngine:
    """Real threaded master/worker execution on this machine."""

    def __init__(
        self,
        num_workers: int = 4,
        *,
        scratch_root: Optional[str] = None,
        command_timeout: float = 300.0,
    ):
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.scratch_root = scratch_root
        self.command_timeout = command_timeout

    def run(
        self,
        inputs: Dataset | Sequence[str],
        *,
        command: CommandTemplate | Callable[..., object] | str,
        strategy: StrategyKind | str = StrategyKind.REAL_TIME,
        grouping: PartitionScheme | str = PartitionScheme.SINGLE,
        grouping_options: dict | None = None,
        retry_policy: RetryPolicy | None = None,
        isolate_after: int = 1,
        telemetry: Telemetry | None = None,
    ) -> RunOutcome:
        """Run a data-parallel program over real input files.

        ``telemetry`` attaches the same hub the simulated plane uses;
        spans are stamped with wall seconds relative to run start so a
        real run's trace opens in the same viewer as a simulated one.
        """
        if callable(command) and not isinstance(command, CommandTemplate):
            command = CommandTemplate(function=command)
        elif isinstance(command, str):
            command = CommandTemplate(template=command)
        dataset = _as_dataset(inputs)
        controller = ControllerLogic(
            strategy=strategy,
            grouping=grouping,
            grouping_options=grouping_options,
            command=command,
            multicore=False,
            retry_policy=retry_policy,
            isolate_after=isolate_after,
        )
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        t_base = time.monotonic()
        tel.bind(
            clock=lambda: time.monotonic() - t_base,
            run=f"{dataset.name}:{controller.strategy.kind.value}",
        )
        groups = controller.generate_partitions(dataset)
        scheduler = MasterScheduler(
            groups,
            controller.strategy,
            retry_policy=retry_policy,
            fault_tracker=controller.fault_tracker,
            metrics=tel.metrics,
        )
        # One condition guards all scheduler state: workers that find no
        # runnable task sleep on it and are woken when a peer reports an
        # outcome (the only transition that can create new work).
        wakeup = threading.Condition()
        worker_ids = [f"local:{i}" for i in range(self.num_workers)]
        for wid in worker_ids:
            scheduler.register_worker(wid)
        scheduler.partition_among()

        # Histogram created up front: the registry's get-or-create dict is
        # not thread-safe, so worker threads only ever *observe*.
        h_exec = tel.metrics.histogram("task.exec_seconds")
        run_span = tel.start_span(
            "run",
            track="control",
            dataset=dataset.name,
            strategy=controller.strategy.kind.value,
            workers=self.num_workers,
        )
        started = time.monotonic()
        with tempfile.TemporaryDirectory(dir=self.scratch_root, prefix="frieda-") as root:
            logics = {
                wid: WorkerLogic(
                    wid, "localhost", command, scratch_dir=os.path.join(root, wid.replace(":", "_"))
                )
                for wid in worker_ids
            }
            for logic in logics.values():
                os.makedirs(logic.scratch_dir, exist_ok=True)

            stage_seconds = 0.0
            if controller.strategy.staged_before_execution or controller.strategy.data_local_to_workers:
                stage_span = tel.start_span(
                    "staging", parent=run_span, track="control", files=len(dataset)
                )
                t0 = time.monotonic()
                self._stage_all(controller, scheduler, logics, dataset)
                stage_seconds = time.monotonic() - t0
                stage_span.end()

            outcomes: dict[str, _WorkerOutcome] = {}
            threads = [
                threading.Thread(
                    target=self._worker_main,
                    args=(
                        logics[wid],
                        scheduler,
                        controller,
                        wakeup,
                        dataset,
                        outcomes,
                        tel,
                        run_span,
                        h_exec,
                    ),
                    name=f"frieda-{wid}",
                    daemon=True,
                )
                for wid in worker_ids
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        makespan = time.monotonic() - started
        records = [r for o in outcomes.values() for r in o.records]
        records.sort(key=lambda r: (r.start, r.task_id))
        summary = scheduler.summary()
        run_span.end(tasks=summary["completed"])
        lazy_transfer = sum(o.transfer_seconds for o in outcomes.values())
        return RunOutcome(
            strategy=controller.strategy.kind,
            grouping=controller.grouping,
            makespan=makespan,
            transfer_time=stage_seconds + lazy_transfer,
            execution_time=sum(o.busy_seconds for o in outcomes.values()),
            tasks_total=summary["total"],
            tasks_completed=summary["completed"],
            tasks_failed=summary["failed"],
            tasks_lost=summary["lost"],
            bytes_transferred=float(
                sum(g.total_size for g in groups)
                if not controller.strategy.data_local_to_workers
                else 0
            ),
            task_records=records,
            worker_busy={wid: o.busy_seconds for wid, o in outcomes.items()},
            controller_events=list(controller.events),
        )

    # -- data management -----------------------------------------------------
    def _stage_all(
        self,
        controller: ControllerLogic,
        scheduler: MasterScheduler,
        logics: dict[str, WorkerLogic],
        dataset: Dataset,
    ) -> None:
        """Up-front staging: copy each worker's data into its scratch.

        ``replicate_all`` (common-data mode) copies everything to every
        worker; otherwise each worker receives its planned chunk.
        ``data_local_to_workers`` marks files as resident without
        copying (the VM-image-baked case): workers use original paths.
        """
        strategy = controller.strategy
        for wid, logic in logics.items():
            if strategy.data_local_to_workers:
                for file in dataset:
                    logic.receive_file(file.name)
                    if file.path is not None:
                        logic.path_overrides[file.name] = file.path
                continue
            wanted: list[DataFile] = []
            if strategy.replicate_all:
                wanted = list(dataset)
            else:
                for group in scheduler.planned_chunk(wid):
                    wanted.extend(group.files)
            for file in wanted:
                self._copy_to_worker(file, logic)

    def _copy_to_worker(self, file: DataFile, logic: WorkerLogic) -> None:
        if logic.worker_id and file.name in logic.local_files:
            return
        if file.path is None:
            raise ConfigurationError(
                f"file {file.name!r} has no real path; the threaded engine "
                "needs on-disk inputs"
            )
        shutil.copy2(file.path, os.path.join(logic.scratch_dir, file.name))
        logic.receive_file(file.name)

    # -- worker thread ----------------------------------------------------------
    def _worker_main(
        self,
        logic: WorkerLogic,
        scheduler: MasterScheduler,
        controller: ControllerLogic,
        wakeup: threading.Condition,
        dataset: Dataset,
        outcomes: dict[str, _WorkerOutcome],
        tel: Telemetry = NULL_TELEMETRY,
        run_span: SpanHandle | None = None,
        h_exec: Histogram | None = None,
    ) -> None:
        wid = logic.worker_id
        records: list[TaskRecord] = []
        transfer_seconds = 0.0
        busy_seconds = 0.0
        retry = scheduler.retry_policy
        while True:
            with wakeup:
                if scheduler.done:
                    break
                assignment = scheduler.next_for(logic.worker_id)
                if assignment is None:
                    if not (retry.retry_on_worker_loss or retry.retry_on_task_error):
                        break
                    # Idle, but a peer's failure may requeue work for us:
                    # sleep until someone reports an outcome. The timeout
                    # is a lost-wakeup safety net, not a poll interval.
                    wakeup.wait(timeout=1.0)
                    continue
            group = assignment.group
            task_span = tel.start_span(
                "task",
                parent=run_span,
                track=f"worker:{wid}",
                task=group.index,
                worker=wid,
                attempt=assignment.attempt,
            )
            # Lazy staging (real-time): copy missing inputs now.
            missing = logic.missing_files(group.file_names)
            if missing and not controller.strategy.data_local_to_workers:
                fetch_at = tel.clock()
                t0 = time.monotonic()
                for file in group.files:
                    if file.name in missing:
                        self._copy_to_worker(file, logic)
                transfer_seconds += time.monotonic() - t0
                tel.span_complete(
                    "fetch",
                    fetch_at,
                    tel.clock(),
                    parent=task_span,
                    track=f"worker:{wid}",
                    worker=wid,
                    task=group.index,
                    files=len(missing),
                )
            exec_at = tel.clock()
            start = time.monotonic()
            execution = logic.begin_task(group.index, group.file_names, start)
            ok, error = self._execute(logic, group.file_names)
            end = time.monotonic()
            logic.finish_task(end, ok=ok, error=error)
            busy_seconds += end - start
            tel.span_complete(
                "exec",
                exec_at,
                tel.clock(),
                parent=task_span,
                track=f"worker:{wid}",
                worker=wid,
                node="localhost",
                task=group.index,
            )
            task_span.end(ok=ok)
            with wakeup:
                if ok:
                    scheduler.report_success(logic.worker_id, group.index)
                else:
                    controller.on_worker_error(logic.worker_id, error)
                    scheduler.report_error(logic.worker_id, group.index, error)
                # Histograms mutate shared buckets — observe under the
                # same lock that guards the scheduler.
                if h_exec is not None:
                    h_exec.observe(end - start)
                # Every outcome can finish the run or requeue a task:
                # wake idle peers so they re-check the scheduler.
                wakeup.notify_all()
            records.append(
                TaskRecord(
                    task_id=group.index,
                    worker_id=logic.worker_id,
                    node_id="localhost",
                    start=start,
                    end=end,
                    ok=ok,
                    attempt=assignment.attempt,
                    error=error,
                )
            )
        with wakeup:
            # This worker is leaving (done, or out of work with retries
            # off): wake any sleeper so it re-checks the exit condition.
            wakeup.notify_all()
        outcomes[logic.worker_id] = _WorkerOutcome(records, transfer_seconds, busy_seconds)

    def _execute(self, logic: WorkerLogic, file_names: Sequence[str]) -> tuple[bool, str]:
        paths = [logic.resolve_path(n) for n in file_names]
        command = logic.command
        try:
            if command is not None and command.function is not None:
                command.call(paths)
                return True, ""
            rendered = command.build(paths) if command is not None else ""
            if not rendered:
                return True, ""
            proc = subprocess.run(
                rendered,
                shell=True,
                capture_output=True,
                timeout=self.command_timeout,
                text=True,
            )
            if proc.returncode != 0:
                return False, (proc.stderr or f"exit code {proc.returncode}").strip()[:500]
            return True, ""
        except subprocess.TimeoutExpired:
            return False, f"command timed out after {self.command_timeout}s"
        except Exception as exc:  # task errors must not kill the worker
            return False, f"{type(exc).__name__}: {exc}"
