"""Threaded in-process FRIEDA engine: real programs, real files.

The execution plane is a pool of worker threads pulling from the shared
:class:`~repro.core.scheduler.MasterScheduler` (guarded by one lock —
the scheduler is the "master"). Data management is real: under the
remote strategies input files are *copied* into per-worker scratch
directories (staged up front or lazily per task, per the strategy), so
a command only ever sees paths its worker owns — exactly the worker-
local view workers have on the testbed.

Programs are either Python callables (called with the input paths) or
shell templates (run via ``subprocess``). A callable raising or a
command exiting non-zero is a task error, reported to the controller
and subject to the configured retry policy / isolation threshold.
"""

from __future__ import annotations

# frieda: allow-file[wall-clock] -- real execution plane: measuring real
# elapsed time (makespan, transfer, busy seconds) is this engine's job.

import os
import shutil
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.commands import CommandTemplate
from repro.core.controller import ControllerLogic
from repro.core.fault import RetryPolicy
from repro.core.framework import RunOutcome, TaskRecord
from repro.core.identity import RejoinIdMinter, scratch_name
from repro.core.messages import WorkerFailed
from repro.core.monitoring import HeartbeatConfig, HeartbeatMonitor, Liveness
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind
from repro.core.worker import WorkerLogic
from repro.data.files import DataFile, Dataset
from repro.data.partition import PartitionScheme
from repro.errors import ConfigurationError
from repro.runtime.faults import ANY_TASK
from repro.telemetry.metrics import Histogram
from repro.telemetry.slo import SloEvaluator, SloProbe
from repro.telemetry.spans import NULL_TELEMETRY, SpanHandle, Telemetry


def _as_dataset(inputs: Dataset | Sequence[str]) -> Dataset:
    if isinstance(inputs, Dataset):
        return inputs
    files = []
    for path in inputs:
        if not os.path.isfile(path):
            raise ConfigurationError(f"input file not found: {path}")
        files.append(
            DataFile(name=os.path.basename(path), size=os.path.getsize(path), path=path)
        )
    return Dataset("inputs", files)


@dataclass
class _WorkerOutcome:
    records: list[TaskRecord]
    transfer_seconds: float
    busy_seconds: float


class ThreadedEngine:
    """Real threaded master/worker execution on this machine."""

    def __init__(
        self,
        num_workers: int = 4,
        *,
        scratch_root: Optional[str] = None,
        command_timeout: float = 300.0,
        heartbeat_interval: float = 0.0,
        heartbeat_config: HeartbeatConfig | None = None,
    ):
        """``heartbeat_interval`` > 0 turns on thread liveness: workers
        beat between tasks and a watchdog on the main thread sweeps a
        :class:`~repro.core.monitoring.HeartbeatMonitor`, declaring a
        hung worker dead (a thread that *exits* abruptly is detected
        directly, beats or not)."""
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.scratch_root = scratch_root
        self.command_timeout = command_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_config = heartbeat_config

    def run(
        self,
        inputs: Dataset | Sequence[str],
        *,
        command: CommandTemplate | Callable[..., object] | str,
        strategy: StrategyKind | str = StrategyKind.REAL_TIME,
        grouping: PartitionScheme | str = PartitionScheme.SINGLE,
        grouping_options: dict | None = None,
        retry_policy: RetryPolicy | None = None,
        isolate_after: int = 1,
        crash_worker_on_task: dict[str, int] | None = None,
        hang_worker_on_task: dict[str, int] | None = None,
        respawn_after_crash: dict[str, float] | None = None,
        telemetry: Telemetry | None = None,
        slo_probes: Sequence[SloProbe] = (),
    ) -> RunOutcome:
        """Run a data-parallel program over real input files.

        ``telemetry`` attaches the same hub the simulated plane uses;
        spans are stamped with wall seconds relative to run start so a
        real run's trace opens in the same viewer as a simulated one.
        ``slo_probes`` are evaluated on watchdog ticks over the live
        metrics (edge-triggered ``slo.breach`` / ``slo.recovered``
        events), with a final evaluation when the run resolves.

        Chaos hooks (mirroring :class:`~repro.runtime.tcp.TcpEngine`):
        ``crash_worker_on_task`` maps a worker id to a task id — the
        worker thread dies without reporting when it draws that task
        (:data:`~repro.runtime.faults.ANY_TASK` = its first draw);
        ``hang_worker_on_task`` wedges the thread instead (alive, no
        beats) and requires ``heartbeat_interval`` > 0.
        ``respawn_after_crash`` maps a worker id to a delay: that many
        seconds after its crash is detected, a replacement thread joins
        under a fresh id minted by the shared rejoin policy
        (``local:0`` → ``local:0:r1``), mirroring the TCP engine.
        """
        if callable(command) and not isinstance(command, CommandTemplate):
            command = CommandTemplate(function=command)
        elif isinstance(command, str):
            command = CommandTemplate(template=command)
        crash_map = crash_worker_on_task or {}
        hang_map = hang_worker_on_task or {}
        respawn_map = respawn_after_crash or {}
        if hang_map and self.heartbeat_interval <= 0:
            raise ConfigurationError(
                "hung workers are undetectable without heartbeats: "
                "set ThreadedEngine(heartbeat_interval=...) > 0"
            )
        dataset = _as_dataset(inputs)
        controller = ControllerLogic(
            strategy=strategy,
            grouping=grouping,
            grouping_options=grouping_options,
            command=command,
            multicore=False,
            retry_policy=retry_policy,
            isolate_after=isolate_after,
        )
        if telemetry is not None:
            tel = telemetry
        elif slo_probes:
            # Probes resolve against live metrics; a private
            # non-recording hub keeps the gauges real without paying
            # for span retention.
            tel = Telemetry()
        else:
            tel = NULL_TELEMETRY
        t_base = time.monotonic()
        clock = lambda: time.monotonic() - t_base  # noqa: E731
        tel.bind(
            clock=clock,
            run=f"{dataset.name}:{controller.strategy.kind.value}",
        )
        groups = controller.generate_partitions(dataset)
        scheduler = MasterScheduler(
            groups,
            controller.strategy,
            retry_policy=retry_policy,
            fault_tracker=controller.fault_tracker,
            metrics=tel.metrics,
            clock=clock,
        )
        slo = SloEvaluator(tuple(slo_probes), tel) if slo_probes else None
        # One condition guards all scheduler state: workers that find no
        # runnable task sleep on it and are woken when a peer reports an
        # outcome (the only transition that can create new work).
        wakeup = threading.Condition()
        worker_ids = [f"local:{i}" for i in range(self.num_workers)]
        for wid in worker_ids:
            scheduler.register_worker(wid)
        scheduler.partition_among()

        # Histogram created up front: the registry's get-or-create dict is
        # not thread-safe, so worker threads only ever *observe*.
        h_exec = tel.metrics.histogram("task.exec_seconds")
        run_span = tel.start_span(
            "run",
            track="control",
            dataset=dataset.name,
            strategy=controller.strategy.kind.value,
            workers=self.num_workers,
        )
        started = time.monotonic()
        with tempfile.TemporaryDirectory(dir=self.scratch_root, prefix="frieda-") as root:
            logics = {
                wid: WorkerLogic(
                    wid, "localhost", command, scratch_dir=os.path.join(root, wid.replace(":", "_"))
                )
                for wid in worker_ids
            }
            for logic in logics.values():
                os.makedirs(logic.scratch_dir, exist_ok=True)

            stage_seconds = 0.0
            if controller.strategy.staged_before_execution or controller.strategy.data_local_to_workers:
                stage_span = tel.start_span(
                    "staging", parent=run_span, track="control", files=len(dataset)
                )
                t0 = time.monotonic()
                self._stage_all(controller, scheduler, logics, dataset)
                stage_seconds = time.monotonic() - t0
                stage_span.end()

            monitor = (
                HeartbeatMonitor(self.heartbeat_config, metrics=tel.metrics)
                if self.heartbeat_interval > 0
                else None
            )
            hang_release = threading.Event()
            status: dict[str, str] = {}
            outcomes: dict[str, _WorkerOutcome] = {}
            threads = {
                wid: threading.Thread(
                    target=self._worker_main,
                    args=(
                        logics[wid],
                        scheduler,
                        controller,
                        wakeup,
                        dataset,
                        outcomes,
                        tel,
                        run_span,
                        h_exec,
                    ),
                    kwargs=dict(
                        monitor=monitor,
                        clock=clock,
                        crash_on_task=crash_map.get(wid),
                        hang_on_task=hang_map.get(wid),
                        hang_release=hang_release,
                        status=status,
                    ),
                    name=f"frieda-{wid}",
                    daemon=True,
                )
                for wid in worker_ids
            }
            minter = RejoinIdMinter()

            def spawn_replacement(dead_wid: str) -> str:
                """A crashed worker rejoins under a fresh minted id —
                the same ``base:rN`` policy the TCP engine applies."""
                fresh = minter.mint(dead_wid)
                logic = WorkerLogic(
                    fresh,
                    "localhost",
                    command,
                    scratch_dir=os.path.join(root, scratch_name(fresh)),
                )
                os.makedirs(logic.scratch_dir, exist_ok=True)
                if controller.strategy.data_local_to_workers:
                    for file in dataset:
                        logic.receive_file(file.name)
                        if file.path is not None:
                            logic.path_overrides[file.name] = file.path
                logics[fresh] = logic
                thread = threading.Thread(
                    target=self._worker_main,
                    args=(
                        logic, scheduler, controller, wakeup, dataset,
                        outcomes, tel, run_span, h_exec,
                    ),
                    kwargs=dict(
                        monitor=monitor,
                        clock=clock,
                        hang_release=hang_release,
                        status=status,
                    ),
                    name=f"frieda-{fresh}",
                    daemon=True,
                )
                with wakeup:
                    scheduler.register_worker(fresh)
                    if monitor is not None:
                        monitor.beat(fresh, clock())
                status[fresh] = "running"
                threads[fresh] = thread
                tel.event("node.respawned", fresh, track="control")
                thread.start()
                return fresh

            for wid in worker_ids:
                if monitor is not None:
                    monitor.beat(wid, clock())
                status[wid] = "running"
                threads[wid].start()
            self._watchdog(
                threads, scheduler, controller, wakeup, monitor, clock, status,
                hang_release, tel, slo,
                respawn_map=respawn_map, spawn_replacement=spawn_replacement,
            )
        if slo is not None:
            # Final look at the fully settled registry.
            slo.evaluate(clock())
        makespan = time.monotonic() - started
        records = [r for o in outcomes.values() for r in o.records]
        records.sort(key=lambda r: (r.start, r.task_id))
        summary = scheduler.summary()
        run_span.end(tasks=summary["completed"])
        lazy_transfer = sum(o.transfer_seconds for o in outcomes.values())
        return RunOutcome(
            strategy=controller.strategy.kind,
            grouping=controller.grouping,
            makespan=makespan,
            transfer_time=stage_seconds + lazy_transfer,
            execution_time=sum(o.busy_seconds for o in outcomes.values()),
            tasks_total=summary["total"],
            tasks_completed=summary["completed"],
            tasks_failed=summary["failed"],
            tasks_lost=summary["lost"],
            bytes_transferred=float(
                sum(g.total_size for g in groups)
                if not controller.strategy.data_local_to_workers
                else 0
            ),
            task_records=records,
            worker_busy={wid: o.busy_seconds for wid, o in outcomes.items()},
            controller_events=list(controller.events),
            extra={
                "slo_breaches": (
                    [(b.probe, b.signal, b.value, b.threshold) for b in slo.breaches]
                    if slo
                    else []
                ),
            },
        )

    # -- supervision ---------------------------------------------------------
    def _watchdog(
        self,
        threads: dict[str, threading.Thread],
        scheduler: MasterScheduler,
        controller: ControllerLogic,
        wakeup: threading.Condition,
        monitor: HeartbeatMonitor | None,
        clock: Callable[[], float],
        status: dict[str, str],
        hang_release: threading.Event,
        tel: Telemetry,
        slo: SloEvaluator | None = None,
        respawn_map: dict[str, float] | None = None,
        spawn_replacement: Callable[[str], str] | None = None,
    ) -> None:
        """Replace the blind ``join()`` loop: watch for worker deaths.

        Two detection paths, mirroring the TCP master: a thread that
        *exits* abruptly (injected crash) is the broken-connection twin
        and is reported immediately; a thread that stops beating while
        still alive (injected hang) is declared dead by the heartbeat
        sweep. Both feed the same ``worker_lost`` → requeue → isolate
        path, then idle peers are woken to absorb the requeued work.
        """
        handled: set[str] = set()
        respawn_map = respawn_map or {}
        due_respawns: list[tuple[float, str]] = []

        def report_loss(wid: str, reason: str) -> None:
            handled.add(wid)
            tel.event("node.declared_dead", wid, track="control")
            with wakeup:
                controller.log(clock(), "NODE_DECLARED_DEAD", f"{wid}: {reason}")
                requeued = scheduler.worker_lost(wid, reason)
                controller.on_worker_failed(
                    WorkerFailed(
                        worker_id=wid,
                        node_id="localhost",
                        error=reason,
                        tasks_in_flight=tuple(a.task_id for a in requeued),
                    ),
                    clock(),
                )
                wakeup.notify_all()

        interval = self.heartbeat_interval if monitor is not None else 0.02
        # Queue depth is time-sampled (not per-event) so trace size scales
        # with run length, not task count; SLOs ride the same cadence.
        sample_every = max(interval, 0.25)
        last_sample = clock() - sample_every
        while True:
            now = clock()
            if now - last_sample >= sample_every:
                last_sample = now
                if tel.record:
                    with wakeup:
                        depth = scheduler.pending_count
                    tel.event("queue.depth", depth, track="control")
                if slo is not None:
                    with wakeup:
                        slo.evaluate(now)
            for wid, thread in list(threads.items()):
                if thread.is_alive() or wid in handled:
                    continue
                if status.get(wid) == "crashed":
                    # Abrupt thread death — the connection-loss twin.
                    if monitor is not None:
                        with wakeup:
                            monitor.forget(wid)
                    report_loss(wid, "worker thread died")
                    if wid in respawn_map and spawn_replacement is not None:
                        due_respawns.append((now + respawn_map[wid], wid))
                elif monitor is not None:
                    # Graceful drain: silence after exit is not death.
                    handled.add(wid)
                    with wakeup:
                        monitor.forget(wid)
            if monitor is not None:
                with wakeup:
                    swept = monitor.sweep(clock())
                for wid, state in swept.items():
                    if state is Liveness.DEAD and wid not in handled:
                        report_loss(wid, "missed heartbeats")
            if due_respawns:
                with wakeup:
                    resolved = scheduler.done
                if resolved:
                    due_respawns.clear()
                else:
                    ready = [d for d in due_respawns if d[0] <= now]
                    due_respawns = [d for d in due_respawns if d[0] > now]
                    for _due, wid in ready:
                        spawn_replacement(wid)
            with wakeup:
                if scheduler.done:
                    # Run resolved: release wedged threads so they exit.
                    hang_release.set()
                    wakeup.notify_all()
            if not any(t.is_alive() for t in threads.values()) and not due_respawns:
                break
            time.sleep(min(interval, 0.05))  # frieda: allow[real-sleep] -- watchdog pacing on real threads
        for thread in threads.values():
            thread.join(timeout=1.0)

    # -- data management -----------------------------------------------------
    def _stage_all(
        self,
        controller: ControllerLogic,
        scheduler: MasterScheduler,
        logics: dict[str, WorkerLogic],
        dataset: Dataset,
    ) -> None:
        """Up-front staging: copy each worker's data into its scratch.

        ``replicate_all`` (common-data mode) copies everything to every
        worker; otherwise each worker receives its planned chunk.
        ``data_local_to_workers`` marks files as resident without
        copying (the VM-image-baked case): workers use original paths.
        """
        strategy = controller.strategy
        for wid, logic in logics.items():
            if strategy.data_local_to_workers:
                for file in dataset:
                    logic.receive_file(file.name)
                    if file.path is not None:
                        logic.path_overrides[file.name] = file.path
                continue
            wanted: list[DataFile] = []
            if strategy.replicate_all:
                wanted = list(dataset)
            else:
                for group in scheduler.planned_chunk(wid):
                    wanted.extend(group.files)
            for file in wanted:
                self._copy_to_worker(file, logic)

    def _copy_to_worker(self, file: DataFile, logic: WorkerLogic) -> None:
        if logic.worker_id and file.name in logic.local_files:
            return
        if file.path is None:
            raise ConfigurationError(
                f"file {file.name!r} has no real path; the threaded engine "
                "needs on-disk inputs"
            )
        shutil.copy2(file.path, os.path.join(logic.scratch_dir, file.name))
        logic.receive_file(file.name)

    # -- worker thread ----------------------------------------------------------
    def _worker_main(
        self,
        logic: WorkerLogic,
        scheduler: MasterScheduler,
        controller: ControllerLogic,
        wakeup: threading.Condition,
        dataset: Dataset,
        outcomes: dict[str, _WorkerOutcome],
        tel: Telemetry = NULL_TELEMETRY,
        run_span: SpanHandle | None = None,
        h_exec: Histogram | None = None,
        monitor: HeartbeatMonitor | None = None,
        clock: Callable[[], float] | None = None,
        crash_on_task: Optional[int] = None,
        hang_on_task: Optional[int] = None,
        hang_release: threading.Event | None = None,
        status: dict[str, str] | None = None,
    ) -> None:
        wid = logic.worker_id
        records: list[TaskRecord] = []
        transfer_seconds = 0.0
        busy_seconds = 0.0
        retry = scheduler.retry_policy  # frieda: allow[lock-outlier] -- frozen policy snapshot, set before threads start
        status = status if status is not None else {}
        # Park timeout that keeps an idle worker alive in the monitor.
        self_beat = monitor.config.suspect_after if monitor is not None else 2.0  # frieda: allow[lock-outlier] -- frozen HeartbeatConfig read, set before threads start
        while True:
            with wakeup:
                if monitor is not None:
                    # Beats happen between tasks: a thread wedged inside
                    # a draw-execute cycle goes silent and is declared
                    # dead. Beating under the condition serializes the
                    # monitor map against the watchdog sweep.
                    monitor.beat(wid, clock())
                if scheduler.done:
                    break
                assignment = scheduler.next_for(logic.worker_id)
                if assignment is None:
                    if not (retry.retry_on_worker_loss or retry.retry_on_task_error):
                        break
                    # Idle, but a peer's failure may requeue work for us:
                    # sleep until someone reports an outcome. The timeout
                    # is a lost-wakeup safety net, not a poll interval —
                    # except with heartbeats on, where a parked worker
                    # must still wake often enough to keep beating.
                    wakeup.wait(timeout=1.0 if monitor is None else 0.5 * self_beat)
                    continue
            group = assignment.group
            if crash_on_task is not None and crash_on_task in (group.index, ANY_TASK):
                # Injected VM death: exit abruptly — no report, no
                # further beats. The watchdog notices and requeues.
                status[wid] = "crashed"
                outcomes[wid] = _WorkerOutcome(records, transfer_seconds, busy_seconds)
                return
            if hang_on_task is not None and hang_on_task in (group.index, ANY_TASK):
                # Injected wedge: stay alive but stop beating; the
                # heartbeat sweep declares us dead. Released (so the
                # thread can exit) once the run resolves.
                status[wid] = "hung"
                outcomes[wid] = _WorkerOutcome(records, transfer_seconds, busy_seconds)
                if hang_release is not None:
                    hang_release.wait()
                return
            task_span = tel.start_span(
                "task",
                parent=run_span,
                track=f"worker:{wid}",
                task=group.index,
                worker=wid,
                attempt=assignment.attempt,
            )
            # Lazy staging (real-time): copy missing inputs now.
            missing = logic.missing_files(group.file_names)
            if missing and not controller.strategy.data_local_to_workers:  # frieda: allow[lock-outlier] -- frozen ExecutionStrategy read, never mutated after run() starts
                fetch_at = tel.clock()
                t0 = time.monotonic()
                for file in group.files:
                    if file.name in missing:
                        self._copy_to_worker(file, logic)
                transfer_seconds += time.monotonic() - t0
                tel.span_complete(
                    "fetch",
                    fetch_at,
                    tel.clock(),
                    parent=task_span,
                    track=f"worker:{wid}",
                    worker=wid,
                    task=group.index,
                    files=len(missing),
                )
            exec_at = tel.clock()
            start = time.monotonic()
            execution = logic.begin_task(group.index, group.file_names, start)
            ok, error = self._execute(logic, group.file_names)
            end = time.monotonic()
            logic.finish_task(end, ok=ok, error=error)
            busy_seconds += end - start
            tel.span_complete(
                "exec",
                exec_at,
                tel.clock(),
                parent=task_span,
                track=f"worker:{wid}",
                worker=wid,
                node="localhost",
                task=group.index,
            )
            task_span.end(ok=ok)
            with wakeup:
                if ok:
                    scheduler.report_success(logic.worker_id, group.index)
                else:
                    controller.on_worker_error(logic.worker_id, error)
                    scheduler.report_error(logic.worker_id, group.index, error)
                # Histograms mutate shared buckets — observe under the
                # same lock that guards the scheduler.
                if h_exec is not None:
                    h_exec.observe(end - start)
                # Every outcome can finish the run or requeue a task:
                # wake idle peers so they re-check the scheduler.
                wakeup.notify_all()
            records.append(
                TaskRecord(
                    task_id=group.index,
                    worker_id=logic.worker_id,
                    node_id="localhost",
                    start=start,
                    end=end,
                    ok=ok,
                    attempt=assignment.attempt,
                    error=error,
                )
            )
        status[wid] = "completed"
        with wakeup:
            # This worker is leaving (done, or out of work with retries
            # off): wake any sleeper so it re-checks the exit condition.
            wakeup.notify_all()
        outcomes[logic.worker_id] = _WorkerOutcome(records, transfer_seconds, busy_seconds)

    def _execute(self, logic: WorkerLogic, file_names: Sequence[str]) -> tuple[bool, str]:
        paths = [logic.resolve_path(n) for n in file_names]
        command = logic.command
        try:
            if command is not None and command.function is not None:
                command.call(paths)
                return True, ""
            rendered = command.build(paths) if command is not None else ""
            if not rendered:
                return True, ""
            proc = subprocess.run(
                rendered,
                shell=True,
                capture_output=True,
                timeout=self.command_timeout,
                text=True,
            )
            if proc.returncode != 0:
                return False, (proc.stderr or f"exit code {proc.returncode}").strip()[:500]
            return True, ""
        except subprocess.TimeoutExpired:
            return False, f"command timed out after {self.command_timeout}s"
        except Exception as exc:  # task errors must not kill the worker
            return False, f"{type(exc).__name__}: {exc}"
