"""Cross-engine chaos parity: one scenario, three execution planes.

The FRIEDA model claims the simulated engine and the real execution
planes share one failure loop: injection → detection (broken
connection or heartbeat sweep) → recovery (requeue, retry, isolate,
elasticity). This module makes that claim testable. A
:class:`ChaosScenario` describes a workload plus injected faults in
engine-neutral terms (workers by *index*, tasks by id under static
assignment), and :func:`run_scenario` translates it into each engine's
native knobs:

========== ==========================================================
engine     translation
========== ==========================================================
simulated  ``synthetic_dataset`` + ``FixedComputeModel``; crash/hang
           via ``fail_vm`` injection; wire faults become
           ``transfer_fault_rate`` + transfer retry
threaded   real files, worker threads; crash/hang kill or wedge the
           thread; no wire, so wire faults translate to a clean run
tcp        real files over real sockets; crash/hang kill or wedge the
           worker client; wire faults become a seeded ``FaultScript``
           on the frame layer (checksum retransmit / reply reissue)
========== ==========================================================

Parity is asserted on :func:`outcome_digest` — a hash over the
scheduler-level outcome (task accounting plus how many workers the
controller declared failed). Timings, byte counts, and detection
*mechanism* legitimately differ across planes; what must not differ is
what the run concluded.

Worker indices map to engine ids via :func:`worker_id`: index ``i`` is
``worker{i+1}:0`` (simulated), ``local:{i}`` (threaded), ``tcp:{i}``
(TCP). Under ``PRE_PARTITIONED_REMOTE`` the scheduler partitions over
the *sorted* membership, so index ``i`` owns the same contiguous task
chunk on every plane — which is what makes exact-task-id fault hooks
engine-portable. Pull-based (real-time) placement is racy; scenarios
against it should key hooks on :data:`~repro.runtime.faults.ANY_TASK`.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.fault import RetryPolicy
from repro.core.framework import RunOutcome
from repro.core.monitoring import HeartbeatConfig
from repro.core.strategies import StrategyKind
from repro.data.files import synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.errors import ConfigurationError
from repro.runtime.faults import FaultRule, FaultScript
from repro.runtime.local import ThreadedEngine
from repro.runtime.tcp import TcpEngine
from repro.cloud.cluster import ClusterSpec
from repro.transfer.base import TransferProtocol
from repro.transfer.retry import TransferRetryPolicy

ENGINES = ("simulated", "threaded", "tcp")

#: Real-plane liveness knobs: fast enough that a hung worker is
#: declared dead in well under a second, slow enough that a busy but
#: healthy worker (tasks take ``real_task_s``) never misses a beat.
_REAL_HEARTBEAT = 0.05
_REAL_CONFIG = HeartbeatConfig(suspect_after=0.2, dead_after=0.45)
#: Simulated-plane twin (sim seconds are free, so these are relaxed).
_SIM_HEARTBEAT = 1.0
_SIM_CONFIG = HeartbeatConfig(suspect_after=2.0, dead_after=5.0)
_SIM_TASK_COST = 2.0


class _RawTransfer(TransferProtocol):
    """Handshake-free unit-efficiency protocol: sim transfers cost
    exactly size/bandwidth, keeping parity runs fast and legible."""

    handshake_latency = 0.0
    efficiency = 1.0
    streams = 1


def worker_id(engine: str, index: int) -> str:
    """Engine-native worker id for logical worker ``index``."""
    if engine == "simulated":
        return f"worker{index + 1}:0"
    if engine == "threaded":
        return f"local:{index}"
    if engine == "tcp":
        return f"tcp:{index}"
    raise ConfigurationError(f"unknown engine {engine!r}; expected one of {ENGINES}")


@dataclass(frozen=True)
class ChaosScenario:
    """One engine-neutral chaos workload.

    ``crash_on_task`` / ``hang_on_task`` map a logical worker *index*
    to the task id on which it dies (crash = abrupt exit, the
    broken-connection twin; hang = alive but silent, detectable only
    by the heartbeat sweep — scenarios with hangs run every engine
    with its liveness layer on).

    ``wire_rules`` are :class:`~repro.runtime.faults.FaultRule` kwargs
    applied to the TCP plane's frame layer. Only recoverable actions
    (``corrupt``, ``drop``, ``delay``) keep cross-engine parity —
    ``truncate`` tears a connection down, which the other planes have
    no twin for. The simulated plane runs the analogous
    ``sim_transfer_fault_rate`` under a transfer-retry policy; the
    threaded plane has no wire at all, so its translation is a clean
    run — the *outcome* must still agree.
    """

    name: str
    n_files: int = 6
    file_size_bytes: int = 256
    workers: int = 2
    strategy: StrategyKind = StrategyKind.PRE_PARTITIONED_REMOTE
    retry: bool = True
    crash_on_task: Mapping[int, int] = field(default_factory=dict)
    hang_on_task: Mapping[int, int] = field(default_factory=dict)
    wire_rules: tuple[Mapping[str, object], ...] = ()
    sim_transfer_fault_rate: float = 0.0
    #: Wall seconds each task busies a real worker (keeps heartbeat
    #: sweeps and requeues exercised mid-run rather than post-drain).
    real_task_s: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise ConfigurationError("n_files must be >= 1")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        for index in (*self.crash_on_task, *self.hang_on_task):
            if not 0 <= index < self.workers:
                raise ConfigurationError(
                    f"fault targets worker index {index}, but scenario has "
                    f"{self.workers} workers"
                )
        for rule in self.wire_rules:
            if rule.get("action") == "truncate":
                raise ConfigurationError(
                    "truncate tears the connection down; only recoverable "
                    "wire actions (corrupt/drop/delay) keep engine parity"
                )

    @property
    def needs_heartbeats(self) -> bool:
        return bool(self.hang_on_task)

    def retry_policy(self) -> RetryPolicy | None:
        return RetryPolicy.resilient() if self.retry else None

    def fault_map(self, engine: str, hooks: Mapping[int, int]) -> dict[str, int]:
        return {worker_id(engine, index): task for index, task in hooks.items()}

    def fault_script(self) -> FaultScript | None:
        """A fresh (unfired) script per run — rules carry fire counters."""
        if not self.wire_rules:
            return None
        return FaultScript(
            [FaultRule(**dict(rule)) for rule in self.wire_rules], seed=self.seed
        )


def workers_failed(outcome: RunOutcome) -> int:
    """How many workers the controller reported lost, on any plane.

    ``WORKER_FAILED`` is logged by every detection path on every
    engine (broken connection, dead thread, heartbeat declaration),
    exactly once per lost worker — unlike ``NODE_DECLARED_DEAD``,
    which only heartbeat-detected deaths emit.
    """
    return sum(1 for e in outcome.controller_events if e.kind == "WORKER_FAILED")


def outcome_digest(outcome: RunOutcome) -> str:
    """Engine-independent fingerprint of what a run concluded."""
    fields = (
        outcome.tasks_total,
        outcome.tasks_completed,
        outcome.tasks_failed,
        outcome.tasks_lost,
        workers_failed(outcome),
    )
    return hashlib.sha256("|".join(str(f) for f in fields).encode()).hexdigest()[:16]


def materialise_inputs(scenario: ChaosScenario, workdir: str) -> list[str]:
    """Write the scenario's input files (deterministic contents) once."""
    root = os.path.join(workdir, "chaos-inputs")
    os.makedirs(root, exist_ok=True)
    paths = []
    for i in range(scenario.n_files):
        path = os.path.join(root, f"file{i}.dat")
        if not os.path.exists(path):
            with open(path, "wb") as fh:
                fh.write(bytes([i % 256]) * scenario.file_size_bytes)
        paths.append(path)
    return paths


def _make_command(scenario: ChaosScenario):
    def command(path: str) -> int:
        with open(path, "rb") as fh:
            data = fh.read()
        if scenario.real_task_s > 0:
            time.sleep(scenario.real_task_s)  # frieda: allow[real-sleep] -- real task cost on real workers
        return len(data)

    return command


def _run_simulated(scenario: ChaosScenario) -> RunOutcome:
    options = SimulationOptions(
        protocol=_RawTransfer(),
        heartbeat_interval=_SIM_HEARTBEAT if scenario.needs_heartbeats else 0.0,
        heartbeat_config=_SIM_CONFIG if scenario.needs_heartbeats else None,
        transfer_retry=(
            TransferRetryPolicy(max_attempts=4)
            if scenario.sim_transfer_fault_rate > 0
            else TransferRetryPolicy.paper_faithful()
        ),
        seed=scenario.seed,
    )
    engine = SimulatedEngine(ClusterSpec(num_workers=scenario.workers), options)
    dataset = synthetic_dataset("chaos", scenario.n_files, scenario.file_size_bytes)
    return engine.run(
        dataset,
        compute_model=FixedComputeModel(_SIM_TASK_COST),
        strategy=scenario.strategy,
        grouping=PartitionScheme.SINGLE,
        multicore=False,
        retry_policy=scenario.retry_policy(),
        crash_worker_on_task=scenario.fault_map("simulated", scenario.crash_on_task),
        hang_worker_on_task=scenario.fault_map("simulated", scenario.hang_on_task),
        transfer_fault_rate=scenario.sim_transfer_fault_rate,
    )


def _run_threaded(scenario: ChaosScenario, workdir: str) -> RunOutcome:
    engine = ThreadedEngine(
        num_workers=scenario.workers,
        heartbeat_interval=_REAL_HEARTBEAT if scenario.needs_heartbeats else 0.0,
        heartbeat_config=_REAL_CONFIG if scenario.needs_heartbeats else None,
    )
    return engine.run(
        materialise_inputs(scenario, workdir),
        command=_make_command(scenario),
        strategy=scenario.strategy,
        grouping=PartitionScheme.SINGLE,
        retry_policy=scenario.retry_policy(),
        crash_worker_on_task=scenario.fault_map("threaded", scenario.crash_on_task),
        hang_worker_on_task=scenario.fault_map("threaded", scenario.hang_on_task),
    )


def _run_tcp(scenario: ChaosScenario, workdir: str) -> RunOutcome:
    engine = TcpEngine(
        num_workers=scenario.workers,
        run_timeout=60.0,
        heartbeat_interval=_REAL_HEARTBEAT if scenario.needs_heartbeats else 0.0,
        heartbeat_config=_REAL_CONFIG if scenario.needs_heartbeats else None,
        # Dropped frames are recovered by the reply-timeout reissue
        # path, so any wire script turns the timeout on.
        reply_timeout=0.5 if scenario.wire_rules else 0.0,
    )
    return engine.run(
        materialise_inputs(scenario, workdir),
        command=_make_command(scenario),
        strategy=scenario.strategy,
        grouping=PartitionScheme.SINGLE,
        retry_policy=scenario.retry_policy(),
        crash_worker_on_task=scenario.fault_map("tcp", scenario.crash_on_task),
        hang_worker_on_task=scenario.fault_map("tcp", scenario.hang_on_task),
        fault_script=scenario.fault_script(),
    )


def run_scenario(scenario: ChaosScenario, engine: str, workdir: str) -> RunOutcome:
    """Run ``scenario`` on one plane; ``workdir`` holds real inputs."""
    if engine == "simulated":
        return _run_simulated(scenario)
    if engine == "threaded":
        return _run_threaded(scenario, workdir)
    if engine == "tcp":
        return _run_tcp(scenario, workdir)
    raise ConfigurationError(f"unknown engine {engine!r}; expected one of {ENGINES}")


def parity_digests(
    scenario: ChaosScenario, workdir: str, engines: Sequence[str] = ENGINES
) -> dict[str, str]:
    """Outcome digest per engine; parity holds iff the values agree."""
    return {
        engine: outcome_digest(run_scenario(scenario, engine, workdir))
        for engine in engines
    }


def scenario_catalogue() -> tuple[ChaosScenario, ...]:
    """The standing parity suite (also run by ``make chaos-runtime``).

    Six-task workloads under static assignment, so worker index 1 of 3
    owns tasks 2–3 on every plane.
    """
    return (
        ChaosScenario(name="baseline"),
        ChaosScenario(name="crash-retry", workers=3, crash_on_task={1: 2}),
        ChaosScenario(
            name="crash-paper-faithful", workers=3, crash_on_task={1: 2}, retry=False
        ),
        ChaosScenario(name="hang-heartbeat", workers=3, hang_on_task={1: 2}),
        ChaosScenario(
            name="wire-faults",
            wire_rules=(
                {"action": "corrupt", "msg_type": "FILE_DATA", "times": 2},
                {"action": "drop", "msg_type": "FILE_METADATA", "times": 1},
            ),
            sim_transfer_fault_rate=0.2,
        ),
    )
