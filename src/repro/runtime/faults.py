"""Deterministic fault injection for the real (TCP) execution plane.

This is the runtime twin of the simulator's
:class:`~repro.cloud.failures.TransferFaultModel`: where the simulated
fault model perturbs modeled transfers, :class:`FaultyChannel` perturbs
real frames on a real socket. Both are seeded, so a chaos run replays
identically.

A :class:`FaultScript` is a list of :class:`FaultRule`\\ s matched
against outgoing frames (by sender side, message type, task id, file
name). Each rule fires a bounded number of times, then exhausts — the
scripted style keeps cross-engine chaos suites deterministic even when
task→worker placement is racy, because rules key on *what* is sent, not
*who* sends it.

Actions:

- ``drop``      the frame is silently discarded (receiver sees nothing);
- ``delay``     the frame is sent after ``delay_s`` of real time;
- ``corrupt``   one payload byte is flipped (checksummed payloads are
                caught by the receiver and re-requested);
- ``truncate``  only a seeded fraction of the frame's wire bytes are
                written and the connection is closed mid-frame — the
                exact failure mode ``TransferFaultModel`` draws.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.core.messages import FileData, Message, encode_message
from repro.errors import ConfigurationError
from repro.runtime.protocol import _LEN, Channel
from repro.util.seeding import make_rng

_ACTIONS = ("drop", "delay", "corrupt", "truncate")

#: Sentinel for the engines' ``crash_worker_on_task`` /
#: ``hang_worker_on_task`` hooks: fire on the *first* task assignment
#: the worker receives, whatever its id. Exact ids are deterministic
#: only under static assignment; chaos scenarios against the racy
#: pull schedulers key on this instead.
ANY_TASK = -2


@dataclass
class FaultRule:
    """One scripted perturbation; fires on the first ``times`` matches."""

    action: str
    #: Wire name to match (e.g. ``"FILE_DATA"``); empty matches any.
    msg_type: str = ""
    #: Task id to match; ``None`` matches any.
    task_id: int | None = None
    #: File name to match (``FILE_DATA`` only); empty matches any.
    file_name: str = ""
    #: Which sender the rule applies to: ``"master"`` or ``"worker"``.
    side: str = "master"
    #: How many matching frames the rule fires on before exhausting.
    times: int = 1
    #: Real seconds to hold a ``delay``-ed frame.
    delay_s: float = 0.05
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )
        if self.side not in ("master", "worker"):
            raise ConfigurationError("side must be 'master' or 'worker'")
        if self.times < 1:
            raise ConfigurationError("times must be >= 1")

    @property
    def exhausted(self) -> bool:
        return self.fired >= self.times

    def matches(self, side: str, message: Message) -> bool:
        if self.exhausted or side != self.side:
            return False
        if self.msg_type and message.msg_type != self.msg_type:
            return False
        if self.task_id is not None and getattr(message, "task_id", None) != self.task_id:
            return False
        if self.file_name and getattr(message, "file_name", "") != self.file_name:
            return False
        return True


class FaultScript:
    """A seeded set of fault rules shared by every channel of one run.

    The rules' fire counters live here, so "corrupt the first send of
    task 3's payload" fires exactly once no matter which connection
    carries it. The RNG only decides *how* a firing perturbs bytes
    (corrupt position, truncate fraction) — *whether* a frame is
    perturbed is fully scripted.
    """

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...], *, seed: int = 0):
        self.rules = list(rules)
        self._rng = make_rng(seed, "runtime-faults")
        #: (side, action, msg_type, task_id) of every firing, in order.
        self.injected: list[tuple[str, str, str, int]] = []

    def match(self, side: str, message: Message) -> FaultRule | None:
        for rule in self.rules:
            if rule.matches(side, message):
                return rule
        return None

    def record(self, side: str, rule: FaultRule, message: Message) -> None:
        rule.fired += 1
        self.injected.append(
            (side, rule.action, message.msg_type, getattr(message, "task_id", -1))
        )

    def corrupt_position(self, length: int) -> int:
        return int(self._rng.integers(0, length)) if length > 0 else 0

    def truncate_fraction(self) -> float:
        # Mirror TransferFaultModel: the stream dies after a drawn
        # fraction of its wire bytes has moved.
        return float(self._rng.uniform(0.05, 0.95))


class FaultyChannel(Channel):
    """A :class:`Channel` whose sends pass through a :class:`FaultScript`."""

    def __init__(self, reader, writer, script: FaultScript, side: str):
        super().__init__(reader, writer)
        self.script = script
        self.side = side

    async def send(self, message: Message, payload: bytes = b"") -> None:
        rule = self.script.match(self.side, message)
        if rule is None:
            await super().send(message, payload)
            return
        self.script.record(self.side, rule, message)
        if rule.action == "drop":
            return
        if rule.action == "delay":
            await asyncio.sleep(rule.delay_s)
            await super().send(message, payload)
            return
        if rule.action == "corrupt":
            if payload:
                pos = self.script.corrupt_position(len(payload))
                corrupted = bytearray(payload)
                corrupted[pos] ^= 0xFF
                # The header (and its checksum) describes the original
                # payload — exactly what a wire flip looks like.
                await super().send(message, bytes(corrupted))
            else:
                # No payload to flip: a corrupt control frame is
                # indistinguishable from a dead connection; truncate.
                self._truncate(message, payload)
            return
        if rule.action == "truncate":
            self._truncate(message, payload)
            return
        raise AssertionError(f"unreachable action {rule.action!r}")

    def _truncate(self, message: Message, payload: bytes) -> None:
        body = encode_message(message)
        blob = _LEN.pack(len(body)) + body + payload
        cut = max(1, int(len(blob) * self.script.truncate_fraction()))
        self.writer.write(blob[:cut])
        self.writer.close()
