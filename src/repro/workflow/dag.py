"""Workflow DAG model.

A :class:`WorkflowGraph` is a set of named :class:`Stage` definitions
with dependency edges. Validation catches cycles, unknown dependencies
and duplicate names at construction time; :meth:`WorkflowGraph.
topological_order` yields a deterministic execution order (stable with
respect to insertion order among independents).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.commands import CommandTemplate
from repro.core.strategies import StrategyKind
from repro.data.partition import PartitionScheme
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Stage:
    """One data-parallel stage of a workflow.

    ``inputs_from`` names upstream stages whose output files become
    this stage's inputs; stages with no upstream take the workflow's
    initial dataset. ``output_namer`` maps a task's input file names to
    the output file name the stage produces for that task (the default
    derives it from the first input's stem, so lineage is readable:
    ``frame0001.npy`` → ``analyze-frame0001.out``).
    """

    name: str
    command: CommandTemplate
    strategy: StrategyKind = StrategyKind.REAL_TIME
    grouping: PartitionScheme = PartitionScheme.SINGLE
    grouping_options: dict = field(default_factory=dict)
    inputs_from: tuple[str, ...] = ()
    output_namer: Optional[Callable[[Sequence[str]], str]] = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ConfigurationError(f"invalid stage name {self.name!r}")

    def output_name(self, input_names: Sequence[str]) -> str:
        if self.output_namer is not None:
            return self.output_namer(input_names)
        if not input_names:
            raise ConfigurationError("output_name needs at least one input")
        stem = input_names[0].rsplit("/", 1)[-1].rsplit(".", 1)[0]
        return f"{self.name}-{stem}.out"


class WorkflowGraph:
    """A validated DAG of stages."""

    def __init__(self, stages: Sequence[Stage] = ()):
        self._stages: dict[str, Stage] = {}
        for stage in stages:
            self.add(stage)

    def add(self, stage: Stage) -> "WorkflowGraph":
        if stage.name in self._stages:
            raise ConfigurationError(f"duplicate stage {stage.name!r}")
        self._stages[stage.name] = stage
        return self

    def __len__(self) -> int:
        return len(self._stages)

    def __contains__(self, name: object) -> bool:
        return name in self._stages

    def stage(self, name: str) -> Stage:
        try:
            return self._stages[name]
        except KeyError:
            raise ConfigurationError(f"unknown stage {name!r}") from None

    @property
    def stages(self) -> tuple[Stage, ...]:
        return tuple(self._stages.values())

    def validate(self) -> None:
        """Check edges resolve and the graph is acyclic."""
        for stage in self._stages.values():
            for upstream in stage.inputs_from:
                if upstream not in self._stages:
                    raise ConfigurationError(
                        f"stage {stage.name!r} depends on unknown stage {upstream!r}"
                    )
                if upstream == stage.name:
                    raise ConfigurationError(f"stage {stage.name!r} depends on itself")
        self.topological_order()  # raises on cycles

    def roots(self) -> tuple[Stage, ...]:
        """Stages with no upstream (consume the initial dataset)."""
        return tuple(s for s in self._stages.values() if not s.inputs_from)

    def downstream_of(self, name: str) -> tuple[Stage, ...]:
        self.stage(name)
        return tuple(
            s for s in self._stages.values() if name in s.inputs_from
        )

    def topological_order(self) -> list[Stage]:
        """Kahn's algorithm; deterministic (insertion order among ready
        stages); raises :class:`ConfigurationError` on cycles."""
        in_degree = {name: 0 for name in self._stages}
        for stage in self._stages.values():
            for upstream in stage.inputs_from:
                if upstream not in self._stages:
                    raise ConfigurationError(
                        f"stage {stage.name!r} depends on unknown stage {upstream!r}"
                    )
                in_degree[stage.name] += 1
        ready = [name for name, deg in in_degree.items() if deg == 0]
        order: list[Stage] = []
        while ready:
            name = ready.pop(0)
            order.append(self._stages[name])
            for downstream in self._stages.values():
                if name in downstream.inputs_from:
                    in_degree[downstream.name] -= 1
                    if in_degree[downstream.name] == 0:
                        ready.append(downstream.name)
        if len(order) != len(self._stages):
            cyclic = sorted(set(self._stages) - {s.name for s in order})
            raise ConfigurationError(f"workflow has a cycle involving {cyclic}")
        return order
