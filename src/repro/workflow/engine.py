"""Workflow execution: each stage is a FRIEDA run.

The engine walks the DAG in topological order. For every stage it
assembles the input file list (the workflow's initial files for root
stages; upstream output files otherwise), runs the stage's command
under the threaded FRIEDA runtime with the stage's own strategy and
grouping, and materializes one output file per task in a per-stage
directory.

Output capture: callable commands' return values are written to the
task's output file (bytes as-is, anything else via ``str``); shell
commands receive the output path through the ``$out`` placeholder.
"""

from __future__ import annotations

import os
import subprocess
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.framework import RunOutcome
from repro.errors import ConfigurationError, FriedaError
from repro.runtime.local import ThreadedEngine
from repro.workflow.dag import Stage, WorkflowGraph


@dataclass
class StageResult:
    """Outcome of one stage."""

    stage: Stage
    outcome: RunOutcome
    output_paths: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.outcome.tasks_failed == 0 and self.outcome.tasks_lost == 0


@dataclass
class WorkflowResult:
    """Outcome of a whole workflow run."""

    stage_results: dict[str, StageResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.stage_results.values())

    def outputs_of(self, stage_name: str) -> list[str]:
        return list(self.stage_results[stage_name].output_paths)

    @property
    def total_tasks(self) -> int:
        return sum(r.outcome.tasks_total for r in self.stage_results.values())


class WorkflowEngine:
    """Executes a :class:`WorkflowGraph` over real files."""

    def __init__(
        self,
        *,
        num_workers: int = 4,
        work_dir: str,
        command_timeout: float = 300.0,
    ):
        if not os.path.isdir(work_dir):
            raise ConfigurationError(f"work_dir does not exist: {work_dir}")
        self.num_workers = num_workers
        self.work_dir = work_dir
        self.command_timeout = command_timeout

    def run(
        self,
        graph: WorkflowGraph,
        initial_inputs: Sequence[str],
        *,
        stop_on_failure: bool = True,
    ) -> WorkflowResult:
        """Run every stage; returns per-stage results.

        ``stop_on_failure`` aborts downstream stages once a stage has
        failed or lost tasks (their inputs would be incomplete).
        """
        graph.validate()
        if not initial_inputs:
            raise ConfigurationError("workflow needs initial input files")
        for path in initial_inputs:
            if not os.path.isfile(path):
                raise ConfigurationError(f"initial input not found: {path}")
        result = WorkflowResult()
        for stage in graph.topological_order():
            inputs = self._inputs_for(stage, initial_inputs, result)
            if stop_on_failure and any(
                not result.stage_results[up].ok for up in stage.inputs_from
            ):
                continue  # upstream failed; skip
            stage_result = self._run_stage(stage, inputs)
            result.stage_results[stage.name] = stage_result
            if stop_on_failure and not stage_result.ok:
                # Later stages that depend on this one will be skipped.
                continue
        return result

    # ------------------------------------------------------------------
    def _inputs_for(
        self,
        stage: Stage,
        initial_inputs: Sequence[str],
        result: WorkflowResult,
    ) -> list[str]:
        if not stage.inputs_from:
            return list(initial_inputs)
        inputs: list[str] = []
        for upstream in stage.inputs_from:
            if upstream not in result.stage_results:
                raise ConfigurationError(
                    f"stage {stage.name!r} scheduled before upstream {upstream!r}"
                )
            inputs.extend(result.stage_results[upstream].output_paths)
        return sorted(inputs)

    def _run_stage(self, stage: Stage, inputs: Sequence[str]) -> StageResult:
        out_dir = os.path.join(self.work_dir, f"stage-{stage.name}")
        os.makedirs(out_dir, exist_ok=True)
        outputs: list[str] = []
        command = stage.command
        timeout = self.command_timeout

        def task_program(*paths: str) -> None:
            names = [os.path.basename(p) for p in paths]
            out_path = os.path.join(out_dir, stage.output_name(names))
            if command.function is not None:
                value = command.call(list(paths))
                payload = value if isinstance(value, bytes) else str(value).encode()
                with open(out_path, "wb") as fh:
                    fh.write(payload)
            else:
                rendered = command.build(list(paths), output_path=out_path)
                proc = subprocess.run(
                    rendered, shell=True, capture_output=True, timeout=timeout
                )
                if proc.returncode != 0:
                    raise FriedaError(
                        (proc.stderr or b"").decode(errors="replace")[:500]
                        or f"exit code {proc.returncode}"
                    )
                if not os.path.exists(out_path):
                    # Command chose not to use $out: record an empty
                    # marker so downstream stages still see a file.
                    open(out_path, "wb").close()
            outputs.append(out_path)

        engine = ThreadedEngine(
            num_workers=self.num_workers, command_timeout=self.command_timeout
        )
        outcome = engine.run(
            list(inputs),
            command=task_program,
            strategy=stage.strategy,
            grouping=stage.grouping,
            grouping_options=stage.grouping_options,
        )
        return StageResult(stage=stage, outcome=outcome, output_paths=sorted(set(outputs)))
