"""Workflow integration: DAGs of FRIEDA data-parallel stages.

§VI of the paper: *"FRIEDA supports only data-parallel tasks. However,
it is possible for a higher-level workflow engine to interact with
FRIEDA to control parts or all of its workflow execution."* This
package is that higher-level engine: a :class:`~repro.workflow.dag.
WorkflowGraph` of stages, each stage a FRIEDA run (its own command,
grouping, and data-management strategy), with stage outputs feeding
downstream stage inputs.
"""

from repro.workflow.dag import Stage, WorkflowGraph
from repro.workflow.engine import StageResult, WorkflowEngine, WorkflowResult

__all__ = [
    "Stage",
    "WorkflowGraph",
    "StageResult",
    "WorkflowEngine",
    "WorkflowResult",
]
