"""Code-hygiene rule pack.

- ``no-print``  library code must not write to stdout with ``print()``;
  measurements flow through the telemetry hub / Monitor, and human
  output belongs to the user-facing surfaces. Modules whose dotted name
  ends in ``.cli``, ``.plots``, ``.tables`` or ``.__main__`` *are* those
  surfaces and are exempt (``repro.cli`` itself matches the ``.cli``
  suffix).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import FileContext, Finding, Rule, register

#: Dotted-module suffixes that identify user-facing output surfaces.
_OUTPUT_SURFACE_SUFFIXES = (".cli", ".plots", ".tables", ".__main__")


def _is_output_surface(module: str) -> bool:
    return module.endswith(_OUTPUT_SURFACE_SUFFIXES)


@register
class NoPrintRule(Rule):
    id = "no-print"
    description = (
        "no print() in library code; emit telemetry events/metrics or "
        "return data — stdout belongs to CLI/plots/tables modules"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if _is_output_surface(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield ctx.finding(
                    node,
                    self.id,
                    f"print() in library module {ctx.module}",
                )
