"""frieda-audit whole-program context: parse once, analyze across files.

The per-file rules in this package see one ``ast`` at a time, which is
the wrong granularity for three contracts the architecture depends on:
*transitive* boundary purity (a sim process body calling a helper that
calls ``time.time`` is just as broken as calling it directly), lock
discipline across the threads of ``repro.runtime.local``, and protocol
exhaustiveness between the two ends of the TCP wire. This module
parses the whole tree once into :class:`ModuleSummary` records — a
JSON-serializable digest of exactly the facts the whole-program packs
need (symbol table, alias-resolved call records, lock-guarded access
sites, async ordering facts, protocol message traffic) — and derives a
conservative call graph over them.

Summaries are cached by content hash (:func:`ProjectContext.load` with
``cache_path``): an unchanged file is never re-parsed, and its per-file
rule findings are replayed from the cache, so an incremental audit
re-analyzes only the edited components. The cache key includes a
fingerprint of this package's own sources, so changing a rule
invalidates every cached verdict.

Soundness caveats (documented, deliberate): calls through values whose
type the extractor cannot see (arbitrary ``obj.method()``, callables
passed as arguments, ``getattr``) produce no edges, so reachability is
an under-approximation there; conversely name resolution never proves
a call *cannot* happen, so the packs over-approximate within what they
can resolve. See DESIGN.md §14.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.analysis.framework import (
    Finding,
    Rule,
    canonical_name,
    import_aliases,
    iter_python_files,
    load_context,
    module_for_path,
    parse_pragmas,
    run_rules,
)

#: Bump when the summary layout changes; stale caches are discarded.
CACHE_VERSION = 1

#: Names of synchronization primitives whose holder name defines the
#: lock discipline the concurrency pack infers.
_LOCK_FACTORIES = {
    "threading.Condition",
    "threading.Lock",
    "threading.RLock",
}

#: Method names that mutate a container/attribute in place. Used by the
#: async shared-state pack to recognize writes spelled as method calls.
_MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}


# -- summary ----------------------------------------------------------------

@dataclass
class FunctionInfo:
    """One function or method definition."""

    qual: str  # dotted within the module, e.g. "Master.serve" or "run.helper"
    line: int
    is_async: bool
    cls: str | None  # immediately enclosing class name, if any

    def to_json(self) -> dict:
        return {
            "qual": self.qual,
            "line": self.line,
            "is_async": self.is_async,
            "cls": self.cls,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FunctionInfo":
        return cls(data["qual"], data["line"], data["is_async"], data["cls"])


@dataclass
class CallRecord:
    """One call site, with the callee name resolved as far as aliases,
    local variable types, and ``self`` attributes allow."""

    caller: str  # qual of the enclosing function, or "<module>"
    name: str  # canonical dotted callee ("time.time", "self.beat", "helper")
    line: int
    awaited: bool = False
    discarded: bool = False  # bare expression statement

    def to_json(self) -> list:
        return [self.caller, self.name, self.line, self.awaited, self.discarded]

    @classmethod
    def from_json(cls, data: list) -> "CallRecord":
        return cls(*data)


@dataclass
class ModuleSummary:
    """Everything the whole-program packs need from one source file."""

    module: str
    path: str
    sha: str
    functions: list[FunctionInfo] = field(default_factory=list)
    #: class name -> {"line", "bases" (canonical dotted), "methods"}
    classes: dict[str, dict] = field(default_factory=dict)
    calls: list[CallRecord] = field(default_factory=list)
    #: lock pack: condition/lock variable names and shared-root accesses
    #: inside concurrent functions: [root, line, guarded, scope].
    lock_conds: list[str] = field(default_factory=list)
    lock_accesses: list[list] = field(default_factory=list)
    #: async pack: [attr, check_line, write_line, scope] candidates where
    #: a checked shared attribute is written after an await.
    async_shared: list[list] = field(default_factory=list)
    #: protocol pack: message classes [name, msg_type, line]; isinstance
    #: checks [class, line, scope]; channel sends [name, line, scope];
    #: raises [exc, line, scope]; factories {func: [class, ...]}.
    msg_classes: list[list] = field(default_factory=list)
    isinstance_checks: list[list] = field(default_factory=list)
    sends: list[list] = field(default_factory=list)
    raises: list[list] = field(default_factory=list)
    factories: dict[str, list[str]] = field(default_factory=dict)
    line_pragmas: dict[int, set[str]] = field(default_factory=dict)
    file_pragmas: set[str] = field(default_factory=set)

    def in_package(self, *packages: str) -> bool:
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_pragmas:
            return True
        return rule in self.line_pragmas.get(line, set())

    def to_json(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "sha": self.sha,
            "functions": [f.to_json() for f in self.functions],
            "classes": self.classes,
            "calls": [c.to_json() for c in self.calls],
            "lock_conds": self.lock_conds,
            "lock_accesses": self.lock_accesses,
            "async_shared": self.async_shared,
            "msg_classes": self.msg_classes,
            "isinstance_checks": self.isinstance_checks,
            "sends": self.sends,
            "raises": self.raises,
            "factories": self.factories,
            "line_pragmas": {str(k): sorted(v) for k, v in self.line_pragmas.items()},
            "file_pragmas": sorted(self.file_pragmas),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            sha=data["sha"],
            functions=[FunctionInfo.from_json(f) for f in data["functions"]],
            classes=data["classes"],
            calls=[CallRecord.from_json(c) for c in data["calls"]],
            lock_conds=data["lock_conds"],
            lock_accesses=data["lock_accesses"],
            async_shared=data["async_shared"],
            msg_classes=data["msg_classes"],
            isinstance_checks=data["isinstance_checks"],
            sends=data["sends"],
            raises=data["raises"],
            factories=data["factories"],
            line_pragmas={
                int(k): set(v) for k, v in data["line_pragmas"].items()
            },
            file_pragmas=set(data["file_pragmas"]),
        )


# -- extraction -------------------------------------------------------------

class _Extractor:
    """Single pass over one module's AST producing a ModuleSummary."""

    def __init__(self, module: str, path: str, sha: str, tree: ast.Module, source: str):
        self.summary = ModuleSummary(module=module, path=path, sha=sha)
        line_pragmas, file_pragmas = parse_pragmas(source)
        self.summary.line_pragmas = line_pragmas
        self.summary.file_pragmas = file_pragmas
        self.tree = tree
        self.aliases = import_aliases(tree)
        self.module = module
        # First pass: class inventory + lock variable names, so the main
        # walk can resolve `self.x.m()` receivers and guard scopes.
        self.self_attr_types: dict[str, dict[str, str]] = {}
        self._collect_classes()
        self._collect_lock_conds()

    # .. first pass .........................................................
    def _collect_classes(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = [
                child.name
                for child in node.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            bases = []
            for base in node.bases:
                dotted = canonical_name(base, self.aliases)
                if dotted:
                    bases.append(dotted)
            self.summary.classes[node.name] = {
                "line": node.lineno,
                "bases": bases,
                "methods": methods,
            }
            # Protocol pack: a class with a ``msg_type`` class attribute
            # is a wire message kind (repro.core.messages convention).
            for child in node.body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(child, ast.Assign):
                    targets, value = child.targets, child.value
                elif isinstance(child, ast.AnnAssign) and child.value is not None:
                    targets, value = [child.target], child.value
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == "msg_type":
                        kind = (
                            value.value
                            if isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                            else ""
                        )
                        self.summary.msg_classes.append(
                            [node.name, kind, node.lineno]
                        )
            # `self.x = SomeClass(...)` anywhere in the class body gives
            # later `self.x.m()` calls a resolvable receiver type.
            attr_types: dict[str, str] = {}
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Assign) or not isinstance(
                    sub.value, ast.Call
                ):
                    continue
                ctor = canonical_name(sub.value.func, self.aliases)
                if not ctor:
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attr_types[target.attr] = ctor
            self.self_attr_types[node.name] = attr_types

    def _collect_lock_conds(self) -> None:
        conds: set[str] = set()
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            ctor = canonical_name(node.value.func, self.aliases)
            if ctor in _LOCK_FACTORIES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        conds.add(target.id)
        self.summary.lock_conds = sorted(conds)

    # .. main pass ..........................................................
    def run(self) -> ModuleSummary:
        self._walk_body(
            self.tree.body,
            qual="<module>",
            cls=None,
            params=frozenset(),
            guard=0,
            local_types={},
            concurrent=False,
        )
        return self.summary

    def _is_cond(self, name: str) -> bool:
        return name in self.summary.lock_conds

    def _function_is_concurrent(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """Part of the inferred lock discipline: binds a known condition
        as a parameter, or acquires one in its body."""
        arg_names = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
        if arg_names & set(self.summary.lock_conds):
            return True
        for node in ast.walk(fn):
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and self._is_cond(expr.id):
                        return True
        return False

    def _callee_name(
        self, func: ast.expr, cls: str | None, local_types: dict[str, str]
    ) -> str | None:
        """Resolve a call's target expression to a dotted name."""
        if isinstance(func, ast.Name):
            return canonical_name(func, self.aliases)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "self" and cls is not None:
                    return f"self.{func.attr}"
                receiver = local_types.get(value.id)
                if receiver is not None:
                    return f"{receiver}.{func.attr}"
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and cls is not None
            ):
                receiver = self.self_attr_types.get(cls, {}).get(value.attr)
                if receiver is not None:
                    return f"{receiver}.{func.attr}"
            return canonical_name(func, self.aliases)
        return None

    def _walk_body(
        self,
        body: Sequence[ast.stmt],
        *,
        qual: str,
        cls: str | None,
        params: frozenset[str],
        guard: int,
        local_types: dict[str, str],
        concurrent: bool,
    ) -> None:
        for stmt in body:
            self._walk_node(
                stmt,
                qual=qual,
                cls=cls,
                params=params,
                guard=guard,
                local_types=local_types,
                concurrent=concurrent,
            )

    def _walk_node(
        self,
        node: ast.AST,
        *,
        qual: str,
        cls: str | None,
        params: frozenset[str],
        guard: int,
        local_types: dict[str, str],
        concurrent: bool,
        awaited: bool = False,
        discarded: bool = False,
    ) -> None:
        kwargs = dict(
            qual=qual,
            cls=cls,
            params=params,
            guard=guard,
            local_types=local_types,
            concurrent=concurrent,
        )
        if isinstance(node, ast.ClassDef):
            self._walk_body(
                node.body,
                qual="<module>",  # class body statements run at import
                cls=node.name,
                params=params,
                guard=guard,
                local_types={},
                concurrent=concurrent,
            )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn_qual = node.name
            if cls is not None:
                fn_qual = f"{cls}.{node.name}"
            if qual not in ("<module>",) and cls is None:
                fn_qual = f"{qual}.{node.name}"
            elif qual not in ("<module>",) and cls is not None and "." in qual:
                fn_qual = f"{qual}.{node.name}"
            is_async = isinstance(node, ast.AsyncFunctionDef)
            self.summary.functions.append(
                FunctionInfo(fn_qual, node.lineno, is_async, cls)
            )
            own_params = frozenset(
                a.arg
                for a in node.args.args + node.args.kwonlyargs + node.args.posonlyargs
            )
            fn_concurrent = self._function_is_concurrent(node)
            self._collect_factory(node, fn_qual, local_types)
            if is_async:
                self._collect_async_shared(node, fn_qual)
            self._walk_body(
                node.body,
                qual=fn_qual,
                cls=cls,
                params=params | own_params,
                guard=0,
                local_types={},
                concurrent=fn_concurrent,
            )
            return
        if isinstance(node, ast.With):
            inner_guard = guard
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and self._is_cond(expr.id):
                    inner_guard += 1
                else:
                    self._walk_node(expr, **kwargs)
                if item.optional_vars is not None:
                    self._walk_node(item.optional_vars, **kwargs)
            self._walk_body(
                node.body,
                qual=qual,
                cls=cls,
                params=params,
                guard=inner_guard,
                local_types=local_types,
                concurrent=concurrent,
            )
            return
        if isinstance(node, ast.Await):
            if isinstance(node.value, ast.Call):
                self._walk_node(node.value, **kwargs, awaited=True)
            else:
                self._walk_node(node.value, **kwargs)
            return
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Call):
                self._walk_node(node.value, **kwargs, discarded=True)
            elif isinstance(node.value, ast.Await) and isinstance(
                node.value.value, ast.Call
            ):
                self._walk_node(node.value.value, **kwargs, awaited=True)
            else:
                self._walk_node(node.value, **kwargs)
            return
        if isinstance(node, ast.Assign):
            # Best-effort local type tracking: `x = SomeClass(...)`.
            if isinstance(node.value, ast.Call):
                ctor = self._callee_name(node.value.func, cls, local_types)
                if ctor is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_types[target.id] = ctor
        if isinstance(node, ast.Call):
            self._record_call(node, qual, cls, local_types, awaited, discarded)
            func = node.func
            if isinstance(func, ast.Attribute):
                self._record_access_from_expr(func, params, guard, qual, concurrent)
                self._walk_node(func.value, **kwargs)
            elif not isinstance(func, ast.Name):
                self._walk_node(func, **kwargs)
            for child in list(node.args) + [kw.value for kw in node.keywords]:
                self._walk_node(child, **kwargs)
            return
        if isinstance(node, ast.Raise):
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call):
                name = self._callee_name(exc.func, cls, local_types)
                self._walk_node(exc, **kwargs)
            elif exc is not None:
                name = canonical_name(exc, self.aliases)
            if name:
                self.summary.raises.append([name, node.lineno, qual])
            if node.cause is not None:
                self._walk_node(node.cause, **kwargs)
            return
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            self._record_access_from_expr(node, params, guard, qual, concurrent)
            for child in ast.iter_child_nodes(node):
                self._walk_node(child, **kwargs)
            return
        for child in ast.iter_child_nodes(node):
            self._walk_node(child, **kwargs)

    # .. record helpers .....................................................
    def _record_call(
        self,
        node: ast.Call,
        qual: str,
        cls: str | None,
        local_types: dict[str, str],
        awaited: bool,
        discarded: bool,
    ) -> None:
        name = self._callee_name(node.func, cls, local_types)
        if name == "isinstance" and len(node.args) == 2:
            for target in self._isinstance_targets(node.args[1]):
                self.summary.isinstance_checks.append(
                    [target, node.lineno, qual]
                )
        if name is not None:
            self.summary.calls.append(
                CallRecord(qual, name, node.lineno, awaited, discarded)
            )
        # `channel.send(Message(...))` / `channel.send(factory(...))`
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and node.args
        ):
            arg = node.args[0]
            sent: str | None = None
            if isinstance(arg, ast.Call):
                sent = self._callee_name(arg.func, cls, local_types)
            elif isinstance(arg, ast.Name):
                sent = local_types.get(arg.id)
            if sent is not None:
                self.summary.sends.append([sent, node.lineno, qual])

    def _isinstance_targets(self, node: ast.expr) -> Iterator[str]:
        if isinstance(node, ast.Tuple):
            for element in node.elts:
                yield from self._isinstance_targets(element)
        else:
            dotted = canonical_name(node, self.aliases)
            if dotted:
                yield dotted

    def _record_access_from_expr(
        self,
        node: ast.expr,
        params: frozenset[str],
        guard: int,
        qual: str,
        concurrent: bool,
    ) -> None:
        """Lock pack: attribute/subscript access on a shared root name."""
        if not concurrent or not self.summary.lock_conds:
            return
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            root = node.value
            if (
                isinstance(root, ast.Name)
                and root.id in params
                and not self._is_cond(root.id)
            ):
                self.summary.lock_accesses.append(
                    [root.id, node.lineno, guard > 0, qual]
                )

    def _collect_factory(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        local_types: dict[str, str],
    ) -> None:
        """Record classes a function constructs in its return statements
        (``def file_data_message(...): return FileData(...)``)."""
        constructed: list[str] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                name = self._callee_name(node.value.func, None, local_types)
                if name is not None:
                    constructed.append(name)
        if constructed:
            self.summary.factories[qual] = constructed

    # .. async shared-state ordering ........................................
    def _collect_async_shared(
        self, fn: ast.AsyncFunctionDef, qual: str
    ) -> None:
        """Check-then-act candidates on ``self.X`` across await points.

        Two shapes (see rules_async):

        - guarded: ``if <reads self.X>:`` whose body awaits *before*
          writing ``self.X`` — another coroutine can interleave at the
          await and invalidate the check;
        - sibling: a check statement, a later statement containing an
          await, then a still-later write to the same attribute in the
          same suite.
        """
        for suite in _statement_suites(fn):
            checks: list[tuple[str, int, int]] = []  # (attr, line, index)
            await_after: dict[int, int] = {}  # check index -> first await idx
            for idx, stmt in enumerate(suite):
                if isinstance(stmt, (ast.If, ast.While)):
                    attrs = _self_attr_reads(stmt.test)
                    for attr in attrs:
                        checks.append((attr, stmt.lineno, idx))
                    # guarded shape: scan the body linearly
                    for attr in attrs:
                        hit = _await_before_write(stmt.body, attr)
                        if hit is not None:
                            self.summary.async_shared.append(
                                [attr, stmt.lineno, hit, qual]
                            )
                if _contains_await(stmt):
                    for c_idx, (_, _, idx0) in enumerate(checks):
                        if idx > idx0 and c_idx not in await_after:
                            await_after[c_idx] = idx
                for attr_written, line in _self_attr_writes_toplevel(stmt):
                    for c_idx, (attr, _check_line, idx0) in enumerate(checks):
                        if (
                            attr == attr_written
                            and c_idx in await_after
                            and idx > await_after[c_idx]
                        ):
                            self.summary.async_shared.append(
                                [attr, checks[c_idx][1], line, qual]
                            )


def _statement_suites(fn: ast.AST) -> Iterator[list[ast.stmt]]:
    """Every statement list under ``fn``, excluding nested functions."""
    stack: list[ast.AST] = [fn]
    while stack:
        node = stack.pop()
        for attr in ("body", "orelse", "finalbody"):
            suite = getattr(node, attr, None)
            if isinstance(suite, list) and suite and isinstance(suite[0], ast.stmt):
                yield suite
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.append(child)


def _self_attr_reads(node: ast.expr) -> set[str]:
    attrs: set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            attrs.add(sub.attr)
    return attrs


def _write_target_attr(node: ast.stmt) -> list[tuple[str, int]]:
    """Self-attribute writes spelled as this single statement."""
    writes: list[tuple[str, int]] = []

    def attr_of(target: ast.expr) -> str | None:
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    if isinstance(node, ast.Assign):
        for target in node.targets:
            attr = attr_of(target)
            if attr:
                writes.append((attr, node.lineno))
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        attr = attr_of(node.target)
        if attr:
            writes.append((attr, node.lineno))
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = attr_of(target)
            if attr:
                writes.append((attr, node.lineno))
    elif isinstance(node, ast.Expr):
        call = node.value
        if isinstance(call, ast.Await):
            call = call.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATOR_METHODS
        ):
            attr = attr_of(call.func.value)
            if attr:
                writes.append((attr, node.lineno))
    return writes


def _self_attr_writes_toplevel(stmt: ast.stmt) -> list[tuple[str, int]]:
    return _write_target_attr(stmt)


def _contains_await(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Await):
            return True
    return False


def _await_before_write(body: list[ast.stmt], attr: str) -> int | None:
    """Line of the first write to ``self.attr`` after an await, scanning
    ``body`` recursively in source order; None when the pattern is absent."""
    seen_await = False
    for stmt in body:
        for sub in _linearize(stmt):
            if isinstance(sub, ast.Await):
                seen_await = True
                continue
            if isinstance(sub, ast.stmt) and seen_await:
                for written, line in _write_target_attr(sub):
                    if written == attr:
                        return line
    return None


def _linearize(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Statements and awaits under ``stmt`` in source order, skipping
    nested function bodies."""
    yield stmt
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, ast.stmt):
            yield from _linearize(child)
        else:
            for sub in ast.walk(child):
                if isinstance(sub, ast.Await):
                    yield sub


def extract_summary(
    module: str, path: str, sha: str, tree: ast.Module, source: str
) -> ModuleSummary:
    return _Extractor(module, path, sha, tree, source).run()


# -- call graph -------------------------------------------------------------

@dataclass(frozen=True)
class FuncKey:
    module: str
    qual: str

    def render(self) -> str:
        if self.qual == "<module>":
            return self.module
        return f"{self.module}.{self.qual}"


class CallGraph:
    """Conservative call graph over the project's summaries."""

    def __init__(self, summaries: dict[str, ModuleSummary]):
        self.summaries = summaries
        self.by_module: dict[str, ModuleSummary] = {
            s.module: s for s in summaries.values()
        }
        self.functions: dict[FuncKey, FunctionInfo] = {}
        for summary in summaries.values():
            for info in summary.functions:
                self.functions[FuncKey(summary.module, info.qual)] = info
        self._module_names = sorted(self.by_module, key=len, reverse=True)
        #: edges: caller FuncKey -> list of (callee FuncKey, call line)
        self.edges: dict[FuncKey, list[tuple[FuncKey, int]]] = {}
        self._build_edges()

    # .. resolution .........................................................
    def _split_module(self, dotted: str) -> tuple[str, str] | None:
        """Longest known-module prefix of a dotted name, plus remainder."""
        for name in self._module_names:
            if dotted == name:
                return name, "<module>"
            if dotted.startswith(name + "."):
                return name, dotted[len(name) + 1 :]
        return None

    def _lookup(self, module: str, qual: str) -> FuncKey | None:
        key = FuncKey(module, qual)
        if key in self.functions:
            return key
        summary = self.by_module.get(module)
        if summary is None:
            return None
        # A class name resolves to its constructor when defined.
        if qual in summary.classes:
            init = FuncKey(module, f"{qual}.__init__")
            if init in self.functions:
                return init
            return None
        # "Class.method" through base classes.
        if "." in qual:
            cls_name, _, method = qual.rpartition(".")
            if cls_name in summary.classes:
                return self._lookup_method(module, cls_name, method)
        return None

    def _lookup_method(
        self, module: str, cls_name: str, method: str, depth: int = 0
    ) -> FuncKey | None:
        if depth > 8:
            return None
        summary = self.by_module.get(module)
        if summary is None or cls_name not in summary.classes:
            return None
        info = summary.classes[cls_name]
        if method in info["methods"]:
            return FuncKey(module, f"{cls_name}.{method}")
        for base in info["bases"]:
            split = self._split_module(base)
            if split is None:
                # Same-module base written as a bare name.
                if base in summary.classes:
                    found = self._lookup_method(module, base, method, depth + 1)
                    if found is not None:
                        return found
                continue
            base_module, base_qual = split
            found = self._lookup_method(base_module, base_qual, method, depth + 1)
            if found is not None:
                return found
        return None

    def resolve(self, summary: ModuleSummary, call: CallRecord) -> FuncKey | None:
        """Resolve one call record to a known function, or None."""
        name = call.name
        if name.startswith("self."):
            info = self._caller_class(summary, call.caller)
            if info is None:
                return None
            return self._lookup_method(summary.module, info, name[5:])
        if "." not in name:
            # Bare name: innermost enclosing scope first, then module level.
            scope = call.caller
            while scope and scope != "<module>":
                candidate = self._lookup(summary.module, f"{scope}.{name}")
                if candidate is not None:
                    return candidate
                scope, _, _ = scope.rpartition(".")
            return self._lookup(summary.module, name)
        split = self._split_module(name)
        if split is not None:
            module, qual = split
            if qual == "<module>":
                return None
            return self._lookup(module, qual)
        # "Class.method" or "var-typed" names inside this module.
        return self._lookup(summary.module, name)

    def _caller_class(self, summary: ModuleSummary, caller: str) -> str | None:
        for info in summary.functions:
            if info.qual == caller:
                return info.cls
        return None

    def _build_edges(self) -> None:
        for summary in self.summaries.values():
            for call in summary.calls:
                target = self.resolve(summary, call)
                if target is None:
                    continue
                source = FuncKey(summary.module, call.caller)
                self.edges.setdefault(source, []).append((target, call.line))

    # .. reachability .......................................................
    def reach_from(
        self,
        roots: Iterable[FuncKey],
        *,
        skip: Callable[[FuncKey], bool] | None = None,
    ) -> dict[FuncKey, tuple[FuncKey | None, int]]:
        """BFS from ``roots``: visited -> (predecessor, call line).

        ``skip`` prunes traversal *through* a node (it is still recorded
        as visited when reached) — used to stop at async boundaries.
        """
        visited: dict[FuncKey, tuple[FuncKey | None, int]] = {}
        frontier: list[FuncKey] = []
        for root in roots:
            if root not in visited:
                visited[root] = (None, 0)
                frontier.append(root)
        while frontier:
            nxt: list[FuncKey] = []
            for node in frontier:
                if skip is not None and visited[node][0] is not None and skip(node):
                    continue
                for target, line in self.edges.get(node, ()):
                    if target not in visited:
                        visited[target] = (node, line)
                        nxt.append(target)
            frontier = nxt
        return visited

    def witness(
        self, visited: dict[FuncKey, tuple[FuncKey | None, int]], node: FuncKey
    ) -> list[FuncKey]:
        """Path root -> ... -> node from a reach_from result."""
        path = [node]
        while True:
            pred, _ = visited[path[-1]]
            if pred is None:
                break
            path.append(pred)
        return list(reversed(path))


# -- project context + cache ------------------------------------------------

def _sha1(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def _analysis_fingerprint() -> str:
    """Content hash of this package's sources: rule changes invalidate
    every cached summary and cached per-file verdict."""
    package_dir = os.path.dirname(os.path.abspath(__file__))
    digest = hashlib.sha1()
    for name in sorted(os.listdir(package_dir)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(package_dir, name), "rb") as handle:
            digest.update(name.encode())
            digest.update(handle.read())
    return digest.hexdigest()


class ProjectContext:
    """All module summaries plus per-file findings for one tree."""

    def __init__(self) -> None:
        self.summaries: dict[str, ModuleSummary] = {}  # by path
        self.file_findings: list[Finding] = []
        self.stats = {"files": 0, "extracted": 0, "reused": 0}
        self._graph: CallGraph | None = None

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = CallGraph(self.summaries)
        return self._graph

    def by_module(self, module: str) -> ModuleSummary | None:
        for summary in self.summaries.values():
            if summary.module == module:
                return summary
        return None

    def suppressed(self, finding: Finding) -> bool:
        summary = self.summaries.get(finding.path)
        if summary is None:
            return False
        return summary.suppressed(finding.rule, finding.line)

    # .. constructors .......................................................
    @classmethod
    def from_sources(
        cls, sources: dict[str, str], *, run_file_rules: bool = False
    ) -> "ProjectContext":
        """Build a project from ``{dotted module: source}`` (tests)."""
        project = cls()
        for module, source in sources.items():
            path = module.replace(".", "/") + ".py"
            tree = ast.parse(source, filename=path)
            summary = extract_summary(module, path, _sha1(source), tree, source)
            project.summaries[path] = summary
            project.stats["files"] += 1
            project.stats["extracted"] += 1
            if run_file_rules:
                ctx = load_context(path, source=source, module=module)
                project.file_findings.extend(run_rules(ctx))
        project.file_findings.sort()
        return project

    @classmethod
    def load(
        cls,
        paths: Sequence[str],
        *,
        cache_path: str | None = None,
        rules: Sequence[Rule] | None = None,
        timings: dict[str, float] | None = None,
    ) -> "ProjectContext":
        """Parse every ``.py`` under ``paths``; reuse cached summaries
        and per-file findings for files whose content hash is unchanged."""
        project = cls()
        cache = _load_cache(cache_path)
        cached_files = cache.get("files", {})
        fresh_cache: dict[str, dict] = {}
        for file_path in iter_python_files(paths):
            rel = os.path.relpath(file_path).replace(os.sep, "/")
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            sha = _sha1(source)
            project.stats["files"] += 1
            entry = cached_files.get(rel)
            if entry is not None and entry.get("sha") == sha:
                summary = ModuleSummary.from_json(entry["summary"])
                findings = [
                    Finding(path, line, rule, message)
                    for path, line, rule, message in entry["findings"]
                ]
                project.stats["reused"] += 1
            else:
                tree = ast.parse(source, filename=rel)
                module = module_for_path(rel)
                summary = extract_summary(module, rel, sha, tree, source)
                ctx = load_context(rel, source=source, module=module)
                findings = run_rules(ctx, rules, timings=timings)
                project.stats["extracted"] += 1
            project.summaries[rel] = summary
            project.file_findings.extend(findings)
            fresh_cache[rel] = {
                "sha": sha,
                "summary": summary.to_json(),
                "findings": [
                    [f.path, f.line, f.rule, f.message] for f in findings
                ],
            }
        project.file_findings.sort()
        if cache_path is not None:
            _save_cache(cache_path, fresh_cache)
        return project


def run_project_rules(
    project: ProjectContext,
    rules: Sequence | None = None,
    *,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    """Run whole-program rules over a loaded project.

    Pragma suppression happens inside each rule (against the owning
    module's summary), so everything returned here is a live finding.
    """
    from repro.analysis.framework import iter_project_rules
    import time

    findings: list[Finding] = []
    for rule in rules if rules is not None else iter_project_rules():
        if timings is not None:
            started = time.perf_counter()  # frieda: allow[wall-clock] -- lint --stats timing
        checked = list(rule.check_project(project))
        if timings is not None:
            elapsed = time.perf_counter() - started  # frieda: allow[wall-clock] -- lint --stats timing
            timings[rule.id] = timings.get(rule.id, 0.0) + elapsed
        findings.extend(checked)
    return sorted(findings)


def audit_paths(
    paths: Sequence[str],
    *,
    cache_path: str | None = None,
    timings: dict[str, float] | None = None,
) -> tuple[list[Finding], ProjectContext]:
    """The full frieda-audit pass: per-file rules plus project rules.

    Returns ``(findings, project)`` — findings combine both layers,
    sorted; the project is exposed for stats (cache reuse counts).
    """
    project = ProjectContext.load(paths, cache_path=cache_path, timings=timings)
    findings = list(project.file_findings)
    findings.extend(run_project_rules(project, timings=timings))
    return sorted(findings), project


def _load_cache(cache_path: str | None) -> dict:
    if cache_path is None or not os.path.exists(cache_path):
        return {}
    try:
        with open(cache_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, OSError):
        return {}
    if payload.get("version") != CACHE_VERSION:
        return {}
    if payload.get("fingerprint") != _analysis_fingerprint():
        return {}
    return payload


def _save_cache(cache_path: str, files: dict[str, dict]) -> None:
    payload = {
        "version": CACHE_VERSION,
        "fingerprint": _analysis_fingerprint(),
        "files": files,
    }
    directory = os.path.dirname(cache_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(cache_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
