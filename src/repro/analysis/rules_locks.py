"""Thread lock-discipline pack.

``repro.runtime.local`` runs one scheduler, N worker threads, and a
watchdog over shared mutable state (scheduler queues, the heartbeat
monitor), all serialized by a single ``threading.Condition``. The
convention is easy to state and easy to violate silently: *every*
access to the shared objects from a concurrent function happens inside
``with wakeup:``. A missed guard is not a crash — it is an
occasionally-wrong worker count under chaos testing.

Rule ``lock-outlier`` infers the discipline instead of hardcoding it:
within a module that creates a ``threading.Condition``/``Lock``, the
functions that *participate* in locking (bind the condition as a
parameter or acquire it) are the concurrent ones; attribute/subscript
accesses on their shared parameters are tallied guarded vs unguarded;
when a parameter is guarded at a clear majority of sites (and at least
twice), each unguarded site is flagged as an outlier. Deliberate
unguarded reads (immutable config snapshots) carry a line pragma with
the justification.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.framework import Finding, ProjectRule, register_project


@register_project
class LockOutlierRule(ProjectRule):
    id = "lock-outlier"
    description = (
        "shared objects guarded by a Condition/Lock at most sites must "
        "be guarded at all sites in concurrent functions"
    )

    #: A root is considered lock-disciplined when it has at least this
    #: many guarded accesses and strictly more guarded than unguarded.
    min_guarded = 2

    def check_project(self, project) -> Iterable[Finding]:
        for summary in project.summaries.values():
            if not summary.lock_conds:
                continue
            tally: dict[str, dict[bool, set[int]]] = {}
            for root, line, guarded, _scope in summary.lock_accesses:
                sites = tally.setdefault(root, {True: set(), False: set()})
                sites[bool(guarded)].add(line)
            conds = ", ".join(summary.lock_conds)
            for root, sites in sorted(tally.items()):
                guarded, unguarded = sites[True], sites[False]
                # A line with both guarded and unguarded records (e.g.
                # re-read after release) counts as guarded for the vote
                # but still flags nothing on its own.
                unguarded -= guarded
                if len(guarded) < self.min_guarded:
                    continue
                if len(guarded) <= len(unguarded):
                    continue
                for line in sorted(unguarded):
                    if summary.suppressed(self.id, line):
                        continue
                    yield Finding(
                        summary.path,
                        line,
                        self.id,
                        f"access to shared {root!r} outside 'with {conds}' "
                        f"(guarded at {len(guarded)} site(s), unguarded "
                        f"here) in a concurrent function",
                    )
