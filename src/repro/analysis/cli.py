"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (or all findings baselined), 1 = fresh findings,
2 = usage error. ``make lint`` runs this over ``src/`` with the
repository baseline (``lint-baseline.json``, kept empty); ``make
audit`` adds ``--project`` for the whole-program packs (call-graph
taint, lock discipline, asyncio discipline, protocol exhaustiveness)
with a content-hash cache for fast incremental re-runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.framework import (
    all_rule_ids,
    analyze_paths,
    iter_python_files,
    iter_rules,
)
from repro.analysis.reporting import (
    load_baseline,
    render_json,
    render_rules,
    render_stats,
    render_text,
    save_baseline,
    split_by_baseline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "frieda-lint: AST-based checker for the simulator's "
            "determinism and process-safety contracts"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted findings (missing file = empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "run the whole-program audit: per-file rules plus the "
            "call-graph taint, concurrency, and protocol packs"
        ),
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help=(
            "content-hash summary cache for --project; unchanged files "
            "are not re-parsed"
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        dest="rules",
        help="only report findings from this rule id (repeatable)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule wall time after the report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids and descriptions, then exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        render_rules(sys.stdout)
        return 0
    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    if args.rules:
        unknown = sorted(set(args.rules) - all_rule_ids())
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2

    timings: dict[str, float] | None = {} if args.stats else None
    files_scanned = sum(1 for _ in iter_python_files(args.paths))

    if args.project:
        from repro.analysis.project import audit_paths

        findings, _project = audit_paths(
            args.paths, cache_path=args.cache, timings=timings
        )
        if args.rules:
            # The cache stores per-file findings for *all* rules, so a
            # filtered run narrows the report, not the analysis — a
            # later unfiltered run still reuses every cached summary.
            findings = [f for f in findings if f.rule in args.rules]
    else:
        selected = None
        if args.rules:
            selected = [r for r in iter_rules() if r.id in args.rules]
        findings = analyze_paths(args.paths, selected, timings=timings)

    fresh, known = split_by_baseline(findings, load_baseline(args.baseline))

    if args.write_baseline:
        save_baseline(args.baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    renderer = render_json if args.format == "json" else render_text
    renderer(
        fresh,
        baselined=len(known),
        files_scanned=files_scanned,
        stream=sys.stdout,
    )
    if timings is not None:
        # JSON mode keeps stdout machine-readable; stats go to stderr.
        render_stats(timings, sys.stderr if args.format == "json" else sys.stdout)
    return 1 if fresh else 0


if __name__ == "__main__":
    raise SystemExit(main())
