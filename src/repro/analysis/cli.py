"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (or all findings baselined), 1 = fresh findings,
2 = usage error. ``make lint`` runs this over ``src/`` with the
repository baseline (``lint-baseline.json``, kept empty).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.framework import analyze_paths, iter_python_files
from repro.analysis.reporting import (
    load_baseline,
    render_json,
    render_rules,
    render_text,
    save_baseline,
    split_by_baseline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "frieda-lint: AST-based checker for the simulator's "
            "determinism and process-safety contracts"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted findings (missing file = empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids and descriptions, then exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        render_rules(sys.stdout)
        return 0
    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    files_scanned = sum(1 for _ in iter_python_files(args.paths))
    findings = analyze_paths(args.paths)
    fresh, known = split_by_baseline(findings, load_baseline(args.baseline))

    if args.write_baseline:
        save_baseline(args.baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    renderer = render_json if args.format == "json" else render_text
    renderer(
        fresh,
        baselined=len(known),
        files_scanned=files_scanned,
        stream=sys.stdout,
    )
    return 1 if fresh else 0


if __name__ == "__main__":
    raise SystemExit(main())
