"""Simulation/runtime boundary rule pack.

Everything under :data:`~repro.analysis.framework.SIM_PACKAGES` runs in
virtual time: a simulated transfer moves zero real bytes and a
simulated VM failure kills no real process. Real sockets, processes,
threads, and files belong in ``repro.runtime`` (the real execution
plane) or at the edges (``experiments``, ``apps``). A stray ``open()``
or ``subprocess`` call inside the simulation both breaks determinism
(filesystem state, scheduler timing) and blurs the one boundary the
architecture is built around, so rule ``real-io`` bans it outright.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    canonical_name,
    import_aliases,
    register,
)

#: Modules whose import inside simulation code signals real I/O or real
#: concurrency.
_FORBIDDEN_IMPORTS = {
    "socket",
    "subprocess",
    "threading",
    "multiprocessing",
    "asyncio",
    "http",
    "urllib",
    "requests",
    "ftplib",
    "paramiko",
    "shutil",
    "tempfile",
}

#: Call patterns that touch the real filesystem even without a
#: forbidden import (``os`` itself is fine — ``os.path`` is pure).
_FORBIDDEN_CALLS = {
    "os.remove",
    "os.unlink",
    "os.rename",
    "os.replace",
    "os.rmdir",
    "os.mkdir",
    "os.makedirs",
    "os.open",
    "os.system",
    "os.popen",
}


@register
class RealIoRule(Rule):
    id = "real-io"
    description = (
        "no sockets/subprocesses/threads/file I/O inside simulation "
        "packages; real I/O lives in repro.runtime"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.is_simulation_module:
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                if isinstance(node, ast.Import):
                    modules = [alias.name for alias in node.names]
                else:
                    modules = [node.module] if node.module else []
                for module in modules:
                    root = module.split(".")[0]
                    if root in _FORBIDDEN_IMPORTS:
                        yield ctx.finding(
                            node,
                            self.id,
                            f"import of {module!r} in simulation module",
                        )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id == "open":
                    yield ctx.finding(
                        node, self.id, "open() call in simulation module"
                    )
                    continue
                dotted = canonical_name(node.func, aliases)
                if dotted in _FORBIDDEN_CALLS:
                    yield ctx.finding(
                        node, self.id, f"{dotted}() call in simulation module"
                    )
