"""Kernel API misuse rule pack.

Since PR 1 the kernel *raises* on double-triggering an event at
runtime; these rules catch the two patterns that cause it before any
simulation runs:

- ``instant-trigger``  ``succeed()``/``fail()``/``trigger()`` on an
  event produced by an auto-triggering constructor (``env.timeout``,
  ``env.process``, ``Timeout(...)``): those events are born triggered,
  so the call is a guaranteed ``SimulationError``.
- ``double-trigger``   two ``succeed``/``fail``/``trigger`` calls on the
  same name in the same straight-line suite with no reassignment or
  ``reset()`` between them.

Both rules are deliberately conservative (straight-line, same-scope
reasoning only): they exist to catch the obvious cases cheaply, and a
miss is caught by the kernel's runtime guard anyway.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    function_defs,
    register,
    scope_walk,
    statement_lists,
)

#: env methods whose return value is an already-triggering event.
_AUTO_TRIGGER_METHODS = {"timeout", "pooled_timeout", "process"}
#: Kernel constructors with the same property.
_AUTO_TRIGGER_CONSTRUCTORS = {"Timeout", "Process"}
#: Methods that (re)trigger an event.
_TRIGGER_METHODS = {"succeed", "fail", "trigger"}


def _is_auto_trigger_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Attribute):
        return node.func.attr in _AUTO_TRIGGER_METHODS
    if isinstance(node.func, ast.Name):
        return node.func.id in _AUTO_TRIGGER_CONSTRUCTORS
    return False


@register
class InstantTriggerRule(Rule):
    id = "instant-trigger"
    description = (
        "succeed()/fail()/trigger() on events from auto-triggering "
        "constructors (env.timeout/env.process/Timeout) always raises"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # Chained form: env.timeout(5).succeed()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TRIGGER_METHODS
                and _is_auto_trigger_call(node.func.value)
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    f".{node.func.attr}() on an already-triggering event",
                )
        # Assigned form: ev = env.timeout(5) ... ev.succeed()
        for fn in function_defs(ctx.tree):
            auto_names: set[str] = set()
            nodes = sorted(
                (n for n in scope_walk(fn) if hasattr(n, "lineno")),
                key=lambda n: (n.lineno, n.col_offset),
            )
            for node in nodes:
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            if _is_auto_trigger_call(node.value):
                                auto_names.add(target.id)
                            else:
                                auto_names.discard(target.id)
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                ):
                    name = node.func.value.id
                    if node.func.attr in _TRIGGER_METHODS and name in auto_names:
                        yield ctx.finding(
                            node,
                            self.id,
                            f".{node.func.attr}() on {name!r}, which holds an "
                            "already-triggering event",
                        )
                    elif node.func.attr == "reset" and name in auto_names:
                        auto_names.discard(name)


@register
class DoubleTriggerRule(Rule):
    id = "double-trigger"
    description = (
        "two succeed/fail/trigger calls on the same event in one "
        "straight-line suite; the second always raises"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for suite in statement_lists(ctx.tree):
            triggered: set[str] = set()
            for stmt in suite:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            triggered.discard(target.id)
                    continue
                if not isinstance(stmt, ast.Expr) or not isinstance(
                    stmt.value, ast.Call
                ):
                    continue
                call = stmt.value
                if not (
                    isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                ):
                    continue
                name = call.func.value.id
                if call.func.attr == "reset":
                    triggered.discard(name)
                elif call.func.attr in _TRIGGER_METHODS:
                    if name in triggered:
                        yield ctx.finding(
                            stmt,
                            self.id,
                            f"second .{call.func.attr}() on {name!r} in the "
                            "same suite",
                        )
                    triggered.add(name)
