"""Asyncio discipline pack for the TCP runtime.

``repro.runtime.tcp`` runs master and workers as coroutines on one
event loop. Three bug classes that type checkers and per-file lint
miss:

- ``async-blocking`` — a blocking call (``time.sleep``, ``open``,
  ``os.makedirs``, subprocess/socket module calls) executed on the
  event loop, either directly in an ``async def`` or through any chain
  of *sync* helpers it calls. Offloading via ``run_in_executor``
  naturally breaks the chain (the callee is passed, not called).
- ``async-unawaited`` — a bare-statement call of an in-project
  coroutine function whose result is discarded without ``await``: the
  coroutine never runs, which Python only reports as a runtime warning
  after the fact.
- ``async-shared-mutation`` — check-then-act on ``self.<attr>`` with an
  ``await`` between the check and the write. Single-threaded asyncio
  still interleaves at every await; state checked before one can be
  stale after it.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.framework import Finding, ProjectRule, register_project
from repro.analysis.rules_boundary import _FORBIDDEN_CALLS

#: Module roots whose calls block the event loop.
_BLOCKING_ROOTS = {"subprocess", "shutil", "socket", "requests"}


def _is_blocking(name: str) -> bool:
    if name in ("open", "time.sleep") or name in _FORBIDDEN_CALLS:
        return True
    return name.split(".", 1)[0] in _BLOCKING_ROOTS


@register_project
class AsyncBlockingRule(ProjectRule):
    id = "async-blocking"
    description = (
        "no blocking calls (sleep/open/os.makedirs/subprocess) on the "
        "event loop, directly or through sync helpers"
    )

    def check_project(self, project) -> Iterable[Finding]:
        graph = project.graph
        roots = [
            key for key, info in graph.functions.items() if info.is_async
        ]
        # Traversal stops at async callees: blocking work inside another
        # coroutine is reported from that coroutine (its own root), not
        # through every caller that awaits it.
        visited = graph.reach_from(
            roots, skip=lambda key: graph.functions[key].is_async
        )
        seen: set[tuple[str, int, str]] = set()
        for key in visited:
            summary = graph.by_module.get(key.module)
            if summary is None:
                continue
            for call in summary.calls:
                if call.caller != key.qual or not _is_blocking(call.name):
                    continue
                site = (summary.path, call.line, call.name)
                if site in seen:
                    continue
                seen.add(site)
                if summary.suppressed(self.id, call.line):
                    continue
                chain = " -> ".join(
                    node.render() for node in graph.witness(visited, key)
                )
                yield Finding(
                    summary.path,
                    call.line,
                    self.id,
                    f"blocking call {call.name}() on the event loop: "
                    f"{chain} -> {call.name}",
                )


@register_project
class AsyncUnawaitedRule(ProjectRule):
    id = "async-unawaited"
    description = (
        "calling a coroutine function as a bare statement discards the "
        "coroutine without running it; await it or create a task"
    )

    def check_project(self, project) -> Iterable[Finding]:
        graph = project.graph
        for summary in project.summaries.values():
            for call in summary.calls:
                if not call.discarded or call.awaited:
                    continue
                target = graph.resolve(summary, call)
                if target is None:
                    continue
                info = graph.functions.get(target)
                if info is None or not info.is_async:
                    continue
                if summary.suppressed(self.id, call.line):
                    continue
                yield Finding(
                    summary.path,
                    call.line,
                    self.id,
                    f"coroutine {target.render()}() called without await; "
                    "the call returns an unscheduled coroutine object",
                )


@register_project
class AsyncSharedMutationRule(ProjectRule):
    id = "async-shared-mutation"
    description = (
        "self-attribute checked before an await and written after it; "
        "other coroutines interleave at every await point"
    )

    def check_project(self, project) -> Iterable[Finding]:
        for summary in project.summaries.values():
            seen: set[tuple[str, int]] = set()
            for attr, check_line, write_line, scope in summary.async_shared:
                site = (attr, check_line)
                if site in seen:
                    continue
                seen.add(site)
                if summary.suppressed(self.id, check_line):
                    continue
                yield Finding(
                    summary.path,
                    check_line,
                    self.id,
                    f"self.{attr} checked here but written at line "
                    f"{write_line} after an await in {scope}; the check "
                    "can be stale by the time of the write",
                )
