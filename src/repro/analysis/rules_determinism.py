"""Determinism rule pack.

The reproduction's headline claim — identical seeds produce identical
schedules — only holds if nothing inside the library consults wall
clocks or global RNG state. These rules forbid the usual leaks:

- ``wall-clock``   real-time clock reads (``time.time``, ``datetime.now``, …)
- ``real-sleep``   ``time.sleep`` (virtual time never needs it; in the
                   real runtime it is a busy-wait smell)
- ``global-random`` stdlib ``random``, ``os.urandom``, and legacy
                   ``np.random.*`` global-state calls
- ``unseeded-rng`` ``np.random.default_rng()`` with no seed argument

The sanctioned alternative is :mod:`repro.util.seeding` (explicit
seeds, named derived streams) and the simulation clock ``env.now``.
These rules apply to the whole library, not just the simulation
packages: the real engines measure real elapsed time deliberately and
say so with file pragmas, which keeps every exception auditable.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    canonical_name,
    dotted_name,
    import_aliases,
    register,
)

#: Clock reads that leak real time into results.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

#: np.random attributes that are *not* global-state mutators.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}


def _matches(dotted: str, patterns: set[str]) -> bool:
    """True when ``dotted`` equals or ends with any dotted pattern."""
    return any(
        dotted == pattern or dotted.endswith("." + pattern) for pattern in patterns
    )


@register
class WallClockRule(Rule):
    id = "wall-clock"
    description = (
        "no real-time clock reads (time.time/monotonic/perf_counter, "
        "datetime.now); simulation code uses env.now"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = canonical_name(node.func, aliases)
            if dotted and _matches(dotted, _WALL_CLOCK):
                yield ctx.finding(
                    node, self.id, f"real-time clock read {dotted}()"
                )


@register
class RealSleepRule(Rule):
    id = "real-sleep"
    description = "no time.sleep; use env.timeout (sim) or condition wakeups (runtime)"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = canonical_name(node.func, aliases)
            if dotted and _matches(dotted, {"time.sleep"}):
                yield ctx.finding(node, self.id, "time.sleep blocks on real time")


@register
class GlobalRandomRule(Rule):
    id = "global-random"
    description = (
        "no stdlib random, os.urandom, or legacy np.random global-state "
        "calls; use repro.util.seeding streams"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if not raw:
                continue
            dotted = canonical_name(node.func, aliases) or raw
            parts = dotted.split(".")
            # Only trust a `random.` root that actually came from an
            # import binding — a local object named `random` is not the
            # stdlib module.
            if parts[0] == "random" and len(parts) > 1 and raw.split(".")[0] in aliases:
                yield ctx.finding(
                    node, self.id, f"stdlib global RNG call {dotted}()"
                )
            elif dotted == "os.urandom":
                yield ctx.finding(node, self.id, "os.urandom is non-deterministic")
            elif (
                len(parts) >= 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_OK
            ):
                yield ctx.finding(
                    node, self.id, f"legacy NumPy global-state RNG call {dotted}()"
                )


@register
class UnseededRngRule(Rule):
    id = "unseeded-rng"
    description = (
        "np.random.default_rng() without a seed is OS-entropy seeded; "
        "pass a seed derived via repro.util.seeding"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = canonical_name(node.func, aliases)
            if not dotted or not _matches(dotted, {"default_rng"}):
                continue
            if not node.args and not node.keywords:
                yield ctx.finding(
                    node, self.id, "default_rng() called without a seed"
                )
