"""Process-safety rule pack.

A simulation process is a generator that ``yield``\\ s events. Three
classic silent bugs live in that idiom:

- ``dropped-event``    an event-returning call (``env.timeout``,
  ``store.get``/``put``, ``env.process``, ``service.transfer``…) used as
  a bare statement: the event is created and immediately forgotten, so
  the wait/transfer it models never happens — the statement is a no-op.
- ``yield-non-event``  yielding something that is plainly not an Event
  (a literal, a tuple, a comparison, bare ``yield``). The kernel kills
  the process with ``SimulationError`` at runtime; this catches it
  before any run.
- ``yield-in-finally`` a ``yield`` inside ``finally``: when a process is
  interrupted or killed, the generator is closed and a yield in the
  cleanup path raises ``RuntimeError: generator ignored GeneratorExit``.

To avoid flagging ordinary data generators (``generate_groups`` yields
:class:`TaskGroup`\\ s, perfectly legal), the rules only fire inside
*process-like* generators — generator functions whose own scope touches
the simulation environment (an ``env`` name/attribute or an event
factory call).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    function_defs,
    is_generator,
    register,
    scope_walk,
)

#: Method names whose call produces an Event (or a process generator)
#: that is meaningless unless yielded, stored, or passed on.
EVENT_METHODS = {
    "timeout",
    "pooled_timeout",
    "process",
    "event",
    "all_of",
    "any_of",
    "get",
    "put",
    "request",
    "transfer",
}

#: Direct kernel constructors with the same property.
EVENT_CONSTRUCTORS = {"Timeout", "AllOf", "AnyOf"}

#: Receivers whose ``event()`` is a fire-and-forget telemetry record,
#: not a kernel Event — a bare-statement call is exactly right there.
_TELEMETRY_RECEIVERS = {"telemetry", "tel"}


def _is_telemetry_receiver(func: ast.Attribute) -> bool:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id in _TELEMETRY_RECEIVERS
    if isinstance(value, ast.Attribute):
        return value.attr in _TELEMETRY_RECEIVERS
    return False

#: yield values that are certainly not Event instances.
_NON_EVENT_VALUE_TYPES = (
    ast.Constant,
    ast.JoinedStr,
    ast.List,
    ast.Tuple,
    ast.Dict,
    ast.Set,
    ast.Compare,
    ast.BoolOp,
)


def _mentions_env(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Heuristic: does this function's own scope touch the sim kernel?"""
    if any(arg.arg == "env" for arg in fn.args.args):
        return True
    for node in scope_walk(fn):
        if isinstance(node, ast.Name) and node.id == "env":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "env":
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("timeout", "pooled_timeout", "all_of", "any_of"):
                return True
    return False


def process_generators(
    ctx: FileContext,
) -> Iterable[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Generator functions that look like simulation processes."""
    for fn in function_defs(ctx.tree):
        if is_generator(fn) and _mentions_env(fn):
            yield fn


@register
class DroppedEventRule(Rule):
    id = "dropped-event"
    description = (
        "event-returning call used as a bare statement in a process "
        "generator; the event is created and silently discarded"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for fn in process_generators(ctx):
            for node in scope_walk(fn):
                if not isinstance(node, ast.Expr):
                    continue
                call = node.value
                if not isinstance(call, ast.Call):
                    continue
                name = None
                if isinstance(call.func, ast.Attribute) and call.func.attr in EVENT_METHODS:
                    if _is_telemetry_receiver(call.func):
                        continue
                    name = call.func.attr
                elif isinstance(call.func, ast.Name) and call.func.id in EVENT_CONSTRUCTORS:
                    name = call.func.id
                if name is not None:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"result of event-returning {name}() is discarded "
                        f"in process {fn.name!r}",
                    )


@register
class YieldNonEventRule(Rule):
    id = "yield-non-event"
    description = (
        "process generators must yield Events; literals/tuples/bare "
        "yield raise SimulationError at runtime"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for fn in process_generators(ctx):
            for node in scope_walk(fn):
                if not isinstance(node, ast.Yield):
                    continue
                value = node.value
                if value is None:
                    yield ctx.finding(
                        node, self.id, f"bare yield in process {fn.name!r}"
                    )
                elif isinstance(value, _NON_EVENT_VALUE_TYPES):
                    label = type(value).__name__.lower()
                    yield ctx.finding(
                        node,
                        self.id,
                        f"yield of non-event {label} in process {fn.name!r}",
                    )


@register
class YieldInFinallyRule(Rule):
    id = "yield-in-finally"
    description = (
        "no yield inside finally in a process generator; interruption "
        "closes the generator and the yield breaks cleanup"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for fn in process_generators(ctx):
            for node in scope_walk(fn):
                if not isinstance(node, ast.Try) or not node.finalbody:
                    continue
                for stmt in node.finalbody:
                    for sub in scope_walk(stmt):
                        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                            yield ctx.finding(
                                sub,
                                self.id,
                                f"yield inside finally in process {fn.name!r}",
                            )
