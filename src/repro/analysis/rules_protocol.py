"""Protocol exhaustiveness pack.

The wire protocol (``repro.core.messages``, Fig 4 of the paper) is a
closed set of frame kinds — dataclasses carrying a ``msg_type`` class
attribute. The TCP master and worker loops dispatch on those kinds
with ``isinstance`` chains; an unhandled kind is silently dropped (or
worse, trips a generic error far from the cause). Three structural
checks, none of which hardcode kind names:

- ``protocol-exhaustive`` — every kind that is actually *sent* on a
  channel somewhere in the project must be ``isinstance``-handled in at
  least one function other than its senders; and every dispatch chain
  (a function testing two or more message kinds) must end in an
  explicit default (a ``raise``), so a future kind fails loudly instead
  of falling through.
- ``protocol-dead-kind`` — a kind that is never constructed outside its
  defining module, never sent, and never dispatched on is dead weight;
  either wire it up or annotate why it is reserved.

Sends are recognized through factory helpers too: a function whose
return statements construct a message class (``file_data_message``)
marks that class as sent when its result is passed to ``.send()``.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.framework import Finding, ProjectRule, register_project


def _kind_table(project) -> dict[str, tuple[str, str, int]]:
    """``class name -> (module, path, def line)`` for message classes.

    A message class that other message classes inherit from (the
    ``Message`` base) is abstract protocol surface, not a wire kind.
    """
    kinds: dict[str, tuple[str, str, int]] = {}
    bases: set[str] = set()
    for summary in project.summaries.values():
        for name, _msg_type, line in summary.msg_classes:
            kinds[name] = (summary.module, summary.path, line)
            info = summary.classes.get(name)
            if info:
                bases.update(_last(base) for base in info["bases"])
    for base in bases:
        kinds.pop(base, None)
    return kinds


def _last(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _factory_products(project, dotted: str) -> list[str]:
    """Message classes a factory function's returns construct."""
    split = project.graph._split_module(dotted)
    if split is None:
        return []
    module, qual = split
    summary = project.graph.by_module.get(module)
    if summary is None:
        return []
    return [_last(name) for name in summary.factories.get(qual, [])]


def _sent_kinds(project, kinds: dict) -> dict[str, list[tuple[str, int, str, str]]]:
    """``kind -> [(path, line, scope, module)]`` for every channel send."""
    sent: dict[str, list[tuple[str, int, str, str]]] = {}
    for summary in project.summaries.values():
        for name, line, scope in summary.sends:
            candidates = [_last(name)]
            candidates += _factory_products(project, name)
            for candidate in candidates:
                if candidate in kinds:
                    sent.setdefault(candidate, []).append(
                        (summary.path, line, scope, summary.module)
                    )
    return sent


@register_project
class ProtocolExhaustiveRule(ProjectRule):
    id = "protocol-exhaustive"
    description = (
        "every sent message kind is isinstance-handled by a receiver, "
        "and every dispatch chain has an explicit default raise"
    )

    def check_project(self, project) -> Iterable[Finding]:
        kinds = _kind_table(project)
        if not kinds:
            return
        sent = _sent_kinds(project, kinds)
        # kind -> set of (module, scope) where it is dispatched on
        handled: dict[str, set[tuple[str, str]]] = {}
        # (module, scope) -> kinds tested there, for the default check
        chains: dict[tuple[str, str], set[str]] = {}
        raises: set[tuple[str, str]] = set()
        scope_meta: dict[tuple[str, str], tuple[str, int]] = {}
        for summary in project.summaries.values():
            for name, line, scope in summary.isinstance_checks:
                candidate = _last(name)
                if candidate not in kinds:
                    continue
                key = (summary.module, scope)
                handled.setdefault(candidate, set()).add(key)
                chains.setdefault(key, set()).add(candidate)
                scope_meta.setdefault(key, (summary.path, line))
            for _name, _line, scope in summary.raises:
                raises.add((summary.module, scope))
            for info in summary.functions:
                scope_meta.setdefault(
                    (summary.module, info.qual), (summary.path, info.line)
                )

        for kind, send_sites in sorted(sent.items()):
            send_scopes = {(module, scope) for _p, _l, scope, module in send_sites}
            receivers = handled.get(kind, set()) - send_scopes
            if receivers:
                continue
            path, line, _scope, _module = send_sites[0]
            summary = project.summaries.get(path)
            if summary is not None and summary.suppressed(self.id, line):
                continue
            yield Finding(
                path,
                line,
                self.id,
                f"message kind {kind} is sent here but no dispatch chain "
                "outside its senders handles it (isinstance check missing)",
            )

        for key, tested in sorted(chains.items()):
            if len(tested) < 2 or key in raises:
                continue
            path, line = scope_meta[key]
            summary = project.summaries.get(path)
            if summary is not None and summary.suppressed(self.id, line):
                continue
            module, scope = key
            yield Finding(
                path,
                line,
                self.id,
                f"dispatch chain in {module}.{scope} tests "
                f"{len(tested)} message kinds ({', '.join(sorted(tested))}) "
                "but has no default raise for unexpected frames",
            )


@register_project
class ProtocolDeadKindRule(ProjectRule):
    id = "protocol-dead-kind"
    description = (
        "message kinds never constructed outside their defining module, "
        "never sent, and never dispatched on are dead protocol surface"
    )

    def check_project(self, project) -> Iterable[Finding]:
        kinds = _kind_table(project)
        if not kinds:
            return
        sent = set(_sent_kinds(project, kinds))
        dispatched: set[str] = set()
        constructed: set[str] = set()
        for summary in project.summaries.values():
            for name, _line, _scope in summary.isinstance_checks:
                if _last(name) in kinds:
                    dispatched.add(_last(name))
            for call in summary.calls:
                candidate = _last(call.name)
                if candidate not in kinds:
                    continue
                defining_module = kinds[candidate][0]
                if summary.module != defining_module:
                    constructed.add(candidate)
        for kind, (module, path, line) in sorted(kinds.items()):
            if kind in sent or kind in dispatched or kind in constructed:
                continue
            summary = project.summaries.get(path)
            if summary is not None and summary.suppressed(self.id, line):
                continue
            yield Finding(
                path,
                line,
                self.id,
                f"message kind {kind} ({module}) is never sent, handled, "
                "or constructed outside its defining module",
            )
