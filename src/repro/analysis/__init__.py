"""frieda-lint: AST-based enforcement of the simulator's contracts.

Rule packs (see ``python -m repro.analysis --list-rules``):

- determinism (``wall-clock``, ``real-sleep``, ``global-random``,
  ``unseeded-rng``) — no wall clocks or global RNG state in the library,
- process safety (``dropped-event``, ``yield-non-event``,
  ``yield-in-finally``) — the classic silent bugs in event generators,
- boundary (``real-io``) — no real I/O inside simulation packages,
- API misuse (``instant-trigger``, ``double-trigger``) — patterns the
  kernel raises on at runtime, caught before any run.

Whole-program packs (``--project`` / ``make audit``) run over a parsed
:class:`~repro.analysis.project.ProjectContext` instead of one file:

- taint (``transitive-wall-clock``, ``transitive-real-io``) — sim code
  must not reach clocks/sleeps/IO through any helper chain,
- concurrency (``lock-outlier``, ``async-blocking``,
  ``async-unawaited``, ``async-shared-mutation``) — inferred lock
  discipline in the threaded runtime, event-loop discipline in the TCP
  runtime,
- protocol (``protocol-exhaustive``, ``protocol-dead-kind``) — every
  sent frame kind is dispatched somewhere and dead kinds are flagged.

See DESIGN.md §"Enforced invariants" and §14 "Whole-program analysis"
for rationale and pragma syntax.
"""

from repro.analysis.framework import (
    SIM_PACKAGES,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_project_rules,
    iter_rules,
)

__all__ = [
    "SIM_PACKAGES",
    "FileContext",
    "Finding",
    "ProjectRule",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_project_rules",
    "iter_rules",
]
