"""frieda-lint: AST-based enforcement of the simulator's contracts.

Rule packs (see ``python -m repro.analysis --list-rules``):

- determinism (``wall-clock``, ``real-sleep``, ``global-random``,
  ``unseeded-rng``) — no wall clocks or global RNG state in the library,
- process safety (``dropped-event``, ``yield-non-event``,
  ``yield-in-finally``) — the classic silent bugs in event generators,
- boundary (``real-io``) — no real I/O inside simulation packages,
- API misuse (``instant-trigger``, ``double-trigger``) — patterns the
  kernel raises on at runtime, caught before any run.

See DESIGN.md §"Enforced invariants" for rationale and pragma syntax.
"""

from repro.analysis.framework import (
    SIM_PACKAGES,
    FileContext,
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_rules,
)

__all__ = [
    "SIM_PACKAGES",
    "FileContext",
    "Finding",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_rules",
]
