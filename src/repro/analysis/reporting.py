"""Reporters and the findings baseline for frieda-lint.

The baseline file is a JSON list of ``{"path", "rule", "line"}``
records: findings present in the baseline are reported as *baselined*
and do not fail the run. The intended steady state is an **empty**
baseline — every real violation fixed or pragma'd with a justification
— but the mechanism lets a large rule-pack land first and the cleanup
proceed incrementally without turning the lint off.
"""

from __future__ import annotations

import json
import os
from typing import Sequence, TextIO

from repro.analysis.framework import Finding, iter_project_rules, iter_rules


def render_text(
    findings: Sequence[Finding],
    *,
    baselined: int = 0,
    files_scanned: int = 0,
    stream: TextIO,
) -> None:
    for finding in findings:
        stream.write(finding.render() + "\n")
    summary = (
        f"frieda-lint: {len(findings)} finding(s)"
        f"{f' + {baselined} baselined' if baselined else ''}"
        f" across {files_scanned} file(s)\n"
    )
    stream.write(summary)


def render_json(
    findings: Sequence[Finding],
    *,
    baselined: int = 0,
    files_scanned: int = 0,
    stream: TextIO,
) -> None:
    payload = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
        "count": len(findings),
        "baselined": baselined,
        "files_scanned": files_scanned,
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def render_rules(stream: TextIO) -> None:
    for rule in iter_rules():
        stream.write(f"{rule.id}\n    {rule.description}\n")
    for rule in iter_project_rules():
        stream.write(f"{rule.id} [project]\n    {rule.description}\n")


def render_stats(timings: dict[str, float], stream: TextIO) -> None:
    """Per-rule wall time table for ``--stats``, slowest first."""
    if not timings:
        return
    width = max(len(rule_id) for rule_id in timings)
    stream.write(f"{'rule':<{width}} {'time':>10}\n")
    for rule_id, seconds in sorted(timings.items(), key=lambda kv: -kv[1]):
        stream.write(f"{rule_id:<{width}} {seconds * 1e3:>8.1f}ms\n")


# -- baseline ---------------------------------------------------------------

def load_baseline(path: str | None) -> set[tuple[str, str, int]]:
    """Load baseline keys; a missing or empty file is an empty baseline."""
    if path is None or not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as handle:
        entries = json.load(handle)
    return {
        (entry["path"], entry["rule"], int(entry["line"])) for entry in entries
    }


def save_baseline(path: str, findings: Sequence[Finding]) -> None:
    entries = [
        {"path": f.path, "rule": f.rule, "line": f.line} for f in sorted(findings)
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_by_baseline(
    findings: Sequence[Finding], baseline: set[tuple[str, str, int]]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (fresh, baselined)."""
    fresh = [f for f in findings if f.key not in baseline]
    known = [f for f in findings if f.key in baseline]
    return fresh, known
