"""frieda-lint core: findings, pragmas, rule registry, analysis driver.

The simulator documents contracts it cannot enforce at runtime — "two
runs with the same seeds replay identically" (``sim/kernel.py``),
"nothing in the library touches global NumPy/`random` state"
(``util/seeding.py``).  This package turns those documented invariants
into machine-checked ones: each rule walks a file's ``ast`` and emits
:class:`Finding`\\ s, which the CLI (``python -m repro.analysis``)
compares against a baseline file and reports.

Suppression is explicit and line-scoped::

    started = time.time()  # frieda: allow[wall-clock] -- user-facing timing

A pragma comment that is the *whole* line covers the following
statement (useful for multi-line calls), and
``# frieda: allow-file[rule-id]`` anywhere in a file suppresses the
rule for the entire file.  Every pragma should carry a justification
after ``--``; the pragma is the paper trail for a deliberate exception.
"""

from __future__ import annotations

import ast
import os
import re
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: Packages whose modules run *inside* the simulation: virtual time
#: only, no real I/O, no global randomness. ``runtime/`` is the real
#: execution plane and is deliberately not listed.
SIM_PACKAGES = (
    "repro.sim",
    "repro.cloud",
    "repro.core",
    "repro.engines",
    "repro.data",
)

_PRAGMA_RE = re.compile(r"#\s*frieda:\s*(allow|allow-file)\[([A-Za-z0-9_,\- ]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    @property
    def key(self) -> tuple[str, str, int]:
        """Identity used for baseline matching."""
        return (self.path, self.rule, self.line)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class FileContext:
    """Everything a rule needs to inspect one source file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    line_pragmas: dict[int, set[str]] = field(default_factory=dict)
    file_pragmas: set[str] = field(default_factory=set)

    def in_package(self, *packages: str) -> bool:
        """True when this module lives under any of the dotted packages."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    @property
    def is_simulation_module(self) -> bool:
        return self.in_package(*SIM_PACKAGES)

    def finding(self, node: ast.AST | int, rule: str, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(self.path, line, rule, message)

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_pragmas:
            return True
        return finding.rule in self.line_pragmas.get(finding.line, ())


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (the kebab-case name used in pragmas and
    reports) and ``description``, and implement :meth:`check`.
    """

    id: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-program rules.

    Where :class:`Rule` sees one file's AST, a project rule sees the
    :class:`repro.analysis.project.ProjectContext` — every module
    summary plus the derived call graph — and can emit findings that
    depend on cross-file facts (transitive reachability, lock
    discipline inferred over a whole file, protocol traffic between
    modules). Findings still point at one concrete source line, so the
    existing pragma/baseline machinery applies unchanged.
    """

    id: str = ""
    description: str = ""

    def check_project(self, project) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}
_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a whole-program rule to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"project rule {cls.__name__} has no id")
    if rule.id in _PROJECT_REGISTRY or rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _PROJECT_REGISTRY[rule.id] = rule
    return cls


def iter_rules() -> list[Rule]:
    """All registered rules, sorted by id."""
    _ensure_rules_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def iter_project_rules() -> list[ProjectRule]:
    """All registered whole-program rules, sorted by id."""
    _ensure_project_rules_loaded()
    return [_PROJECT_REGISTRY[rule_id] for rule_id in sorted(_PROJECT_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_rules_loaded()
    return _REGISTRY[rule_id]


def all_rule_ids() -> set[str]:
    """Every known rule id, per-file and whole-program."""
    _ensure_rules_loaded()
    _ensure_project_rules_loaded()
    return set(_REGISTRY) | set(_PROJECT_REGISTRY)


def _ensure_rules_loaded() -> None:
    # Rule modules self-register on import; importing lazily here keeps
    # `from repro.analysis.framework import Finding` cheap and avoids
    # circular imports between framework and the rule packs.
    from repro.analysis import (  # noqa: F401
        rules_api,
        rules_boundary,
        rules_determinism,
        rules_hygiene,
        rules_process,
    )


def _ensure_project_rules_loaded() -> None:
    from repro.analysis import (  # noqa: F401
        rules_async,
        rules_locks,
        rules_protocol,
        rules_taint,
    )


# -- pragma parsing ---------------------------------------------------------

def parse_pragmas(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Extract ``# frieda: allow[...]`` pragmas from source text.

    Returns ``(line_pragmas, file_pragmas)``. A standalone pragma
    comment line also covers the *next* physical line, so multi-line
    statements can be annotated from above.
    """
    line_pragmas: dict[int, set[str]] = {}
    file_pragmas: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        for kind, raw_ids in _PRAGMA_RE.findall(text):
            rule_ids = {part.strip() for part in raw_ids.split(",") if part.strip()}
            if kind == "allow-file":
                file_pragmas |= rule_ids
            else:
                line_pragmas.setdefault(lineno, set()).update(rule_ids)
                if text.lstrip().startswith("#"):
                    line_pragmas.setdefault(lineno + 1, set()).update(rule_ids)
    return line_pragmas, file_pragmas


# -- AST helpers shared by rule packs ---------------------------------------

def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def imported_roots(tree: ast.Module) -> set[str]:
    """Top-level names bound by imports (``import x.y`` binds ``x``)."""
    roots: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                roots.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            roots.add(node.module.split(".")[0])
    return roots


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map names bound by imports to the dotted thing they refer to.

    ``import time as _t`` → ``{"_t": "time"}``,
    ``from datetime import datetime as dt`` → ``{"dt": "datetime.datetime"}``,
    ``import numpy.random`` → ``{"numpy": "numpy"}`` (attribute access
    still spells the full path).  Relative imports are left alone: they
    cannot name a stdlib module.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name != "*":
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def canonical_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Like :func:`dotted_name`, but with import aliases resolved.

    With ``import time as _t`` in scope, ``_t.time`` renders as
    ``time.time`` so name-based rules cannot be dodged by renaming.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    target = aliases.get(root)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def scope_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree without descending into nested functions."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(child))


def function_defs(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_generator(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function's own scope contains a yield."""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in scope_walk(fn)
    )


def statement_lists(node: ast.AST) -> Iterator[list[ast.stmt]]:
    """Every suite (body/orelse/finalbody/handler body) under ``node``."""
    for child in ast.walk(node):
        for attr in ("body", "orelse", "finalbody"):
            suite = getattr(child, attr, None)
            if isinstance(suite, list) and suite and isinstance(suite[0], ast.stmt):
                yield suite


# -- driver -----------------------------------------------------------------

def module_for_path(path: str) -> str:
    """Best-effort dotted module name for a file path.

    ``src/repro/sim/kernel.py`` → ``repro.sim.kernel``. Files outside a
    recognizable package root fall back to their stem, which keeps them
    out of the simulation-scoped rules unless the caller overrides
    ``module`` explicitly.
    """
    parts = os.path.normpath(path).split(os.sep)
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    anchor = None
    if "src" in parts:
        anchor = parts.index("src") + 1
    elif "repro" in parts:
        anchor = parts.index("repro")
    if anchor is None or anchor >= len(parts):
        return stem
    dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
    return ".".join(dotted) if dotted else stem


def load_context(
    path: str, *, source: str | None = None, module: str | None = None
) -> FileContext:
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:  # frieda: allow[real-io]
            source = handle.read()
    tree = ast.parse(source, filename=path)
    line_pragmas, file_pragmas = parse_pragmas(source)
    return FileContext(
        path=path,
        module=module or module_for_path(path),
        source=source,
        tree=tree,
        line_pragmas=line_pragmas,
        file_pragmas=file_pragmas,
    )


def run_rules(
    ctx: FileContext,
    rules: Sequence[Rule] | None = None,
    *,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules if rules is not None else iter_rules():
        if timings is not None:
            started = time.perf_counter()  # frieda: allow[wall-clock] -- lint --stats timing
        checked = [f for f in rule.check(ctx) if not ctx.suppressed(f)]
        if timings is not None:
            elapsed = time.perf_counter() - started  # frieda: allow[wall-clock] -- lint --stats timing
            timings[rule.id] = timings.get(rule.id, 0.0) + elapsed
        findings.extend(checked)
    return sorted(findings)


def analyze_source(
    source: str,
    *,
    path: str = "<memory>",
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Analyze in-memory source (used by tests to inject violations)."""
    return run_rules(load_context(path, source=source, module=module), rules)


def analyze_file(
    path: str,
    *,
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    return run_rules(load_context(path, module=module), rules)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in ("__pycache__", ".git")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def analyze_paths(
    paths: Sequence[str],
    rules: Sequence[Rule] | None = None,
    *,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        # Key findings by the repo-relative posix path so baselines are
        # stable across machines and working directories.
        rel = os.path.relpath(file_path).replace(os.sep, "/")
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        ctx = load_context(rel, source=source)
        findings.extend(run_rules(ctx, rules, timings=timings))
    return sorted(findings)
