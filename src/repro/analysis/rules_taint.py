"""Whole-program boundary taint pack.

The per-file ``real-io``/``wall-clock`` rules stop at module edges: a
sim process body that calls a helper in ``repro.util`` which calls
``time.time()`` passes both (the sim file contains no clock read, the
helper is outside the sim packages). These rules close the gap by
walking the project call graph from every function in the simulation
root packages and flagging reachable *sink* calls in non-sim modules,
with the full witness chain in the message.

Division of labor: a sink physically inside a sim package is already
the per-file rules' jurisdiction and is *not* re-reported here — this
pack only reports sinks that per-file analysis structurally cannot see
(outside the sim packages, reached transitively). A line pragma for
either the transitive id or the matching per-file id (``real-io``,
``wall-clock``, ``real-sleep``) suppresses a sink site, so a helper
that is deliberately impure for its non-sim callers carries exactly
one annotation.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.framework import (
    SIM_PACKAGES,
    Finding,
    ProjectRule,
    register_project,
)
from repro.analysis.rules_boundary import _FORBIDDEN_CALLS
from repro.analysis.rules_determinism import _WALL_CLOCK

#: Packages whose code runs inside the simulated plane and must be
#: transitively pure. ``repro.core``/``repro.data`` are shared with the
#: real runtime, so they are sim for the per-file rule but not taint
#: roots; anything they reach is still caught when a sim root reaches
#: it through them.  ``repro.service.sim`` is the deterministic service
#: harness: it must never reach the asyncio/HTTP drivers, so it is a
#: root too — the service core it drives gets swept along.
TAINT_ROOT_PACKAGES = (
    "repro.sim",
    "repro.engines.simulated",
    "repro.cloud",
    "repro.service.sim",
    # The journal replay path: recovery must be a pure function of the
    # journal bytes, so nothing reachable from the codec may do real
    # I/O (the file-backed store lives in repro.service.journalfs,
    # outside this root, and is injected by the drivers).
    "repro.service.journal",
)

#: Module roots whose calls count as real I/O wherever they appear.
_IO_MODULE_ROOTS = {
    "socket",
    "subprocess",
    "threading",
    "multiprocessing",
    "shutil",
    "tempfile",
    "requests",
    "urllib",
    "http",
    "ftplib",
    "paramiko",
}

_WALL_SINKS = _WALL_CLOCK | {"time.sleep"}


def _matches(dotted: str, patterns: Iterable[str]) -> bool:
    return any(
        dotted == pattern or dotted.endswith("." + pattern) for pattern in patterns
    )


def _is_wall_sink(name: str) -> bool:
    return _matches(name, _WALL_SINKS)


def _is_io_sink(name: str) -> bool:
    if name == "open" or name in _FORBIDDEN_CALLS:
        return True
    return name.split(".", 1)[0] in _IO_MODULE_ROOTS


class _TransitiveSinkRule(ProjectRule):
    """Shared driver: BFS from sim roots, report sink calls."""

    #: per-file rule ids whose pragmas also suppress this rule's sites
    base_ids: tuple[str, ...] = ()

    def is_sink(self, name: str) -> bool:
        raise NotImplementedError

    def sink_label(self) -> str:
        raise NotImplementedError

    def check_project(self, project) -> Iterable[Finding]:
        graph = project.graph
        roots = [
            key
            for key, _info in graph.functions.items()
            if _in_packages(key.module, TAINT_ROOT_PACKAGES)
        ]
        roots += [
            _module_key(summary.module)
            for summary in project.summaries.values()
            if _in_packages(summary.module, TAINT_ROOT_PACKAGES)
        ]
        visited = graph.reach_from(roots)
        seen: set[tuple[str, int, str]] = set()
        for key in visited:
            summary = graph.by_module.get(key.module)
            if summary is None or summary.in_package(*SIM_PACKAGES):
                continue  # sim-internal sinks are the per-file rules' job
            for call in summary.calls:
                if call.caller != key.qual or not self.is_sink(call.name):
                    continue
                site = (summary.path, call.line, call.name)
                if site in seen:
                    continue
                seen.add(site)
                if any(
                    summary.suppressed(rule_id, call.line)
                    for rule_id in (self.id,) + self.base_ids
                ):
                    continue
                chain = " -> ".join(
                    node.render() for node in graph.witness(visited, key)
                )
                yield Finding(
                    summary.path,
                    call.line,
                    self.id,
                    f"{self.sink_label()} {call.name}() reachable from "
                    f"simulation code: {chain} -> {call.name}",
                )


def _in_packages(module: str, packages: tuple[str, ...]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


def _module_key(module: str):
    from repro.analysis.project import FuncKey

    return FuncKey(module, "<module>")


@register_project
class TransitiveWallClockRule(_TransitiveSinkRule):
    id = "transitive-wall-clock"
    description = (
        "no real clock reads or sleeps reachable from sim packages "
        "through any helper chain (call-graph extension of wall-clock)"
    )
    base_ids = ("wall-clock", "real-sleep")

    def is_sink(self, name: str) -> bool:
        return _is_wall_sink(name)

    def sink_label(self) -> str:
        return "real-time call"


@register_project
class TransitiveRealIoRule(_TransitiveSinkRule):
    id = "transitive-real-io"
    description = (
        "no file/socket/process I/O reachable from sim packages "
        "through any helper chain (call-graph extension of real-io)"
    )
    base_ids = ("real-io",)

    def is_sink(self, name: str) -> bool:
        return _is_io_sink(name)

    def sink_label(self) -> str:
        return "real I/O call"
